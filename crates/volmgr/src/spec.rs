//! Volume specification strings: `raid0:4:64k`, `raid1:2`, `raid5:5:64k`.
//!
//! The grammar is deliberately rigid — `level:spindles[:stripe]` — because
//! specs arrive from the `iobench --volume` flag and a malformed spec must
//! produce a precise complaint (exit 2 + usage), not a guessed geometry.

use std::fmt;

/// RAID personality of a volume.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaidLevel {
    /// Striping, no redundancy.
    Raid0,
    /// Mirroring with round-robin read balancing.
    Raid1,
    /// Rotating parity with read-modify-write for partial stripes.
    Raid5,
}

impl RaidLevel {
    fn name(self) -> &'static str {
        match self {
            RaidLevel::Raid0 => "raid0",
            RaidLevel::Raid1 => "raid1",
            RaidLevel::Raid5 => "raid5",
        }
    }
}

/// A parsed, validated volume description.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VolumeSpec {
    /// Personality.
    pub level: RaidLevel,
    /// Member drives.
    pub spindles: u32,
    /// Stripe unit in bytes (RAID-0/5). RAID-1 has no stripe: a mirror
    /// sends whole requests to each leg.
    pub stripe_bytes: Option<u32>,
}

/// Why a spec string was rejected. `Display` gives the exact complaint the
/// CLI prints before its usage text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Parses a stripe size: a positive integer with an optional `k`/`K` or
/// `m`/`M` binary suffix.
fn parse_stripe(s: &str) -> Result<u32, SpecError> {
    let (digits, mult) = match s.char_indices().last() {
        Some((i, 'k' | 'K')) => (&s[..i], 1024u32),
        Some((i, 'm' | 'M')) => (&s[..i], 1024 * 1024),
        Some(_) => (s, 1),
        None => return Err(err("empty stripe size")),
    };
    let n: u32 = digits
        .parse()
        .map_err(|_| err(format!("bad stripe size {s:?} (want e.g. 64k)")))?;
    n.checked_mul(mult)
        .ok_or_else(|| err(format!("stripe size {s:?} overflows")))
}

impl VolumeSpec {
    /// Parses and validates `level:spindles[:stripe]`.
    pub fn parse(s: &str) -> Result<VolumeSpec, SpecError> {
        let mut parts = s.split(':');
        let level = match parts.next() {
            Some("raid0") => RaidLevel::Raid0,
            Some("raid1") => RaidLevel::Raid1,
            Some("raid5") => RaidLevel::Raid5,
            Some(other) => {
                return Err(err(format!(
                    "unknown RAID level {other:?} (want raid0, raid1 or raid5)"
                )))
            }
            None => return Err(err("empty volume spec")),
        };
        let spindles: u32 = match parts.next() {
            Some(p) => p
                .parse()
                .map_err(|_| err(format!("bad spindle count {p:?}")))?,
            None => return Err(err("missing spindle count (want e.g. raid0:4:64k)")),
        };
        let stripe = parts.next().map(parse_stripe).transpose()?;
        if let Some(extra) = parts.next() {
            return Err(err(format!("trailing field {extra:?} in volume spec")));
        }
        let min_spindles = match level {
            RaidLevel::Raid0 | RaidLevel::Raid1 => 2,
            RaidLevel::Raid5 => 3,
        };
        if spindles < min_spindles {
            return Err(err(format!(
                "{} needs at least {min_spindles} spindles, got {spindles}",
                level.name()
            )));
        }
        let stripe_bytes = match (level, stripe) {
            (RaidLevel::Raid1, None) => None,
            (RaidLevel::Raid1, Some(_)) => {
                return Err(err("raid1 takes no stripe size (a mirror has no stripes)"))
            }
            (_, None) => {
                return Err(err(format!(
                    "{} needs a stripe size (e.g. {}:{}:64k)",
                    level.name(),
                    level.name(),
                    spindles
                )))
            }
            (_, Some(b)) => {
                if b == 0 || b % 512 != 0 {
                    return Err(err(format!(
                        "stripe size must be a positive multiple of 512 bytes, got {b}"
                    )));
                }
                Some(b)
            }
        };
        Ok(VolumeSpec {
            level,
            spindles,
            stripe_bytes,
        })
    }
}

impl fmt::Display for VolumeSpec {
    /// The canonical spec string (`raid5:5:64k`), suitable for run ids.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.level.name(), self.spindles)?;
        match self.stripe_bytes {
            Some(b) if b % 1024 == 0 => write!(f, ":{}k", b / 1024),
            Some(b) => write!(f, ":{b}"),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_specs() {
        let s = VolumeSpec::parse("raid0:4:64k").unwrap();
        assert_eq!(s.level, RaidLevel::Raid0);
        assert_eq!(s.spindles, 4);
        assert_eq!(s.stripe_bytes, Some(64 * 1024));
        assert_eq!(s.to_string(), "raid0:4:64k");

        let s = VolumeSpec::parse("raid1:2").unwrap();
        assert_eq!(s.level, RaidLevel::Raid1);
        assert_eq!(s.stripe_bytes, None);
        assert_eq!(s.to_string(), "raid1:2");

        let s = VolumeSpec::parse("raid5:5:32K").unwrap();
        assert_eq!(s.level, RaidLevel::Raid5);
        assert_eq!(s.stripe_bytes, Some(32 * 1024));
        assert_eq!(s.to_string(), "raid5:5:32k");

        // Un-suffixed byte counts survive as long as they are sector
        // multiples.
        assert_eq!(
            VolumeSpec::parse("raid0:2:8192").unwrap().stripe_bytes,
            Some(8192)
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "raid9:4:64k",
            "raid0",
            "raid0:one:64k",
            "raid0:4",
            "raid0:4:64q",
            "raid0:4:0",
            "raid0:4:1000",
            "raid0:1:64k",
            "raid1:1",
            "raid1:2:64k",
            "raid5:2:64k",
            "raid5:5:64k:extra",
        ] {
            assert!(VolumeSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
