//! The volume device: N drives behind one [`BlockDevice`].
//!
//! A volume is not a mechanism — it owns no arm and no platter. `submit`
//! validates the request, splits it into per-spindle child requests, and
//! spawns an orchestration task that fans them out to the member devices,
//! reassembles the result, and completes the parent handle. Each child
//! request carries its own `vol.spindle` trace span (argument `spindle=K`)
//! parented under the volume's `vol.read`/`vol.write` span, so a Chrome
//! trace shows a cluster fanning out across the array; each member drive
//! is constructed with [`Disk::new_spindle`], so `disk.busy_ns{spindle=K}`
//! attributes the queueing per leg.
//!
//! Address math (sector units throughout):
//!
//! - **RAID-0**: chunk `c = lba / stripe` lands on spindle `c % n` at
//!   child chunk `c / n`. Successive chunks on one spindle are contiguous
//!   on that child, so one volume request becomes at most one child
//!   request per spindle (scatter/gather lists, like a real HBA).
//! - **RAID-1**: writes go to every leg; reads round-robin across legs.
//! - **RAID-5** (left-asymmetric): parity for row `r` lives on spindle
//!   `(n-1) - (r % n)`; data chunks fill the remaining spindles in order.
//!   A full-row write computes parity from the new data alone; anything
//!   less pays the small-write penalty — read old data and old parity,
//!   XOR the delta, write data and parity back.
//!
//! ## Failure and recovery
//!
//! Members answer with an [`IoStatus`], and the volume is where
//! redundancy turns child failures back into service:
//!
//! - A child completing [`IoStatus::DeviceGone`] marks its spindle
//!   [`SpindleState::Dead`]; later requests skip it without waiting for
//!   the timeout again.
//! - Degraded **reads**: RAID-1 falls over to the next healthy leg;
//!   RAID-5 reconstructs the missing chunk by XOR-ing the matching range
//!   of every surviving spindle in the row (counted in
//!   `vol.degraded_reads`). RAID-0 has nothing to fall back on and fails
//!   the request.
//! - Degraded RAID-5 **writes** switch from delta-RMW to full-row
//!   reconstruction: read the surviving chunks, rebuild the row, overlay
//!   the new data, recompute parity, write everything that still has a
//!   home. Transient child write errors are retried in place (the row's
//!   bytes are at hand); a *permanently* unwritable sector under new
//!   parity is data-loss territory and fails the request.
//! - [`Volume::rebuild`] brings a replacement spindle (see
//!   [`Volume::replace_spindle`]) back into redundancy online: row by row
//!   it reconstructs the missing member from the survivors while the
//!   volume keeps serving. Writes racing the sweep land on the
//!   replacement too and mark their rows dirty, so the sweep re-does any
//!   row it may have reconstructed from a stale snapshot.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashSet};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use diskmodel::request::handle_pair;
use diskmodel::{
    BlockDevice, BlockDeviceExt, Disk, DiskOp, DiskParams, DiskRequest, DiskStats, IoCompletion,
    IoHandle, IoResult, IoStatus, SharedDevice, EXT_RETRIES,
};
use simkit::{Sim, SpanId};

use crate::spec::{RaidLevel, VolumeSpec};

/// RAID-0 address mapping: volume sector → (spindle, child sector).
pub fn raid0_map(lba: u64, stripe_sectors: u32, spindles: u32) -> (u32, u64) {
    let stripe = stripe_sectors as u64;
    let chunk = lba / stripe;
    let off = lba % stripe;
    let spindle = (chunk % spindles as u64) as u32;
    (spindle, (chunk / spindles as u64) * stripe + off)
}

/// Inverse of [`raid0_map`]: (spindle, child sector) → volume sector.
pub fn raid0_unmap(spindle: u32, child_lba: u64, stripe_sectors: u32, spindles: u32) -> u64 {
    let stripe = stripe_sectors as u64;
    let chunk_on_child = child_lba / stripe;
    let off = child_lba % stripe;
    (chunk_on_child * spindles as u64 + spindle as u64) * stripe + off
}

/// The spindle holding row `row`'s parity (left-asymmetric rotation).
pub fn raid5_parity_spindle(row: u64, spindles: u32) -> u32 {
    (spindles - 1) - (row % spindles as u64) as u32
}

/// RAID-5 data-address mapping: volume sector → (spindle, child sector).
pub fn raid5_map(lba: u64, stripe_sectors: u32, spindles: u32) -> (u32, u64) {
    let stripe = stripe_sectors as u64;
    let nd = (spindles - 1) as u64;
    let chunk = lba / stripe;
    let off = lba % stripe;
    let row = chunk / nd;
    let d = (chunk % nd) as u32;
    let p = raid5_parity_spindle(row, spindles);
    let spindle = if d < p { d } else { d + 1 };
    (spindle, row * stripe + off)
}

/// Health of one member device, as the volume last observed it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpindleState {
    /// Serving requests normally.
    Healthy,
    /// Stopped answering ([`IoStatus::DeviceGone`]); skipped entirely.
    Dead,
    /// A replacement is being resynchronized: it takes writes (so new
    /// data is not lost from it) but cannot serve reads until
    /// [`Volume::rebuild`] completes.
    Rebuilding,
}

/// Sectors per copy unit of a RAID-1 rebuild sweep (64 KB at 512 B).
const REBUILD_CHUNK: u64 = 128;

/// One child request: a contiguous run on one spindle, covering the listed
/// `(offset, len)` byte ranges of the volume request's buffer in order.
struct ChildIo {
    spindle: usize,
    lba: u64,
    nsect: u32,
    pieces: Vec<(usize, usize)>,
}

struct VolInner {
    sim: Sim,
    spec: VolumeSpec,
    /// Member devices. A `RefCell` because [`Volume::replace_spindle`]
    /// swaps a dead member for its replacement in place.
    children: RefCell<Vec<SharedDevice>>,
    states: Vec<Cell<SpindleState>>,
    sector_size: u32,
    /// Stripe unit in sectors (RAID-0/5; 0 for RAID-1).
    stripe_sectors: u32,
    total_sectors: u64,
    /// Round-robin position for RAID-1 read balancing. A `Cell`, not
    /// randomness: balancing must be deterministic for byte-identical
    /// runs.
    next_mirror: Cell<usize>,
    /// Rows (RAID-5) / copy chunks (RAID-1) written while a spindle is
    /// rebuilding: the sweep re-does any unit whose snapshot may be stale.
    rebuild_dirty: RefCell<HashSet<u64>>,
    /// RAID-5 rows with a parity read-modify-write (or a reconstructing
    /// read) in flight. Concurrent writers to one row must serialize, or
    /// both read the old parity and the later write-back erases the
    /// earlier delta — the parity write hole, invisible until a spindle
    /// dies and reconstruction XORs against the stale parity.
    locked_rows: RefCell<HashSet<u64>>,
    /// Tasks waiting for any row lock to release.
    row_waiters: RefCell<Vec<Waker>>,
}

/// A RAID volume over N simulated drives. Clones share the volume.
#[derive(Clone)]
pub struct Volume {
    inner: Rc<VolInner>,
}

impl Volume {
    /// Builds the volume, creating `spec.spindles` identical member drives
    /// (labelled spindle 0..N-1) on `sim`.
    pub fn new(sim: &Sim, spec: &VolumeSpec, params: DiskParams) -> Volume {
        let children: Vec<SharedDevice> = (0..spec.spindles)
            .map(|k| Rc::new(Disk::new_spindle(sim, params.clone(), k)) as SharedDevice)
            .collect();
        Self::with_children(sim, spec, children)
    }

    /// Builds the volume over caller-provided member devices — the seam
    /// the fault-injection layer uses to stand a `FaultDevice` in front of
    /// each spindle. The members must agree on sector size and capacity.
    pub fn with_children(sim: &Sim, spec: &VolumeSpec, children: Vec<SharedDevice>) -> Volume {
        assert_eq!(
            children.len(),
            spec.spindles as usize,
            "member count must match the spec"
        );
        let sector_size = children[0].sector_size();
        let child_sectors = children[0].total_sectors();
        for c in &children {
            assert_eq!(c.sector_size(), sector_size, "mixed sector sizes");
            assert_eq!(c.total_sectors(), child_sectors, "mixed member sizes");
        }
        let stripe_sectors = spec.stripe_bytes.map_or(0, |b| b / sector_size);
        let n = spec.spindles as u64;
        let total_sectors = match spec.level {
            // Striped levels use whole rows only, so the mapping stays a
            // clean bijection (the partial last row is sacrificed).
            RaidLevel::Raid0 => (child_sectors / stripe_sectors as u64) * stripe_sectors as u64 * n,
            RaidLevel::Raid1 => child_sectors,
            RaidLevel::Raid5 => {
                (child_sectors / stripe_sectors as u64) * stripe_sectors as u64 * (n - 1)
            }
        };
        assert!(total_sectors > 0, "volume has no addressable capacity");
        let states = (0..children.len())
            .map(|_| Cell::new(SpindleState::Healthy))
            .collect();
        Volume {
            inner: Rc::new(VolInner {
                sim: sim.clone(),
                spec: *spec,
                children: RefCell::new(children),
                states,
                sector_size,
                stripe_sectors,
                total_sectors,
                next_mirror: Cell::new(0),
                rebuild_dirty: RefCell::new(HashSet::new()),
                locked_rows: RefCell::new(HashSet::new()),
                row_waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// The spec this volume was built from.
    pub fn spec(&self) -> &VolumeSpec {
        &self.inner.spec
    }

    /// The member devices, indexed by spindle (tests and reports read legs
    /// directly to check mirror and parity invariants).
    pub fn children(&self) -> Vec<SharedDevice> {
        self.inner.children.borrow().clone()
    }

    /// Stripe unit in sectors (0 for RAID-1).
    pub fn stripe_sectors(&self) -> u32 {
        self.inner.stripe_sectors
    }

    /// Number of member spindles.
    pub fn spindles(&self) -> usize {
        self.inner.states.len()
    }

    /// The volume's view of spindle `k`'s health.
    pub fn spindle_state(&self, k: u32) -> SpindleState {
        self.inner.states[k as usize].get()
    }

    /// Administratively marks spindle `k` dead — the same transition a
    /// [`IoStatus::DeviceGone`] completion causes, available to tests and
    /// operators without waiting for a request to trip over the corpse.
    pub fn fail_spindle(&self, k: u32) {
        self.mark_dead(k as usize);
    }

    /// Swaps in a replacement device for spindle `k` and marks it
    /// [`SpindleState::Rebuilding`]: it takes writes immediately but
    /// serves no reads until [`Volume::rebuild`] resynchronizes it.
    pub fn replace_spindle(&self, k: u32, dev: SharedDevice) {
        let mut children = self.inner.children.borrow_mut();
        assert_eq!(dev.sector_size(), self.inner.sector_size, "sector size");
        assert_eq!(
            dev.total_sectors(),
            children[k as usize].total_sectors(),
            "replacement capacity"
        );
        children[k as usize] = dev;
        self.inner.states[k as usize].set(SpindleState::Rebuilding);
    }

    fn child(&self, k: usize) -> SharedDevice {
        Rc::clone(&self.inner.children.borrow()[k])
    }

    fn healthy(&self, k: usize) -> bool {
        self.inner.states[k].get() == SpindleState::Healthy
    }

    fn mark_dead(&self, k: usize) {
        if self.inner.states[k].get() != SpindleState::Dead {
            self.inner.states[k].set(SpindleState::Dead);
            self.inner.sim.stats().counter("vol.spindle_dead").inc();
        }
    }

    /// Takes the parity-row lock for `row`, waiting while another writer
    /// (or reconstructing reader) holds it. All multi-row writers acquire
    /// in ascending row order, so waiting cannot deadlock.
    fn lock_row(&self, row: u64) -> LockRow {
        LockRow {
            vol: self.clone(),
            row,
        }
    }

    /// Marks a rebuild unit stale if a sweep is running (no-op otherwise:
    /// the set only matters while a spindle is rebuilding).
    fn mark_rebuild_dirty(&self, unit: u64) {
        if self
            .inner
            .states
            .iter()
            .any(|s| s.get() == SpindleState::Rebuilding)
        {
            self.inner.rebuild_dirty.borrow_mut().insert(unit);
        }
    }

    // ---- request splitting ----

    fn map_striped(&self, lba: u64, nsect: u32, level: RaidLevel) -> Vec<ChildIo> {
        let stripe = self.inner.stripe_sectors as u64;
        let n = self.spindles();
        let ssz = self.inner.sector_size as usize;
        let mut ios: Vec<ChildIo> = Vec::new();
        // Open scatter/gather list per spindle, for merging child-contiguous
        // chunks (RAID-0 only; RAID-5 data chunks skip parity rows, so
        // adjacency on a child is not guaranteed and each chunk stands
        // alone — which keeps every RAID-5 child request inside one row,
        // the invariant degraded-read reconstruction relies on).
        let mut open: Vec<Option<usize>> = vec![None; n];
        let mut cur = lba;
        let end = lba + nsect as u64;
        while cur < end {
            let run = (stripe - cur % stripe).min(end - cur) as u32;
            let (sp, clba) = match level {
                RaidLevel::Raid0 => raid0_map(cur, self.inner.stripe_sectors, n as u32),
                RaidLevel::Raid5 => raid5_map(cur, self.inner.stripe_sectors, n as u32),
                RaidLevel::Raid1 => unreachable!("mirrors are not striped"),
            };
            let piece = ((cur - lba) as usize * ssz, run as usize * ssz);
            match open[sp as usize] {
                Some(i)
                    if level == RaidLevel::Raid0 && ios[i].lba + ios[i].nsect as u64 == clba =>
                {
                    ios[i].nsect += run;
                    ios[i].pieces.push(piece);
                }
                _ => {
                    open[sp as usize] = Some(ios.len());
                    ios.push(ChildIo {
                        spindle: sp as usize,
                        lba: clba,
                        nsect: run,
                        pieces: vec![piece],
                    });
                }
            }
            cur += run as u64;
        }
        ios
    }

    // ---- orchestration ----

    fn start_span(&self, name: &'static str, req: &DiskRequest) -> SpanId {
        let tracer = self.inner.sim.tracer();
        let svc = tracer.start(name, req.stream, req.span);
        tracer.arg(svc, "lba", req.lba);
        tracer.arg(svc, "nsect", req.nsect as u64);
        svc
    }

    /// Submits one child request under a fresh `vol.spindle` span.
    /// `data: Some` means a write, `None` a read.
    fn submit_child(
        &self,
        spindle: usize,
        lba: u64,
        nsect: u32,
        data: Option<Vec<u8>>,
        req: &DiskRequest,
        svc: SpanId,
    ) -> (IoHandle, SpanId) {
        let tracer = self.inner.sim.tracer();
        let sp = tracer.start("vol.spindle", req.stream, svc);
        tracer.arg(sp, "spindle", spindle as u64);
        let op = if data.is_some() {
            DiskOp::Write
        } else {
            DiskOp::Read
        };
        let h = self.child(spindle).submit(DiskRequest {
            op,
            lba,
            nsect,
            data,
            ordered: req.ordered,
            stream: req.stream,
            span: sp,
        });
        (h, sp)
    }

    /// Serves a child read some other way after its home spindle failed:
    /// RAID-1 from the next healthy leg, RAID-5 by XOR-reconstructing from
    /// every surviving spindle of the row, RAID-0 not at all. `why` is the
    /// status that sent us here and is returned when recovery also fails.
    async fn recover_read(
        &self,
        io: &ChildIo,
        req: &DiskRequest,
        svc: SpanId,
        why: IoStatus,
    ) -> Result<Vec<u8>, IoStatus> {
        self.inner.sim.stats().counter("vol.degraded_reads").inc();
        let n = self.spindles();
        match self.inner.spec.level {
            RaidLevel::Raid0 => Err(why),
            RaidLevel::Raid1 => {
                // The other legs hold the same bytes; try them in
                // deterministic rotation order.
                for d in 1..n {
                    let j = (io.spindle + d) % n;
                    if !self.healthy(j) {
                        continue;
                    }
                    let (h, sp) = self.submit_child(j, io.lba, io.nsect, None, req, svc);
                    let res = h.wait().await;
                    self.inner.sim.tracer().end(sp);
                    match res.status {
                        IoStatus::Ok => return Ok(res.data.expect("read returns data")),
                        IoStatus::DeviceGone => self.mark_dead(j),
                        IoStatus::MediaError => {}
                    }
                }
                Err(why)
            }
            RaidLevel::Raid5 => {
                // `map_striped` keeps every RAID-5 child request inside
                // one row, so the same child range on every other spindle
                // covers the matching slice of each data chunk and the
                // parity; their XOR is the missing chunk's slice. Hold the
                // row lock so a concurrent RMW cannot leave us XOR-ing new
                // data against old parity mid-update.
                let _row = self
                    .lock_row(io.lba / self.inner.stripe_sectors as u64)
                    .await;
                if (0..n).any(|j| j != io.spindle && !self.healthy(j)) {
                    return Err(why); // A second failure: nothing left to XOR.
                }
                let pending: Vec<(usize, IoHandle, SpanId)> = (0..n)
                    .filter(|&j| j != io.spindle)
                    .map(|j| {
                        let (h, sp) = self.submit_child(j, io.lba, io.nsect, None, req, svc);
                        (j, h, sp)
                    })
                    .collect();
                let mut acc = vec![0u8; io.nsect as usize * self.inner.sector_size as usize];
                let mut failed = None;
                for (j, h, sp) in pending {
                    let res = h.wait().await;
                    self.inner.sim.tracer().end(sp);
                    match res.status {
                        IoStatus::Ok => {
                            for (a, b) in acc.iter_mut().zip(res.data.expect("read returns data")) {
                                *a ^= b;
                            }
                        }
                        st => {
                            if st == IoStatus::DeviceGone {
                                self.mark_dead(j);
                            }
                            failed = Some(st);
                        }
                    }
                }
                match failed {
                    Some(st) => Err(st),
                    None => Ok(acc),
                }
            }
        }
    }

    async fn read_fan(&self, req: DiskRequest, ios: Vec<ChildIo>, completion: IoCompletion) {
        let svc = self.start_span("vol.read", &req);
        let ssz = self.inner.sector_size as usize;
        let mut buf = vec![0u8; req.nsect as usize * ssz];
        // Submit to every healthy home spindle up front; known-bad homes
        // go straight to recovery when their turn comes.
        let pending: Vec<(ChildIo, Option<(IoHandle, SpanId)>)> = ios
            .into_iter()
            .map(|io| {
                let direct = self
                    .healthy(io.spindle)
                    .then(|| self.submit_child(io.spindle, io.lba, io.nsect, None, &req, svc));
                (io, direct)
            })
            .collect();
        let mut failed: Option<IoStatus> = None;
        for (io, direct) in pending {
            let got = match direct {
                Some((h, sp)) => {
                    let res = h.wait().await;
                    self.inner.sim.tracer().end(sp);
                    match res.status {
                        IoStatus::Ok => Ok(res.data.expect("read returns data")),
                        st => {
                            if st == IoStatus::DeviceGone {
                                self.mark_dead(io.spindle);
                            }
                            self.recover_read(&io, &req, svc, st).await
                        }
                    }
                }
                None => {
                    self.recover_read(&io, &req, svc, IoStatus::DeviceGone)
                        .await
                }
            };
            match got {
                Ok(data) => {
                    let mut src = 0;
                    for (off, len) in &io.pieces {
                        buf[*off..*off + *len].copy_from_slice(&data[src..src + *len]);
                        src += *len;
                    }
                }
                Err(st) => failed = Some(st),
            }
        }
        self.inner.sim.tracer().end(svc);
        let now = self.inner.sim.now();
        completion.complete(match failed {
            Some(st) => IoResult::error(st, now),
            None => IoResult::ok(Some(buf), now),
        });
    }

    /// Awaits a child write, retrying transient media errors in place (the
    /// bytes are rebuilt by `payload()` per attempt). Returns the final
    /// status; `DeviceGone` marks the spindle dead.
    #[allow(clippy::too_many_arguments)]
    async fn await_child_write(
        &self,
        mut handle: IoHandle,
        mut span: SpanId,
        spindle: usize,
        lba: u64,
        nsect: u32,
        req: &DiskRequest,
        svc: SpanId,
        payload: impl Fn() -> Vec<u8>,
    ) -> IoStatus {
        let mut attempt = 0;
        loop {
            let res = handle.wait().await;
            self.inner.sim.tracer().end(span);
            match res.status {
                IoStatus::MediaError if attempt < EXT_RETRIES => {
                    attempt += 1;
                    let (h, sp) = self.submit_child(spindle, lba, nsect, Some(payload()), req, svc);
                    handle = h;
                    span = sp;
                }
                st => {
                    if st == IoStatus::DeviceGone {
                        self.mark_dead(spindle);
                    }
                    return st;
                }
            }
        }
    }

    async fn write_fan(&self, req: DiskRequest, ios: Vec<ChildIo>, completion: IoCompletion) {
        let svc = self.start_span("vol.write", &req);
        let payload = req.data.as_deref().expect("write carries payload");
        let child_bytes = |io: &ChildIo| {
            let mut data = Vec::with_capacity(io.pieces.iter().map(|(_, l)| l).sum());
            for (off, len) in &io.pieces {
                data.extend_from_slice(&payload[*off..*off + *len]);
            }
            data
        };
        if self.inner.spec.level == RaidLevel::Raid1 {
            // A racing rebuild sweep must re-copy any chunk this write
            // touches (the write also lands on the rebuilding leg below).
            let first = req.lba / REBUILD_CHUNK;
            let last = (req.lba + req.nsect as u64 - 1) / REBUILD_CHUNK;
            for c in first..=last {
                self.mark_rebuild_dirty(c);
            }
        }
        // Dead spindles take no writes; rebuilding ones do (new data must
        // not be missing from the replacement when the sweep finishes).
        let pending: Vec<(ChildIo, IoHandle, SpanId)> = ios
            .into_iter()
            .filter(|io| self.inner.states[io.spindle].get() != SpindleState::Dead)
            .map(|io| {
                let (h, sp) = self.submit_child(
                    io.spindle,
                    io.lba,
                    io.nsect,
                    Some(child_bytes(&io)),
                    &req,
                    svc,
                );
                (io, h, sp)
            })
            .collect();
        let mut ok = 0u32;
        let mut last_err = None;
        for (io, h, sp) in pending {
            let st = self
                .await_child_write(h, sp, io.spindle, io.lba, io.nsect, &req, svc, || {
                    child_bytes(&io)
                })
                .await;
            match st {
                IoStatus::Ok => ok += 1,
                st => last_err = Some(st),
            }
        }
        self.inner.sim.tracer().end(svc);
        let now = self.inner.sim.now();
        // RAID-1 succeeds while any leg holds the data; RAID-0 needs every
        // chunk to land, including on spindles that were already dead.
        let success = match self.inner.spec.level {
            RaidLevel::Raid1 => ok > 0,
            _ => {
                last_err.is_none()
                    && (0..self.spindles())
                        .all(|k| self.inner.states[k].get() != SpindleState::Dead)
            }
        };
        completion.complete(if success {
            IoResult::ok(None, now)
        } else {
            IoResult::error(last_err.unwrap_or(IoStatus::DeviceGone), now)
        });
    }

    /// RAID-5 writes: full rows compute parity from the new data; partial
    /// rows read-modify-write. Old-data/old-parity reads for every row are
    /// issued together, then all data+parity writes. Any degradation (or
    /// any phase-1 read failure) falls back to
    /// [`Volume::raid5_write_degraded`], which reconstructs whole rows.
    async fn raid5_write(&self, req: DiskRequest, completion: IoCompletion) {
        let svc = self.start_span("vol.write", &req);
        if (0..self.spindles()).any(|k| !self.healthy(k)) {
            self.raid5_write_degraded(req, completion, svc).await;
            return;
        }
        let stripe = self.inner.stripe_sectors;
        let n = self.spindles() as u32;
        let nd = (n - 1) as u64;
        let ssz = self.inner.sector_size as usize;
        let stripe_bytes = stripe as usize * ssz;
        let payload = req.data.as_deref().expect("write carries payload");

        // Partition into per-row chunk pieces: (data index, intra-chunk
        // sector offset, sectors, byte offset into the request payload).
        struct Piece {
            d: u32,
            intra: u64,
            nsect: u32,
            buf_off: usize,
        }
        let mut rows: BTreeMap<u64, Vec<Piece>> = BTreeMap::new();
        let mut cur = req.lba;
        let end = req.lba + req.nsect as u64;
        while cur < end {
            let run = (stripe as u64 - cur % stripe as u64).min(end - cur) as u32;
            let chunk = cur / stripe as u64;
            rows.entry(chunk / nd).or_default().push(Piece {
                d: (chunk % nd) as u32,
                intra: cur % stripe as u64,
                nsect: run,
                buf_off: (cur - req.lba) as usize * ssz,
            });
            cur += run as u64;
        }

        let spindle_of = |row: u64, d: u32| {
            let p = raid5_parity_spindle(row, n);
            (if d < p { d } else { d + 1 }) as usize
        };

        // Serialize parity RMW per touched row (ascending order, so
        // overlapping writers cannot deadlock): see `locked_rows`.
        let mut row_guards = Vec::with_capacity(rows.len());
        for &row in rows.keys() {
            row_guards.push(self.lock_row(row).await);
        }

        // Phase 1: for partial rows, read old data under each piece and
        // the old parity over the union of intra-chunk ranges.
        struct RowReads {
            handles: Vec<(IoHandle, SpanId)>, // one per piece, then parity
            lo: u64,
        }
        let mut reads: BTreeMap<u64, RowReads> = BTreeMap::new();
        for (&row, pieces) in &rows {
            let full = pieces.len() as u64 == nd && pieces.iter().all(|p| p.nsect == stripe);
            if full {
                continue;
            }
            let lo = pieces.iter().map(|p| p.intra).min().unwrap();
            let hi = pieces
                .iter()
                .map(|p| p.intra + p.nsect as u64)
                .max()
                .unwrap();
            let mut handles = Vec::new();
            for p in pieces {
                handles.push(self.submit_child(
                    spindle_of(row, p.d),
                    row * stripe as u64 + p.intra,
                    p.nsect,
                    None,
                    &req,
                    svc,
                ));
            }
            handles.push(self.submit_child(
                raid5_parity_spindle(row, n) as usize,
                row * stripe as u64 + lo,
                (hi - lo) as u32,
                None,
                &req,
                svc,
            ));
            reads.insert(row, RowReads { handles, lo });
        }

        // Await phase-1 reads and compute each partial row's new parity.
        // Any failure means the delta method has nothing sound to XOR
        // against: fall back to whole-row reconstruction (which re-reads
        // what it needs and routes around the failure).
        let mut parity_writes: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new(); // row -> (lba, bytes)
        let mut phase1_failed = false;
        for (&row, rr) in &mut reads {
            let pieces = &rows[&row];
            let mut old = Vec::new();
            for (h, sp) in rr.handles.drain(..) {
                let res = h.wait().await;
                self.inner.sim.tracer().end(sp);
                match res.status {
                    IoStatus::Ok => old.push(res.data.expect("read returns data")),
                    st => {
                        if st == IoStatus::DeviceGone {
                            // The span args identify the spindle; state is
                            // refreshed by the recovery path's own reads.
                        }
                        phase1_failed = true;
                    }
                }
            }
            if phase1_failed {
                break;
            }
            let old_parity = old.pop().expect("parity read present");
            let mut delta = old_parity;
            // delta starts as the old parity; XOR in old^new under each
            // piece, leaving uncovered bytes unchanged.
            for (p, old_data) in pieces.iter().zip(&old) {
                let base = (p.intra - rr.lo) as usize * ssz;
                let new_data = &payload[p.buf_off..p.buf_off + p.nsect as usize * ssz];
                for i in 0..new_data.len() {
                    delta[base + i] ^= old_data[i] ^ new_data[i];
                }
            }
            parity_writes.insert(row, (row * stripe as u64 + rr.lo, delta));
        }
        if phase1_failed {
            drop(row_guards); // The degraded path re-acquires them itself.
            self.raid5_write_degraded(req, completion, svc).await;
            return;
        }

        // Full rows: parity is the XOR of the new data chunks.
        for (&row, pieces) in &rows {
            if reads.contains_key(&row) {
                continue;
            }
            let mut parity = vec![0u8; stripe_bytes];
            for p in pieces {
                let new_data = &payload[p.buf_off..p.buf_off + stripe_bytes];
                for i in 0..stripe_bytes {
                    parity[i] ^= new_data[i];
                }
            }
            parity_writes.insert(row, (row * stripe as u64, parity));
        }

        // Phase 2: write new data and new parity for every row. Parity
        // bytes are retained for in-place retry of transient write errors
        // (a retried RMW cannot recompute them: the data chunks may
        // already hold new contents).
        enum WSrc {
            Payload { buf_off: usize, len: usize },
            Parity(u64),
        }
        let parity_keep: BTreeMap<u64, (u64, Vec<u8>)> = parity_writes;
        let mut pending: Vec<(IoHandle, SpanId, usize, u64, u32, WSrc)> = Vec::new();
        for (&row, pieces) in &rows {
            for p in pieces {
                let len = p.nsect as usize * ssz;
                let sp_idx = spindle_of(row, p.d);
                let lba = row * stripe as u64 + p.intra;
                let (h, sp) = self.submit_child(
                    sp_idx,
                    lba,
                    p.nsect,
                    Some(payload[p.buf_off..p.buf_off + len].to_vec()),
                    &req,
                    svc,
                );
                pending.push((
                    h,
                    sp,
                    sp_idx,
                    lba,
                    p.nsect,
                    WSrc::Payload {
                        buf_off: p.buf_off,
                        len,
                    },
                ));
            }
            let (lba, bytes) = &parity_keep[&row];
            let nsect = (bytes.len() / ssz) as u32;
            let sp_idx = raid5_parity_spindle(row, n) as usize;
            let (h, sp) = self.submit_child(sp_idx, *lba, nsect, Some(bytes.clone()), &req, svc);
            pending.push((h, sp, sp_idx, *lba, nsect, WSrc::Parity(row)));
        }
        let mut failed = None;
        for (h, sp, sp_idx, lba, nsect, src) in pending {
            let st = self
                .await_child_write(h, sp, sp_idx, lba, nsect, &req, svc, || match &src {
                    WSrc::Payload { buf_off, len } => payload[*buf_off..*buf_off + *len].to_vec(),
                    WSrc::Parity(row) => parity_keep[row].1.clone(),
                })
                .await;
            match st {
                IoStatus::Ok => {}
                // A spindle dying under the write leaves the row
                // single-degraded: still serviceable, not an error.
                IoStatus::DeviceGone => {}
                // A permanently unwritable sector under new data or parity
                // is real loss: the row's redundancy no longer covers it.
                IoStatus::MediaError => failed = Some(IoStatus::MediaError),
            }
        }
        // Two dead spindles exceed RAID-5's budget regardless of which
        // writes "succeeded".
        let dead = (0..self.spindles())
            .filter(|&k| self.inner.states[k].get() == SpindleState::Dead)
            .count();
        if dead > 1 {
            failed = Some(IoStatus::DeviceGone);
        }
        self.inner.sim.tracer().end(svc);
        let now = self.inner.sim.now();
        completion.complete(match failed {
            Some(st) => IoResult::error(st, now),
            None => IoResult::ok(None, now),
        });
    }

    /// Degraded-mode RAID-5 write: for every touched row, read the
    /// surviving chunks whole, reconstruct the missing one, overlay the
    /// new data, recompute parity from scratch, and write every chunk
    /// that still has a live home. Slower than delta-RMW (it always moves
    /// whole rows) but correct with a member missing — and the reason
    /// degraded-phase write throughput visibly drops in `iobench faults`.
    async fn raid5_write_degraded(&self, req: DiskRequest, completion: IoCompletion, svc: SpanId) {
        let stripe = self.inner.stripe_sectors;
        let n = self.spindles() as u32;
        let nd = (n - 1) as u64;
        let ssz = self.inner.sector_size as usize;
        let stripe_bytes = stripe as usize * ssz;
        let payload = req.data.as_deref().expect("write carries payload");

        // Row -> pieces of new data, as in the fast path.
        struct Piece {
            d: u32,
            intra: u64,
            nsect: u32,
            buf_off: usize,
        }
        let mut rows: BTreeMap<u64, Vec<Piece>> = BTreeMap::new();
        let mut cur = req.lba;
        let end = req.lba + req.nsect as u64;
        while cur < end {
            let run = (stripe as u64 - cur % stripe as u64).min(end - cur) as u32;
            let chunk = cur / stripe as u64;
            rows.entry(chunk / nd).or_default().push(Piece {
                d: (chunk % nd) as u32,
                intra: cur % stripe as u64,
                nsect: run,
                buf_off: (cur - req.lba) as usize * ssz,
            });
            cur += run as u64;
        }
        let spindle_of = |row: u64, d: u32| {
            let p = raid5_parity_spindle(row, n);
            (if d < p { d } else { d + 1 }) as usize
        };

        // Same per-row serialization as the fast path (ascending order).
        let mut row_guards = Vec::with_capacity(rows.len());
        for &row in rows.keys() {
            row_guards.push(self.lock_row(row).await);
        }

        let mut failed: Option<IoStatus> = None;
        for (&row, pieces) in &rows {
            // A racing rebuild sweep must redo any row this write touches.
            self.mark_rebuild_dirty(row);
            let row_lba = row * stripe as u64;
            // Read the whole row from every healthy spindle.
            let pending: Vec<(usize, IoHandle, SpanId)> = (0..n as usize)
                .filter(|&j| self.healthy(j))
                .map(|j| {
                    let (h, sp) = self.submit_child(j, row_lba, stripe, None, &req, svc);
                    (j, h, sp)
                })
                .collect();
            let mut chunks: Vec<Option<Vec<u8>>> = vec![None; n as usize];
            for (j, h, sp) in pending {
                let res = h.wait().await;
                self.inner.sim.tracer().end(sp);
                match res.status {
                    IoStatus::Ok => chunks[j] = Some(res.data.expect("read returns data")),
                    st => {
                        if st == IoStatus::DeviceGone {
                            self.mark_dead(j);
                        }
                    }
                }
            }
            let missing: Vec<usize> = (0..n as usize).filter(|&j| chunks[j].is_none()).collect();
            match missing.len() {
                0 => {}
                1 => {
                    // XOR of the survivors reconstructs the one absentee
                    // (data or parity: the equation is the same).
                    let mut acc = vec![0u8; stripe_bytes];
                    for c in chunks.iter().flatten() {
                        for (a, b) in acc.iter_mut().zip(c) {
                            *a ^= b;
                        }
                    }
                    chunks[missing[0]] = Some(acc);
                }
                _ => {
                    failed = Some(IoStatus::DeviceGone);
                    continue;
                }
            }
            // Overlay the new data onto its chunks.
            for p in pieces {
                let j = spindle_of(row, p.d);
                let chunk = chunks[j].as_mut().expect("row fully materialized");
                let base = p.intra as usize * ssz;
                let len = p.nsect as usize * ssz;
                chunk[base..base + len].copy_from_slice(&payload[p.buf_off..p.buf_off + len]);
            }
            // Fresh parity from the data chunks.
            let pj = raid5_parity_spindle(row, n) as usize;
            let mut parity = vec![0u8; stripe_bytes];
            for (j, chunk) in chunks.iter().enumerate() {
                if j == pj {
                    continue;
                }
                let chunk = chunk.as_ref().expect("row fully materialized");
                for (a, b) in parity.iter_mut().zip(chunk) {
                    *a ^= b;
                }
            }
            chunks[pj] = Some(parity);
            // Write every chunk that still has a live home (rebuilding
            // replacements included — that is how new rows reach them).
            let writes: Vec<(usize, IoHandle, SpanId)> = (0..n as usize)
                .filter(|&j| self.inner.states[j].get() != SpindleState::Dead)
                .map(|j| {
                    let bytes = chunks[j].as_ref().expect("row fully materialized").clone();
                    let (h, sp) = self.submit_child(j, row_lba, stripe, Some(bytes), &req, svc);
                    (j, h, sp)
                })
                .collect();
            for (j, h, sp) in writes {
                let st = self
                    .await_child_write(h, sp, j, row_lba, stripe, &req, svc, || {
                        chunks[j].as_ref().expect("row fully materialized").clone()
                    })
                    .await;
                match st {
                    IoStatus::Ok | IoStatus::DeviceGone => {}
                    IoStatus::MediaError => failed = Some(IoStatus::MediaError),
                }
            }
            let dead = (0..n as usize)
                .filter(|&j| self.inner.states[j].get() == SpindleState::Dead)
                .count();
            if dead > 1 {
                failed = Some(IoStatus::DeviceGone);
            }
        }
        self.inner.sim.tracer().end(svc);
        let now = self.inner.sim.now();
        completion.complete(match failed {
            Some(st) => IoResult::error(st, now),
            None => IoResult::ok(None, now),
        });
    }

    // ---- rebuild ----

    /// Resynchronizes spindle `k` (previously swapped in via
    /// [`Volume::replace_spindle`], or any non-dead member) from the
    /// surviving spindles, online: RAID-1 copies a healthy leg in
    /// [`REBUILD_CHUNK`]-sector units, RAID-5 XOR-reconstructs each row.
    /// Progress is published on the `vol.rebuild_progress` gauge and the
    /// sweep runs under a `vol.rebuild` span; each completed unit counts
    /// in `vol.rebuild_rows`. Units written by racing traffic are redone
    /// from the fresh state, so the member is exactly consistent when the
    /// state flips back to [`SpindleState::Healthy`].
    pub async fn rebuild(&self, k: u32) -> Result<(), &'static str> {
        let k = k as usize;
        if k >= self.spindles() {
            return Err("no such spindle");
        }
        if self.inner.spec.level == RaidLevel::Raid0 {
            return Err("raid0 has no redundancy to rebuild from");
        }
        if self.inner.states[k].get() == SpindleState::Dead {
            return Err("spindle is dead; swap in a replacement first");
        }
        self.inner.states[k].set(SpindleState::Rebuilding);
        let tracer = self.inner.sim.tracer();
        let span = tracer.start("vol.rebuild", 0, SpanId::NONE);
        tracer.arg(span, "spindle", k as u64);
        let stats = self.inner.sim.stats();
        let progress = stats.gauge("vol.rebuild_progress");
        let rows_done = stats.counter("vol.rebuild_rows");
        progress.set(0.0);
        let result = match self.inner.spec.level {
            RaidLevel::Raid1 => self.rebuild_mirror(k, &progress, &rows_done).await,
            RaidLevel::Raid5 => self.rebuild_parity(k, &progress, &rows_done).await,
            RaidLevel::Raid0 => unreachable!("rejected above"),
        };
        if result.is_ok() {
            self.inner.states[k].set(SpindleState::Healthy);
            progress.set(1.0);
        }
        self.inner.sim.tracer().end(span);
        result
    }

    /// One unit of a rebuild sweep, with the stale-snapshot protocol:
    /// clear the unit's dirty mark, reconstruct, write, and redo if a
    /// racing write re-marked it meanwhile.
    async fn rebuild_unit(
        &self,
        unit: u64,
        reconstruct: impl AsyncFn() -> Result<Vec<u8>, &'static str>,
        lba: u64,
        target: usize,
    ) -> Result<(), &'static str> {
        loop {
            self.inner.rebuild_dirty.borrow_mut().remove(&unit);
            let bytes = reconstruct().await?;
            let nsect = (bytes.len() / self.inner.sector_size as usize) as u32;
            if self
                .child(target)
                .try_write(lba, nsect, bytes)
                .await
                .is_err()
            {
                return Err("replacement spindle failed during rebuild");
            }
            // A write raced the reconstruction: our snapshot may predate
            // it, so the unit is re-done from current bytes.
            if !self.inner.rebuild_dirty.borrow().contains(&unit) {
                return Ok(());
            }
        }
    }

    async fn rebuild_mirror(
        &self,
        k: usize,
        progress: &simkit::stats::Gauge,
        rows_done: &simkit::stats::Counter,
    ) -> Result<(), &'static str> {
        let total = self.inner.total_sectors;
        let chunks = total.div_ceil(REBUILD_CHUNK);
        for c in 0..chunks {
            let lba = c * REBUILD_CHUNK;
            let nsect = REBUILD_CHUNK.min(total - lba) as u32;
            self.rebuild_unit(
                c,
                async || {
                    for j in 0..self.spindles() {
                        if j == k || !self.healthy(j) {
                            continue;
                        }
                        if let Ok(data) = self.child(j).try_read(lba, nsect).await {
                            return Ok(data);
                        }
                    }
                    Err("no healthy mirror leg to rebuild from")
                },
                lba,
                k,
            )
            .await?;
            rows_done.inc();
            progress.set((c + 1) as f64 / chunks as f64);
        }
        Ok(())
    }

    async fn rebuild_parity(
        &self,
        k: usize,
        progress: &simkit::stats::Gauge,
        rows_done: &simkit::stats::Counter,
    ) -> Result<(), &'static str> {
        let stripe = self.inner.stripe_sectors as u64;
        let nd = (self.spindles() - 1) as u64;
        let rows = self.inner.total_sectors / (stripe * nd);
        let stripe_bytes = stripe as usize * self.inner.sector_size as usize;
        for row in 0..rows {
            let lba = row * stripe;
            self.rebuild_unit(
                row,
                async || {
                    let mut acc = vec![0u8; stripe_bytes];
                    for j in 0..self.spindles() {
                        if j == k {
                            continue;
                        }
                        if !self.healthy(j) {
                            return Err("second spindle lost; row unrecoverable");
                        }
                        match self.child(j).try_read(lba, stripe as u32).await {
                            Ok(data) => {
                                for (a, b) in acc.iter_mut().zip(data) {
                                    *a ^= b;
                                }
                            }
                            Err(_) => return Err("survivor read failed during rebuild"),
                        }
                    }
                    Ok(acc)
                },
                lba,
                k,
            )
            .await?;
            rows_done.inc();
            progress.set((row + 1) as f64 / rows as f64);
        }
        Ok(())
    }

    async fn dispatch(self, req: DiskRequest, completion: IoCompletion) {
        match (self.inner.spec.level, req.op) {
            (RaidLevel::Raid0, DiskOp::Read) => {
                let ios = self.map_striped(req.lba, req.nsect, RaidLevel::Raid0);
                self.read_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid0, DiskOp::Write) => {
                let ios = self.map_striped(req.lba, req.nsect, RaidLevel::Raid0);
                self.write_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid1, DiskOp::Read) => {
                // Round-robin over healthy legs (the rotation still
                // advances one slot per read so balancing stays stable as
                // legs come and go).
                let n = self.spindles();
                let start = self.inner.next_mirror.get();
                self.inner.next_mirror.set((start + 1) % n);
                let k = (0..n)
                    .map(|d| (start + d) % n)
                    .find(|&j| self.healthy(j))
                    .unwrap_or(start);
                let ssz = self.inner.sector_size as usize;
                let ios = vec![ChildIo {
                    spindle: k,
                    lba: req.lba,
                    nsect: req.nsect,
                    pieces: vec![(0, req.nsect as usize * ssz)],
                }];
                self.read_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid1, DiskOp::Write) => {
                let ssz = self.inner.sector_size as usize;
                let ios = (0..self.spindles())
                    .map(|k| ChildIo {
                        spindle: k,
                        lba: req.lba,
                        nsect: req.nsect,
                        pieces: vec![(0, req.nsect as usize * ssz)],
                    })
                    .collect();
                self.write_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid5, DiskOp::Read) => {
                let ios = self.map_striped(req.lba, req.nsect, RaidLevel::Raid5);
                self.read_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid5, DiskOp::Write) => {
                self.raid5_write(req, completion).await;
            }
        }
    }

    /// Completes a malformed request with an error instead of panicking
    /// (same contract as the drive: the debug build trips an assertion).
    fn reject(&self, why: &'static str) -> IoHandle {
        debug_assert!(false, "{why}");
        let (handle, completion) = handle_pair();
        completion.complete(IoResult::error(IoStatus::MediaError, self.inner.sim.now()));
        handle
    }
}

/// Future returned by [`Volume::lock_row`]: resolves to the guard once no
/// other task holds the row.
struct LockRow {
    vol: Volume,
    row: u64,
}

impl Future for LockRow {
    type Output = RowGuard;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<RowGuard> {
        if self.vol.inner.locked_rows.borrow_mut().insert(self.row) {
            Poll::Ready(RowGuard {
                vol: self.vol.clone(),
                row: self.row,
            })
        } else {
            self.vol
                .inner
                .row_waiters
                .borrow_mut()
                .push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Exclusive ownership of one RAID-5 parity row; released (and waiters
/// woken) on drop.
struct RowGuard {
    vol: Volume,
    row: u64,
}

impl Drop for RowGuard {
    fn drop(&mut self) {
        self.vol.inner.locked_rows.borrow_mut().remove(&self.row);
        for w in self.vol.inner.row_waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }
}

impl BlockDevice for Volume {
    fn submit(&self, req: DiskRequest) -> IoHandle {
        if req.nsect == 0 {
            return self.reject("zero-length volume request");
        }
        if req.lba + req.nsect as u64 > self.inner.total_sectors {
            return self.reject("request beyond end of volume");
        }
        if let Some(data) = &req.data {
            if data.len() != req.nsect as usize * self.inner.sector_size as usize {
                return self.reject("write payload length mismatch");
            }
        } else if req.op == DiskOp::Write {
            return self.reject("write without payload");
        }
        let (handle, completion) = handle_pair();
        let vol = self.clone();
        self.inner
            .sim
            .spawn(async move { vol.dispatch(req, completion).await });
        handle
    }

    fn sector_size(&self) -> u32 {
        self.inner.sector_size
    }

    fn total_sectors(&self) -> u64 {
        self.inner.total_sectors
    }

    fn sector_time_ns(&self) -> u64 {
        self.child(0).sector_time_ns()
    }

    fn stats(&self) -> DiskStats {
        let mut sum = DiskStats::default();
        for c in self.inner.children.borrow().iter() {
            let s = c.stats();
            sum.reads += s.reads;
            sum.writes += s.writes;
            sum.sectors_read += s.sectors_read;
            sum.sectors_written += s.sectors_written;
            sum.seek_time += s.seek_time;
            sum.seeks += s.seeks;
            sum.rot_wait += s.rot_wait;
            sum.transfer_time += s.transfer_time;
            sum.trackbuf_hits += s.trackbuf_hits;
            sum.trackbuf_misses += s.trackbuf_misses;
            sum.coalesced += s.coalesced;
            sum.queue_wait += s.queue_wait;
            sum.busy += s.busy;
        }
        sum
    }

    fn reset_stats(&self) {
        for c in self.inner.children.borrow().iter() {
            c.reset_stats();
        }
    }

    fn queue_len(&self) -> usize {
        self.inner
            .children
            .borrow()
            .iter()
            .map(|c| c.queue_len())
            .sum()
    }

    fn shutdown(&self) {
        for c in self.inner.children.borrow().iter() {
            c.shutdown();
        }
    }
}
