//! The volume device: N drives behind one [`BlockDevice`].
//!
//! A volume is not a mechanism — it owns no arm and no platter. `submit`
//! validates the request, splits it into per-spindle child requests, and
//! spawns an orchestration task that fans them out to the member
//! [`Disk`]s, reassembles the result, and completes the parent handle.
//! Each child request carries its own `vol.spindle` trace span (argument
//! `spindle=K`) parented under the volume's `vol.read`/`vol.write` span,
//! so a Chrome trace shows a cluster fanning out across the array; each
//! member drive is constructed with [`Disk::new_spindle`], so
//! `disk.busy_ns{spindle=K}` attributes the queueing per leg.
//!
//! Address math (sector units throughout):
//!
//! - **RAID-0**: chunk `c = lba / stripe` lands on spindle `c % n` at
//!   child chunk `c / n`. Successive chunks on one spindle are contiguous
//!   on that child, so one volume request becomes at most one child
//!   request per spindle (scatter/gather lists, like a real HBA).
//! - **RAID-1**: writes go to every leg; reads round-robin across legs.
//! - **RAID-5** (left-asymmetric): parity for row `r` lives on spindle
//!   `(n-1) - (r % n)`; data chunks fill the remaining spindles in order.
//!   A full-row write computes parity from the new data alone; anything
//!   less pays the small-write penalty — read old data and old parity,
//!   XOR the delta, write data and parity back.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use diskmodel::request::handle_pair;
use diskmodel::{
    BlockDevice, Disk, DiskOp, DiskParams, DiskRequest, DiskStats, IoCompletion, IoHandle, IoResult,
};
use simkit::{Sim, SpanId};

use crate::spec::{RaidLevel, VolumeSpec};

/// RAID-0 address mapping: volume sector → (spindle, child sector).
pub fn raid0_map(lba: u64, stripe_sectors: u32, spindles: u32) -> (u32, u64) {
    let stripe = stripe_sectors as u64;
    let chunk = lba / stripe;
    let off = lba % stripe;
    let spindle = (chunk % spindles as u64) as u32;
    (spindle, (chunk / spindles as u64) * stripe + off)
}

/// Inverse of [`raid0_map`]: (spindle, child sector) → volume sector.
pub fn raid0_unmap(spindle: u32, child_lba: u64, stripe_sectors: u32, spindles: u32) -> u64 {
    let stripe = stripe_sectors as u64;
    let chunk_on_child = child_lba / stripe;
    let off = child_lba % stripe;
    (chunk_on_child * spindles as u64 + spindle as u64) * stripe + off
}

/// The spindle holding row `row`'s parity (left-asymmetric rotation).
pub fn raid5_parity_spindle(row: u64, spindles: u32) -> u32 {
    (spindles - 1) - (row % spindles as u64) as u32
}

/// RAID-5 data-address mapping: volume sector → (spindle, child sector).
pub fn raid5_map(lba: u64, stripe_sectors: u32, spindles: u32) -> (u32, u64) {
    let stripe = stripe_sectors as u64;
    let nd = (spindles - 1) as u64;
    let chunk = lba / stripe;
    let off = lba % stripe;
    let row = chunk / nd;
    let d = (chunk % nd) as u32;
    let p = raid5_parity_spindle(row, spindles);
    let spindle = if d < p { d } else { d + 1 };
    (spindle, row * stripe + off)
}

/// One child request: a contiguous run on one spindle, covering the listed
/// `(offset, len)` byte ranges of the volume request's buffer in order.
struct ChildIo {
    spindle: usize,
    lba: u64,
    nsect: u32,
    pieces: Vec<(usize, usize)>,
}

struct VolInner {
    sim: Sim,
    spec: VolumeSpec,
    children: Vec<Disk>,
    sector_size: u32,
    /// Stripe unit in sectors (RAID-0/5; 0 for RAID-1).
    stripe_sectors: u32,
    total_sectors: u64,
    /// Round-robin position for RAID-1 read balancing. A `Cell`, not
    /// randomness: balancing must be deterministic for byte-identical
    /// runs.
    next_mirror: Cell<usize>,
}

/// A RAID volume over N simulated drives. Clones share the volume.
#[derive(Clone)]
pub struct Volume {
    inner: Rc<VolInner>,
}

impl Volume {
    /// Builds the volume, creating `spec.spindles` identical member drives
    /// (labelled spindle 0..N-1) on `sim`.
    pub fn new(sim: &Sim, spec: &VolumeSpec, params: DiskParams) -> Volume {
        let children: Vec<Disk> = (0..spec.spindles)
            .map(|k| Disk::new_spindle(sim, params.clone(), k))
            .collect();
        let sector_size = children[0].sector_size();
        let stripe_sectors = spec.stripe_bytes.map_or(0, |b| b / sector_size);
        let child_sectors = children[0].total_sectors();
        let n = spec.spindles as u64;
        let total_sectors = match spec.level {
            // Striped levels use whole rows only, so the mapping stays a
            // clean bijection (the partial last row is sacrificed).
            RaidLevel::Raid0 => (child_sectors / stripe_sectors as u64) * stripe_sectors as u64 * n,
            RaidLevel::Raid1 => child_sectors,
            RaidLevel::Raid5 => {
                (child_sectors / stripe_sectors as u64) * stripe_sectors as u64 * (n - 1)
            }
        };
        assert!(total_sectors > 0, "volume has no addressable capacity");
        Volume {
            inner: Rc::new(VolInner {
                sim: sim.clone(),
                spec: *spec,
                children,
                sector_size,
                stripe_sectors,
                total_sectors,
                next_mirror: Cell::new(0),
            }),
        }
    }

    /// The spec this volume was built from.
    pub fn spec(&self) -> &VolumeSpec {
        &self.inner.spec
    }

    /// The member drives, indexed by spindle (tests and reports read legs
    /// directly to check mirror and parity invariants).
    pub fn children(&self) -> &[Disk] {
        &self.inner.children
    }

    /// Stripe unit in sectors (0 for RAID-1).
    pub fn stripe_sectors(&self) -> u32 {
        self.inner.stripe_sectors
    }

    // ---- request splitting ----

    fn map_striped(&self, lba: u64, nsect: u32, level: RaidLevel) -> Vec<ChildIo> {
        let stripe = self.inner.stripe_sectors as u64;
        let n = self.inner.children.len();
        let ssz = self.inner.sector_size as usize;
        let mut ios: Vec<ChildIo> = Vec::new();
        // Open scatter/gather list per spindle, for merging child-contiguous
        // chunks (RAID-0 only; RAID-5 data chunks skip parity rows, so
        // adjacency on a child is not guaranteed and each chunk stands
        // alone).
        let mut open: Vec<Option<usize>> = vec![None; n];
        let mut cur = lba;
        let end = lba + nsect as u64;
        while cur < end {
            let run = (stripe - cur % stripe).min(end - cur) as u32;
            let (sp, clba) = match level {
                RaidLevel::Raid0 => raid0_map(cur, self.inner.stripe_sectors, n as u32),
                RaidLevel::Raid5 => raid5_map(cur, self.inner.stripe_sectors, n as u32),
                RaidLevel::Raid1 => unreachable!("mirrors are not striped"),
            };
            let piece = ((cur - lba) as usize * ssz, run as usize * ssz);
            match open[sp as usize] {
                Some(i)
                    if level == RaidLevel::Raid0 && ios[i].lba + ios[i].nsect as u64 == clba =>
                {
                    ios[i].nsect += run;
                    ios[i].pieces.push(piece);
                }
                _ => {
                    open[sp as usize] = Some(ios.len());
                    ios.push(ChildIo {
                        spindle: sp as usize,
                        lba: clba,
                        nsect: run,
                        pieces: vec![piece],
                    });
                }
            }
            cur += run as u64;
        }
        ios
    }

    // ---- orchestration ----

    fn start_span(&self, name: &'static str, req: &DiskRequest) -> SpanId {
        let tracer = self.inner.sim.tracer();
        let svc = tracer.start(name, req.stream, req.span);
        tracer.arg(svc, "lba", req.lba);
        tracer.arg(svc, "nsect", req.nsect as u64);
        svc
    }

    /// Submits one child request under a fresh `vol.spindle` span.
    /// `data: Some` means a write, `None` a read.
    fn submit_child(
        &self,
        spindle: usize,
        lba: u64,
        nsect: u32,
        data: Option<Vec<u8>>,
        req: &DiskRequest,
        svc: SpanId,
    ) -> (IoHandle, SpanId) {
        let tracer = self.inner.sim.tracer();
        let sp = tracer.start("vol.spindle", req.stream, svc);
        tracer.arg(sp, "spindle", spindle as u64);
        let op = if data.is_some() {
            DiskOp::Write
        } else {
            DiskOp::Read
        };
        let h = self.inner.children[spindle].submit(DiskRequest {
            op,
            lba,
            nsect,
            data,
            ordered: req.ordered,
            stream: req.stream,
            span: sp,
        });
        (h, sp)
    }

    async fn read_fan(&self, req: DiskRequest, ios: Vec<ChildIo>, completion: IoCompletion) {
        let svc = self.start_span("vol.read", &req);
        let ssz = self.inner.sector_size as usize;
        let mut buf = vec![0u8; req.nsect as usize * ssz];
        let pending: Vec<(IoHandle, SpanId, ChildIo)> = ios
            .into_iter()
            .map(|io| {
                let (h, sp) = self.submit_child(io.spindle, io.lba, io.nsect, None, &req, svc);
                (h, sp, io)
            })
            .collect();
        for (h, sp, io) in pending {
            let res = h.wait().await;
            self.inner.sim.tracer().end(sp);
            let data = res.data.expect("read returns data");
            let mut src = 0;
            for (off, len) in &io.pieces {
                buf[*off..*off + *len].copy_from_slice(&data[src..src + *len]);
                src += *len;
            }
        }
        self.inner.sim.tracer().end(svc);
        completion.complete(IoResult {
            data: Some(buf),
            finished_at: self.inner.sim.now(),
        });
    }

    async fn write_fan(&self, req: DiskRequest, ios: Vec<ChildIo>, completion: IoCompletion) {
        let svc = self.start_span("vol.write", &req);
        let payload = req.data.as_deref().expect("write carries payload");
        let pending: Vec<(IoHandle, SpanId)> = ios
            .iter()
            .map(|io| {
                let mut data = Vec::with_capacity(io.pieces.iter().map(|(_, l)| l).sum());
                for (off, len) in &io.pieces {
                    data.extend_from_slice(&payload[*off..*off + *len]);
                }
                self.submit_child(io.spindle, io.lba, io.nsect, Some(data), &req, svc)
            })
            .collect();
        for (h, sp) in pending {
            h.wait().await;
            self.inner.sim.tracer().end(sp);
        }
        self.inner.sim.tracer().end(svc);
        completion.complete(IoResult {
            data: None,
            finished_at: self.inner.sim.now(),
        });
    }

    /// RAID-5 writes: full rows compute parity from the new data; partial
    /// rows read-modify-write. Old-data/old-parity reads for every row are
    /// issued together, then all data+parity writes.
    async fn raid5_write(&self, req: DiskRequest, completion: IoCompletion) {
        let svc = self.start_span("vol.write", &req);
        let stripe = self.inner.stripe_sectors;
        let n = self.inner.children.len() as u32;
        let nd = (n - 1) as u64;
        let ssz = self.inner.sector_size as usize;
        let stripe_bytes = stripe as usize * ssz;
        let payload = req.data.as_deref().expect("write carries payload");

        // Partition into per-row chunk pieces: (data index, intra-chunk
        // sector offset, sectors, byte offset into the request payload).
        struct Piece {
            d: u32,
            intra: u64,
            nsect: u32,
            buf_off: usize,
        }
        let mut rows: BTreeMap<u64, Vec<Piece>> = BTreeMap::new();
        let mut cur = req.lba;
        let end = req.lba + req.nsect as u64;
        while cur < end {
            let run = (stripe as u64 - cur % stripe as u64).min(end - cur) as u32;
            let chunk = cur / stripe as u64;
            rows.entry(chunk / nd).or_default().push(Piece {
                d: (chunk % nd) as u32,
                intra: cur % stripe as u64,
                nsect: run,
                buf_off: (cur - req.lba) as usize * ssz,
            });
            cur += run as u64;
        }

        let spindle_of = |row: u64, d: u32| {
            let p = raid5_parity_spindle(row, n);
            (if d < p { d } else { d + 1 }) as usize
        };

        // Phase 1: for partial rows, read old data under each piece and
        // the old parity over the union of intra-chunk ranges.
        struct RowReads {
            handles: Vec<(IoHandle, SpanId)>, // one per piece, then parity
            lo: u64,
        }
        let mut reads: BTreeMap<u64, RowReads> = BTreeMap::new();
        for (&row, pieces) in &rows {
            let full = pieces.len() as u64 == nd && pieces.iter().all(|p| p.nsect == stripe);
            if full {
                continue;
            }
            let lo = pieces.iter().map(|p| p.intra).min().unwrap();
            let hi = pieces
                .iter()
                .map(|p| p.intra + p.nsect as u64)
                .max()
                .unwrap();
            let mut handles = Vec::new();
            for p in pieces {
                handles.push(self.submit_child(
                    spindle_of(row, p.d),
                    row * stripe as u64 + p.intra,
                    p.nsect,
                    None,
                    &req,
                    svc,
                ));
            }
            handles.push(self.submit_child(
                raid5_parity_spindle(row, n) as usize,
                row * stripe as u64 + lo,
                (hi - lo) as u32,
                None,
                &req,
                svc,
            ));
            reads.insert(row, RowReads { handles, lo });
        }

        // Await phase-1 reads and compute each partial row's new parity.
        let mut parity_writes: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new(); // row -> (lba, bytes)
        for (&row, rr) in &mut reads {
            let pieces = &rows[&row];
            let mut old = Vec::new();
            for (h, sp) in rr.handles.drain(..) {
                let res = h.wait().await;
                self.inner.sim.tracer().end(sp);
                old.push(res.data.expect("read returns data"));
            }
            let old_parity = old.pop().expect("parity read present");
            let mut delta = old_parity;
            // delta starts as the old parity; XOR in old^new under each
            // piece, leaving uncovered bytes unchanged.
            for (p, old_data) in pieces.iter().zip(&old) {
                let base = (p.intra - rr.lo) as usize * ssz;
                let new_data = &payload[p.buf_off..p.buf_off + p.nsect as usize * ssz];
                for i in 0..new_data.len() {
                    delta[base + i] ^= old_data[i] ^ new_data[i];
                }
            }
            parity_writes.insert(row, (row * stripe as u64 + rr.lo, delta));
        }

        // Full rows: parity is the XOR of the new data chunks.
        for (&row, pieces) in &rows {
            if reads.contains_key(&row) {
                continue;
            }
            let mut parity = vec![0u8; stripe_bytes];
            for p in pieces {
                let new_data = &payload[p.buf_off..p.buf_off + stripe_bytes];
                for i in 0..stripe_bytes {
                    parity[i] ^= new_data[i];
                }
            }
            parity_writes.insert(row, (row * stripe as u64, parity));
        }

        // Phase 2: write new data and new parity for every row.
        let mut pending: Vec<(IoHandle, SpanId)> = Vec::new();
        for (&row, pieces) in &rows {
            for p in pieces {
                pending.push(self.submit_child(
                    spindle_of(row, p.d),
                    row * stripe as u64 + p.intra,
                    p.nsect,
                    Some(payload[p.buf_off..p.buf_off + p.nsect as usize * ssz].to_vec()),
                    &req,
                    svc,
                ));
            }
            let (lba, bytes) = parity_writes.remove(&row).expect("parity computed");
            let nsect = (bytes.len() / ssz) as u32;
            pending.push(self.submit_child(
                raid5_parity_spindle(row, n) as usize,
                lba,
                nsect,
                Some(bytes),
                &req,
                svc,
            ));
        }
        for (h, sp) in pending {
            h.wait().await;
            self.inner.sim.tracer().end(sp);
        }
        self.inner.sim.tracer().end(svc);
        completion.complete(IoResult {
            data: None,
            finished_at: self.inner.sim.now(),
        });
    }

    async fn dispatch(self, req: DiskRequest, completion: IoCompletion) {
        match (self.inner.spec.level, req.op) {
            (RaidLevel::Raid0, DiskOp::Read) => {
                let ios = self.map_striped(req.lba, req.nsect, RaidLevel::Raid0);
                self.read_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid0, DiskOp::Write) => {
                let ios = self.map_striped(req.lba, req.nsect, RaidLevel::Raid0);
                self.write_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid1, DiskOp::Read) => {
                let k = self.inner.next_mirror.get();
                self.inner
                    .next_mirror
                    .set((k + 1) % self.inner.children.len());
                let ssz = self.inner.sector_size as usize;
                let ios = vec![ChildIo {
                    spindle: k,
                    lba: req.lba,
                    nsect: req.nsect,
                    pieces: vec![(0, req.nsect as usize * ssz)],
                }];
                self.read_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid1, DiskOp::Write) => {
                let ssz = self.inner.sector_size as usize;
                let ios = (0..self.inner.children.len())
                    .map(|k| ChildIo {
                        spindle: k,
                        lba: req.lba,
                        nsect: req.nsect,
                        pieces: vec![(0, req.nsect as usize * ssz)],
                    })
                    .collect();
                self.write_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid5, DiskOp::Read) => {
                let ios = self.map_striped(req.lba, req.nsect, RaidLevel::Raid5);
                self.read_fan(req, ios, completion).await;
            }
            (RaidLevel::Raid5, DiskOp::Write) => {
                self.raid5_write(req, completion).await;
            }
        }
    }
}

impl BlockDevice for Volume {
    fn submit(&self, req: DiskRequest) -> IoHandle {
        assert!(req.nsect > 0, "zero-length volume request");
        assert!(
            req.lba + req.nsect as u64 <= self.inner.total_sectors,
            "request beyond end of volume"
        );
        if let Some(data) = &req.data {
            assert_eq!(
                data.len(),
                req.nsect as usize * self.inner.sector_size as usize,
                "write payload length mismatch"
            );
        } else {
            assert_eq!(req.op, DiskOp::Read, "write without payload");
        }
        let (handle, completion) = handle_pair();
        let vol = self.clone();
        self.inner
            .sim
            .spawn(async move { vol.dispatch(req, completion).await });
        handle
    }

    fn sector_size(&self) -> u32 {
        self.inner.sector_size
    }

    fn total_sectors(&self) -> u64 {
        self.inner.total_sectors
    }

    fn sector_time_ns(&self) -> u64 {
        self.inner.children[0].sector_time_ns()
    }

    fn stats(&self) -> DiskStats {
        let mut sum = DiskStats::default();
        for c in &self.inner.children {
            let s = c.stats();
            sum.reads += s.reads;
            sum.writes += s.writes;
            sum.sectors_read += s.sectors_read;
            sum.sectors_written += s.sectors_written;
            sum.seek_time += s.seek_time;
            sum.seeks += s.seeks;
            sum.rot_wait += s.rot_wait;
            sum.transfer_time += s.transfer_time;
            sum.trackbuf_hits += s.trackbuf_hits;
            sum.trackbuf_misses += s.trackbuf_misses;
            sum.coalesced += s.coalesced;
            sum.queue_wait += s.queue_wait;
            sum.busy += s.busy;
        }
        sum
    }

    fn reset_stats(&self) {
        for c in &self.inner.children {
            c.reset_stats();
        }
    }

    fn queue_len(&self) -> usize {
        self.inner.children.iter().map(|c| c.queue_len()).sum()
    }

    fn shutdown(&self) {
        for c in &self.inner.children {
            c.shutdown();
        }
    }
}
