//! # volmgr — RAID volumes over simulated drives
//!
//! The paper measures one 400 MB 1991 spindle; production arrays stripe,
//! mirror, or rotate parity across many. This crate composes N
//! [`diskmodel`] drives into a single [`BlockDevice`], so everything built
//! on that trait — the cluster executor, UFS, extentfs, the benchmarks —
//! mounts on an array unchanged:
//!
//! - **RAID-0**: striping; one request fans out to scatter/gather child
//!   requests, at most one per spindle.
//! - **RAID-1**: mirroring; writes go to every leg, reads round-robin
//!   (deterministically) across legs.
//! - **RAID-5**: rotating parity; full-row writes compute parity from new
//!   data, partial rows pay the small-write penalty (read old data and
//!   parity, XOR, write back) — the interaction the cluster-size sweep in
//!   `iobench volume` exists to measure.
//!
//! Redundant levels keep serving through member failure: a spindle that
//! answers [`diskmodel::IoStatus::DeviceGone`] is marked dead, reads fall
//! back to the surviving mirror leg or to parity reconstruction, and
//! [`Volume::rebuild`] resynchronizes a replacement online (see
//! [`volume`] for the degraded-write and stale-snapshot protocols).
//!
//! Observability: member drives are labelled, so the registry carries
//! `disk.busy_ns{spindle=K}` per leg, and every child request runs under a
//! `vol.spindle` span parented to the volume's `vol.read`/`vol.write`
//! span.

pub mod spec;
pub mod volume;

pub use spec::{RaidLevel, SpecError, VolumeSpec};
pub use volume::{raid0_map, raid0_unmap, raid5_map, raid5_parity_spindle, SpindleState, Volume};

use diskmodel::{DiskParams, SharedDevice};
use simkit::Sim;
use std::rc::Rc;

/// Builds the volume `spec` describes from `spec.spindles` drives with
/// identical `params`, as a [`SharedDevice`] ready to mount.
pub fn build(sim: &Sim, spec: &VolumeSpec, params: DiskParams) -> SharedDevice {
    Rc::new(Volume::new(sim, spec, params))
}
