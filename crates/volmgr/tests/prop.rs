//! Property tests for the volume address math: the RAID-0 sector →
//! (spindle, offset) mapping is a bijection over the volume's address
//! space, and RAID-5 data placement never lands on the row's parity
//! spindle.

use proptest::prelude::*;
use volmgr::{raid0_map, raid0_unmap, raid5_map, raid5_parity_spindle};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Forward/backward round-trips in both directions make the mapping a
    /// bijection: every volume sector has exactly one (spindle, offset)
    /// home, and every in-range (spindle, offset) names exactly one volume
    /// sector.
    #[test]
    fn raid0_mapping_is_a_bijection(
        stripe in 1u32..257,
        n in 2u32..9,
        rows in 1u64..64,
        pick in 0u64..u64::MAX,
    ) {
        let total = rows * stripe as u64 * n as u64;
        let lba = pick % total;
        let (spindle, child) = raid0_map(lba, stripe, n);
        prop_assert!(spindle < n);
        prop_assert!(child < rows * stripe as u64, "child offset in range");
        prop_assert_eq!(raid0_unmap(spindle, child, stripe, n), lba);

        // Surjectivity: an arbitrary in-range (spindle, offset) pair maps
        // back to a volume sector that round-trips onto it.
        let spindle2 = (pick / total) as u32 % n;
        let child2 = pick % (rows * stripe as u64);
        let vol = raid0_unmap(spindle2, child2, stripe, n);
        prop_assert!(vol < total);
        prop_assert_eq!(raid0_map(vol, stripe, n), (spindle2, child2));
    }

    /// Data chunks avoid the rotating parity spindle, and distinct volume
    /// sectors never collide on (spindle, offset).
    #[test]
    fn raid5_data_never_lands_on_parity(
        stripe in 1u32..129,
        n in 3u32..8,
        a in 0u64..100_000,
        b in 0u64..100_000,
    ) {
        let (sp, child) = raid5_map(a, stripe, n);
        prop_assert!(sp < n);
        let row = child / stripe as u64;
        prop_assert_ne!(sp, raid5_parity_spindle(row, n));
        if a != b {
            prop_assert_ne!(raid5_map(a, stripe, n), raid5_map(b, stripe, n));
        }
    }
}
