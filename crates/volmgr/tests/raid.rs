//! Volume-level invariants: data round-trips through every RAID level,
//! mirrors stay identical, parity rows XOR to zero after mixed writes, and
//! per-spindle labelled metrics sum to the registry's global busy time.

use diskmodel::{BlockDevice, BlockDeviceExt, DiskParams};
use simkit::Sim;
use volmgr::{raid5_parity_spindle, Volume, VolumeSpec};

fn vol(sim: &Sim, spec: &str) -> Volume {
    Volume::new(
        sim,
        &VolumeSpec::parse(spec).unwrap(),
        DiskParams::small_test(),
    )
}

/// A deterministic byte pattern distinguishing every sector of a buffer.
fn pattern(seed: u64, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

#[test]
fn raid0_roundtrips_across_chunk_boundaries() {
    let sim = Sim::new();
    let v = vol(&sim, "raid0:4:16k"); // 32-sector stripe.
    let d = v.clone();
    sim.run_until(async move {
        // A write spanning several chunks at an unaligned offset.
        let data = pattern(1, 100 * 512);
        d.write(17, 100, data.clone()).await;
        assert_eq!(d.read(17, 100).await, data);
        // Single-sector read inside the run.
        assert_eq!(d.read(50, 1).await, data[33 * 512..34 * 512].to_vec());
    });
    // The transfer really fanned out: more than one spindle moved sectors.
    let spindles_used = v
        .children()
        .iter()
        .filter(|c| c.stats().sectors_written > 0)
        .count();
    assert!(spindles_used >= 3, "write used {spindles_used} spindles");
}

#[test]
fn raid0_capacity_is_whole_rows() {
    let sim = Sim::new();
    let v = vol(&sim, "raid0:4:16k");
    let child = v.children()[0].total_sectors();
    let stripe = v.stripe_sectors() as u64;
    assert_eq!(v.total_sectors(), (child / stripe) * stripe * 4);
}

#[test]
fn raid1_mirrors_stay_identical_and_reads_balance() {
    let sim = Sim::new();
    let v = vol(&sim, "raid1:2");
    let d = v.clone();
    sim.run_until(async move {
        // Mixed writes: overlapping, unaligned, out of order.
        for (seed, lba, nsect) in [(1u64, 0u64, 64u32), (2, 40, 16), (3, 500, 3), (4, 41, 8)] {
            d.write(lba, nsect, pattern(seed, nsect as usize * 512))
                .await;
        }
        // Several reads: round-robin must serve both legs.
        for _ in 0..4 {
            d.read(0, 8).await;
        }
    });
    let reads: Vec<u64> = v.children().iter().map(|c| c.stats().reads).collect();
    assert_eq!(reads, vec![2, 2], "round-robin read balancing");
    // Mirror consistency: both legs byte-identical over the written span.
    let (a, b) = (v.children()[0].clone(), v.children()[1].clone());
    sim.run_until(async move {
        let left = a.read(0, 560).await;
        let right = b.read(0, 560).await;
        assert_eq!(left, right, "mirror legs diverged");
    });
}

#[test]
fn raid5_roundtrips_and_parity_invariant_holds() {
    let sim = Sim::new();
    let v = vol(&sim, "raid5:3:16k"); // 32-sector stripe, 2 data + 1 parity.
    let d = v.clone();
    let stripe = v.stripe_sectors(); // 32
    sim.run_until(async move {
        // Full-stripe write (row 0: exactly nd * stripe sectors).
        let full = pattern(7, 2 * stripe as usize * 512);
        d.write(0, 2 * stripe, full.clone()).await;
        // Partial-stripe RMW writes, including one straddling rows.
        let small = pattern(8, 5 * 512);
        d.write(3, 5, small.clone()).await;
        let straddle = pattern(9, 40 * 512);
        d.write(2 * stripe as u64 - 20, 40, straddle.clone()).await;
        // Everything reads back.
        assert_eq!(d.read(3, 5).await, small);
        assert_eq!(d.read(2 * stripe as u64 - 20, 40).await, straddle);
        let head = d.read(0, 3).await;
        assert_eq!(head, full[..3 * 512].to_vec());
    });
    // Parity invariant: every row XORs to zero across all spindles.
    let children: Vec<_> = v.children().to_vec();
    sim.run_until(async move {
        for row in 0..4u64 {
            let mut acc = vec![0u8; stripe as usize * 512];
            for c in &children {
                let leg = c.read(row * stripe as u64, stripe).await;
                for (a, b) in acc.iter_mut().zip(&leg) {
                    *a ^= b;
                }
            }
            assert!(
                acc.iter().all(|&b| b == 0),
                "row {row} parity violated after mixed writes"
            );
        }
    });
}

#[test]
fn raid5_parity_rotates_across_rows() {
    // Left-asymmetric rotation: each of n consecutive rows parks parity on
    // a different spindle.
    let n = 5;
    let mut seen: Vec<u32> = (0..n as u64).map(|r| raid5_parity_spindle(r, n)).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..n).collect::<Vec<_>>());
}

#[test]
fn spindle_busy_counters_sum_to_registry_busy_time() {
    let sim = Sim::new();
    let v = vol(&sim, "raid5:3:16k");
    let d = v.clone();
    sim.run_until(async move {
        d.write(0, 64, pattern(3, 64 * 512)).await;
        d.write(100, 7, pattern(4, 7 * 512)).await;
        d.read(0, 64).await;
    });
    let st = sim.stats();
    let per_spindle = st.labelled_counter_values("disk.busy_ns", "spindle");
    assert_eq!(per_spindle.len(), 3, "every spindle reported busy time");
    assert!(per_spindle.iter().all(|&(_, v)| v > 0));
    assert_eq!(
        st.labelled_counter_sum("disk.busy_ns", "spindle"),
        st.counter_value("disk.busy_ns"),
        "spindle busy must sum to the global busy counter"
    );
    // And the DiskStats aggregate agrees with the counters.
    assert_eq!(
        v.stats().busy.as_nanos(),
        st.counter_value("disk.busy_ns"),
        "volume stats() must sum child busy time"
    );
}

#[test]
fn volume_queue_len_and_shutdown_cover_all_legs() {
    let sim = Sim::new();
    let v = vol(&sim, "raid0:2:16k");
    let d = v.clone();
    sim.run_until(async move {
        d.write(0, 64, pattern(5, 64 * 512)).await;
    });
    assert_eq!(v.queue_len(), 0);
    v.shutdown(); // Must not hang or panic with drained queues.
}
