//! Redundancy under failure: for random fault masks, a degraded RAID-1 or
//! RAID-5 array returns byte-identical data to the healthy array; after a
//! replacement spindle is rebuilt, the array passes the same parity and
//! mirror invariants as one that never failed — including with writes
//! racing the rebuild sweep.

use std::rc::Rc;

use diskmodel::{BlockDevice, BlockDeviceExt, Disk, DiskParams, SharedDevice};
use proptest::prelude::*;
use simkit::{Sim, SimDuration};
use volmgr::{SpindleState, Volume, VolumeSpec};

fn vol(sim: &Sim, spec: &str) -> Volume {
    Volume::new(
        sim,
        &VolumeSpec::parse(spec).unwrap(),
        DiskParams::small_test(),
    )
}

/// A deterministic byte pattern distinguishing every sector of a buffer.
fn pattern(seed: u64, bytes: usize) -> Vec<u8> {
    (0..bytes)
        .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

/// Writes a few runs at pseudo-random offsets inside `lo..hi`, one run per
/// disjoint slot so no write clobbers another, returning the (lba, data)
/// pairs for later verification.
async fn scribble(d: &Volume, seed: u64, lo: u64, hi: u64) -> Vec<(u64, Vec<u8>)> {
    let mut runs = Vec::new();
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let slot = (hi - lo) / 6;
    for i in 0..6u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let nsect = 1 + (x >> 33) % 48.min(slot - 1);
        let lba = lo + i * slot + (x >> 7) % (slot - nsect);
        let data = pattern(seed ^ i, nsect as usize * 512);
        d.write(lba, nsect as u32, data.clone()).await;
        runs.push((lba, data));
    }
    runs
}

/// Every row of a RAID-5 array XORs to zero across all spindles.
fn assert_parity_clean(sim: &Sim, v: &Volume, rows: u64) {
    let children = v.children();
    let stripe = v.stripe_sectors();
    sim.run_until(async move {
        for row in 0..rows {
            let mut acc = vec![0u8; stripe as usize * 512];
            for c in &children {
                let leg = c.read(row * stripe as u64, stripe).await;
                for (a, b) in acc.iter_mut().zip(&leg) {
                    *a ^= b;
                }
            }
            assert!(acc.iter().all(|&b| b == 0), "row {row} parity violated");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Killing any one leg of a mirror leaves every read byte-identical to
    /// the healthy array's answer.
    #[test]
    fn degraded_raid1_reads_are_byte_identical(
        seed in 0u64..1_000_000,
        legs in 2u32..4,
        dead in 0u32..4,
    ) {
        let dead = dead % legs;
        let sim = Sim::new();
        let v = vol(&sim, &format!("raid1:{legs}"));
        let d = v.clone();
        let total = v.total_sectors();
        sim.run_until(async move {
            let runs = scribble(&d, seed, 0, total).await;
            let healthy: Vec<Vec<u8>> = {
                let mut h = Vec::new();
                for (lba, data) in &runs {
                    h.push(d.read(*lba, (data.len() / 512) as u32).await);
                }
                h
            };
            d.fail_spindle(dead);
            for ((lba, data), want) in runs.iter().zip(&healthy) {
                prop_assert_eq!(data, want, "healthy read disagrees with write");
                let got = d.read(*lba, (data.len() / 512) as u32).await;
                prop_assert_eq!(&got, want, "degraded read at lba {}", lba);
            }
        });
    }

    /// Killing any one spindle of a RAID-5 array leaves every read
    /// byte-identical: missing chunks are XOR-reconstructed from the
    /// survivors.
    #[test]
    fn degraded_raid5_reads_are_byte_identical(
        seed in 0u64..1_000_000,
        spindles in 3u32..6,
        dead in 0u32..6,
    ) {
        let dead = dead % spindles;
        let sim = Sim::new();
        let v = vol(&sim, &format!("raid5:{spindles}:16k"));
        let d = v.clone();
        let total = v.total_sectors();
        sim.run_until(async move {
            let runs = scribble(&d, seed, 0, total).await;
            d.fail_spindle(dead);
            for (lba, data) in &runs {
                let got = d.read(*lba, (data.len() / 512) as u32).await;
                prop_assert_eq!(&got, data, "degraded read at lba {}", lba);
            }
            // Also read a chunk that provably lives on the dead spindle,
            // so reconstruction definitely exercises.
            let stripe = d.stripe_sectors();
            let on_dead = (0..spindles as u64 * spindles as u64)
                .map(|c| c * stripe as u64)
                .find(|&lba| volmgr::raid5_map(lba, stripe, spindles).0 == dead)
                .unwrap();
            d.read(on_dead, stripe).await;
        });
        prop_assert!(sim.stats().counter_value("vol.degraded_reads") > 0);
    }
}

/// A fresh replacement disk compatible with the volume's members.
fn spare(sim: &Sim) -> SharedDevice {
    Rc::new(Disk::new_spindle(sim, DiskParams::small_test(), 9)) as SharedDevice
}

#[test]
fn raid5_rebuild_restores_parity_and_data() {
    let sim = Sim::new();
    let v = vol(&sim, "raid5:4:16k");
    let d = v.clone();
    let total = v.total_sectors();
    let runs = sim.run_until(async move { scribble(&d, 42, 0, total / 2).await });

    // Lose spindle 1, then write more while degraded (the full-row
    // reconstruct-write path).
    v.fail_spindle(1);
    let d = v.clone();
    let degraded_runs = sim.run_until(async move { scribble(&d, 43, total / 2, total).await });

    // Swap in a blank spare and rebuild online.
    v.replace_spindle(1, spare(&sim));
    assert_eq!(v.spindle_state(1), SpindleState::Rebuilding);
    let d = v.clone();
    sim.run_until(async move { d.rebuild(1).await.unwrap() });
    assert_eq!(v.spindle_state(1), SpindleState::Healthy);
    assert!(sim.stats().counter_value("vol.rebuild_rows") > 0);

    // All data — pre-failure and degraded-era — reads back, and the
    // parity invariant holds on the rebuilt array.
    let d = v.clone();
    sim.run_until(async move {
        for (lba, data) in runs.iter().chain(&degraded_runs) {
            assert_eq!(&d.read(*lba, (data.len() / 512) as u32).await, data);
        }
    });
    let stripe = v.stripe_sectors() as u64;
    assert_parity_clean(&sim, &v, total / (stripe * 3));
}

#[test]
fn raid1_rebuild_leaves_legs_identical() {
    let sim = Sim::new();
    let v = vol(&sim, "raid1:2");
    let d = v.clone();
    let total = v.total_sectors();
    let runs = sim.run_until(async move { scribble(&d, 7, 0, total).await });

    v.fail_spindle(0);
    v.replace_spindle(0, spare(&sim));
    let d = v.clone();
    sim.run_until(async move { d.rebuild(0).await.unwrap() });
    assert_eq!(v.spindle_state(0), SpindleState::Healthy);

    // Every written run is now present on the rebuilt leg itself.
    let children = v.children();
    sim.run_until(async move {
        for (lba, data) in &runs {
            let leg = children[0].read(*lba, (data.len() / 512) as u32).await;
            assert_eq!(&leg, data, "rebuilt leg diverges at lba {lba}");
        }
    });
}

#[test]
fn writes_racing_the_rebuild_sweep_are_not_lost() {
    let sim = Sim::new();
    let v = vol(&sim, "raid5:4:16k");
    let d = v.clone();
    let total = v.total_sectors();
    sim.run_until(async move {
        scribble(&d, 11, 0, total).await;
    });

    v.fail_spindle(2);
    v.replace_spindle(2, spare(&sim));

    // Concurrent writer: keeps mutating low rows while the sweep runs, so
    // some rows are re-marked dirty and re-done.
    let d = v.clone();
    let s = sim.clone();
    let writer = sim.spawn(async move {
        let mut runs = Vec::new();
        for i in 0..8u64 {
            let data = pattern(100 + i, 24 * 512);
            d.write(i * 32, 24, data.clone()).await;
            runs.push((i * 32, data));
            s.sleep(SimDuration::from_micros(200)).await;
        }
        runs
    });
    let d = v.clone();
    sim.run_until(async move { d.rebuild(2).await.unwrap() });
    let runs = sim.run_until(writer);

    let d = v.clone();
    sim.run_until(async move {
        for (lba, data) in &runs {
            assert_eq!(&d.read(*lba, 24).await, data);
        }
    });
    let stripe = v.stripe_sectors() as u64;
    assert_parity_clean(&sim, &v, total / (stripe * 3));
}

#[test]
fn concurrent_partial_writes_to_one_row_keep_parity_sound() {
    // Two read-modify-write updates to different chunks of the SAME parity
    // row, in flight together. Without per-row serialization both read the
    // old parity and the second write-back erases the first's contribution
    // — the classic RAID-5 write hole, visible only after a failure.
    for k in 0..4 {
        let sim = Sim::new();
        let v = vol(&sim, "raid5:4:16k");
        let d = v.clone();
        sim.run_until(async move {
            let a = pattern(1, 8 * 512);
            let b = pattern(2, 8 * 512);
            // lba 0 = row 0 chunk 0; lba 32 = row 0 chunk 1 (stripe is 32
            // sectors). Submit both before awaiting either.
            let ha = d.submit(diskmodel::DiskRequest {
                op: diskmodel::DiskOp::Write,
                lba: 0,
                nsect: 8,
                data: Some(a.clone()),
                ordered: false,
                stream: 0,
                span: simkit::SpanId::NONE,
            });
            let hb = d.submit(diskmodel::DiskRequest {
                op: diskmodel::DiskOp::Write,
                lba: 32,
                nsect: 8,
                data: Some(b.clone()),
                ordered: false,
                stream: 0,
                span: simkit::SpanId::NONE,
            });
            ha.wait().await;
            hb.wait().await;
            assert_eq!(d.read(0, 8).await, a);
            assert_eq!(d.read(32, 8).await, b);
            // The real check: reconstruction must still work whichever
            // spindle dies.
            d.fail_spindle(k);
            assert_eq!(d.read(0, 8).await, a, "spindle {k} dead: chunk 0");
            assert_eq!(d.read(32, 8).await, b, "spindle {k} dead: chunk 1");
        });
    }
    // And a healthy array's parity row must XOR clean after the race.
    let sim = Sim::new();
    let v = vol(&sim, "raid5:4:16k");
    let d = v.clone();
    sim.run_until(async move {
        let ha = d.submit(diskmodel::DiskRequest {
            op: diskmodel::DiskOp::Write,
            lba: 0,
            nsect: 8,
            data: Some(pattern(1, 8 * 512)),
            ordered: false,
            stream: 0,
            span: simkit::SpanId::NONE,
        });
        let hb = d.submit(diskmodel::DiskRequest {
            op: diskmodel::DiskOp::Write,
            lba: 32,
            nsect: 8,
            data: Some(pattern(2, 8 * 512)),
            ordered: false,
            stream: 0,
            span: simkit::SpanId::NONE,
        });
        ha.wait().await;
        hb.wait().await;
    });
    assert_parity_clean(&sim, &v, 1);
}

#[test]
fn rebuild_rejects_raid0_and_dead_targets() {
    let sim = Sim::new();
    let v0 = vol(&sim, "raid0:2:16k");
    let d = v0.clone();
    sim.run_until(async move { assert!(d.rebuild(0).await.is_err()) });

    let v1 = vol(&sim, "raid1:2");
    v1.fail_spindle(1);
    let d = v1.clone();
    // A dead member cannot be rebuilt in place; it needs a replacement.
    sim.run_until(async move { assert!(d.rebuild(1).await.is_err()) });
}
