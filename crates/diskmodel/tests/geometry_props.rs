//! Property tests for geometry address mapping, including zoned drives.

use diskmodel::{Geometry, Zone};
use proptest::prelude::*;

fn uniform_geometry() -> impl Strategy<Value = Geometry> {
    (8u32..128, 1u32..16, 4u32..256, 0u32..16).prop_map(|(spt, heads, cyls, skew)| Geometry {
        sector_size: 512,
        sectors_per_track: spt,
        heads,
        cylinders: cyls,
        rpm: 3600,
        track_skew: skew,
        cyl_skew: skew * 2,
        zones: None,
    })
}

fn zoned_geometry() -> impl Strategy<Value = Geometry> {
    (
        1u32..16,
        proptest::collection::vec(8u32..128, 1..5),
        10u32..50,
    )
        .prop_map(|(heads, spts, cyls_per_zone)| {
            let zones: Vec<Zone> = spts
                .iter()
                .enumerate()
                .map(|(i, &spt)| Zone {
                    start_cyl: i as u32 * cyls_per_zone,
                    sectors_per_track: spt,
                })
                .collect();
            let cylinders = spts.len() as u32 * cyls_per_zone;
            Geometry {
                sector_size: 512,
                sectors_per_track: 0,
                heads,
                cylinders,
                rpm: 3600,
                track_skew: 4,
                cyl_skew: 8,
                zones: Some(zones),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// LBA → CHS → LBA is the identity for every sector of any uniform
    /// drive (sampled), and CHS components are always in range.
    #[test]
    fn uniform_roundtrip(g in uniform_geometry(), frac in 0.0f64..1.0) {
        g.validate();
        let total = g.total_sectors();
        let lba = ((total - 1) as f64 * frac) as u64;
        let chs = g.lba_to_chs(lba);
        prop_assert!(chs.cyl < g.cylinders);
        prop_assert!(chs.head < g.heads);
        prop_assert!(chs.sector < g.spt(chs.cyl));
        prop_assert_eq!(g.chs_to_lba(chs), lba);
    }

    /// Same for zoned drives, plus: zone capacities sum to the total, and
    /// the angular slot is always within the track.
    #[test]
    fn zoned_roundtrip(g in zoned_geometry(), frac in 0.0f64..1.0) {
        g.validate();
        let total = g.total_sectors();
        let lba = ((total - 1) as f64 * frac) as u64;
        let chs = g.lba_to_chs(lba);
        prop_assert!(chs.sector < g.spt(chs.cyl));
        prop_assert_eq!(g.chs_to_lba(chs), lba);
        prop_assert!(g.angular_slot(chs) < g.spt(chs.cyl));
    }

    /// Consecutive LBAs are physically consecutive: same track and +1
    /// sector, or the start of the next track.
    #[test]
    fn lba_adjacency_maps_to_track_order(g in uniform_geometry(), frac in 0.0f64..1.0) {
        let total = g.total_sectors();
        if total < 2 { return Ok(()); }
        let lba = ((total - 2) as f64 * frac) as u64;
        let a = g.lba_to_chs(lba);
        let b = g.lba_to_chs(lba + 1);
        if a.sector + 1 < g.spt(a.cyl) {
            prop_assert_eq!((b.cyl, b.head, b.sector), (a.cyl, a.head, a.sector + 1));
        } else {
            prop_assert_eq!(b.sector, 0);
            prop_assert_eq!(g.track_index(b), g.track_index(a) + 1);
        }
    }
}
