//! Property tests for the disk simulator: whatever the request mix, every
//! request completes, data round-trips exactly, ordering constraints hold,
//! and the virtual clock only moves forward.

use diskmodel::{BlockDevice, BlockDeviceExt, Disk, DiskOp, DiskParams, DiskRequest};
use proptest::prelude::*;
use simkit::Sim;

#[derive(Clone, Debug)]
struct Req {
    write: bool,
    lba: u64,
    nsect: u32,
    seed: u8,
    ordered: bool,
}

fn req_strategy(max_lba: u64) -> impl Strategy<Value = Req> {
    (
        any::<bool>(),
        0..max_lba - 64,
        1u32..32,
        any::<u8>(),
        prop::bool::weighted(0.1),
    )
        .prop_map(|(write, lba, nsect, seed, ordered)| Req {
            write,
            lba,
            nsect,
            seed,
            ordered,
        })
}

fn payload(nsect: u32, seed: u8) -> Vec<u8> {
    (0..nsect as usize * 512)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Concurrent submission: every request completes; completion times are
    /// monotone per the single-server mechanism; reads after quiesce see
    /// the last write to each sector.
    #[test]
    fn all_requests_complete_and_data_round_trips(
        reqs in proptest::collection::vec(req_strategy(16_000), 1..40),
        coalesce in any::<bool>(),
        disksort in any::<bool>(),
    ) {
        let sim = Sim::new();
        let params = DiskParams {
            coalesce_limit: if coalesce { Some(112) } else { None },
            use_disksort: disksort,
            ..DiskParams::small_test()
        };
        let disk = Disk::new(&sim, params);
        let d = disk.clone();
        let reqs2 = reqs.clone();
        sim.run_until(async move {
            // Submit everything up front, then await all completions.
            let handles: Vec<_> = reqs2
                .iter()
                .map(|r| {
                    d.submit(DiskRequest {
                        op: if r.write { DiskOp::Write } else { DiskOp::Read },
                        lba: r.lba,
                        nsect: r.nsect,
                        data: r.write.then(|| payload(r.nsect, r.seed)),
                        ordered: r.ordered,
                        stream: 0,
                        span: simkit::SpanId::NONE,
                    })
                })
                .collect();
            let mut ordered_times = Vec::new();
            for (h, r) in handles.into_iter().zip(reqs2.iter()) {
                let result = h.wait().await;
                if r.ordered {
                    ordered_times.push((result.finished_at, r.lba));
                }
                if !r.write {
                    let data = result.data.expect("reads return data");
                    assert_eq!(data.len(), r.nsect as usize * 512);
                }
            }
            // Verify final sector contents: replay the writes in submission
            // order is NOT valid under reordering, so instead check each
            // write whose range no later-submitted write overlaps.
            for (i, r) in reqs2.iter().enumerate() {
                if !r.write {
                    continue;
                }
                let overlapped = reqs2.iter().enumerate().any(|(j, o)| {
                    j != i
                        && o.write
                        && o.lba < r.lba + r.nsect as u64
                        && r.lba < o.lba + o.nsect as u64
                });
                if !overlapped {
                    let got = d.read(r.lba, r.nsect).await;
                    assert_eq!(got, payload(r.nsect, r.seed), "write {i} lost");
                }
            }
        });
    }

    /// `B_ORDER` requests complete in submission order relative to each
    /// other, whatever else is in the queue.
    #[test]
    fn ordered_requests_complete_in_submission_order(
        reqs in proptest::collection::vec(req_strategy(16_000), 2..30),
    ) {
        let sim = Sim::new();
        let disk = Disk::new(&sim, DiskParams::small_test());
        let d = disk.clone();
        sim.run_until(async move {
            let handles: Vec<_> = reqs
                .iter()
                .map(|r| {
                    d.submit(DiskRequest {
                        op: DiskOp::Write,
                        lba: r.lba,
                        nsect: r.nsect,
                        data: Some(payload(r.nsect, r.seed)),
                        ordered: r.ordered,
                        stream: 0,
                        span: simkit::SpanId::NONE,
                    })
                })
                .collect();
            let mut last_ordered = None;
            for (h, r) in handles.into_iter().zip(reqs.iter()) {
                let t = h.wait().await.finished_at;
                if r.ordered {
                    if let Some(prev) = last_ordered {
                        assert!(t > prev, "B_ORDER completions out of order");
                    }
                    last_ordered = Some(t);
                }
            }
        });
    }
}
