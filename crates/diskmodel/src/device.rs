//! The storage seam: what the I/O path needs from "a thing that services
//! [`DiskRequest`]s".
//!
//! Everything above the driver — the cluster executor, the file systems,
//! the benchmarks — used to hold a concrete [`Disk`](crate::Disk). The
//! trait splits that dependency so a composed device (a RAID volume in
//! `volmgr`, fanning one request out across several spindles) can stand in
//! for a single drive without the layers above noticing. Only geometry the
//! upper layers actually consume is exposed: the sector size (transfer
//! alignment), the device length, and the nominal media rate (the
//! `rotdelay` → blocks conversion); cylinders, heads and zones stay the
//! drive's private business, because a volume has no single answer for
//! them.

use std::rc::Rc;

use simkit::SpanId;

use crate::disk::DiskStats;
use crate::request::{DiskOp, DiskRequest, IoHandle, IoStatus};

/// A request-queueing block device: one disk, or a volume composed of
/// several.
///
/// Object-safe by design — mounts hold `Rc<dyn BlockDevice>` (see
/// [`SharedDevice`]). The async wait side lives on [`IoHandle`]; the
/// convenience read/write wrappers live in [`BlockDeviceExt`] so this
/// trait stays dyn-compatible.
pub trait BlockDevice {
    /// Submits an arbitrary request (including `ordered` barriers) and
    /// returns the handle to await its completion.
    ///
    /// Malformed requests (zero length, out of range, payload length
    /// mismatch) are bugs in the layer above: implementations trip a
    /// `debug_assert!` and, in release builds, complete the handle with
    /// [`IoStatus::MediaError`] instead of panicking.
    fn submit(&self, req: DiskRequest) -> IoHandle;

    /// Bytes per sector (the transfer alignment unit).
    fn sector_size(&self) -> u32;

    /// Addressable sectors. Requests must lie in `[0, total_sectors)`.
    fn total_sectors(&self) -> u64;

    /// Nominal media time to transfer one sector, nanoseconds (the
    /// fastest zone for zoned drives; a representative child for
    /// volumes). Upper layers use it for the `rotdelay` → blocks
    /// conversion, not for exact accounting.
    fn sector_time_ns(&self) -> u64;

    /// Snapshot of accumulated statistics (volumes: summed over
    /// spindles).
    fn stats(&self) -> DiskStats;

    /// Resets accumulated statistics.
    fn reset_stats(&self);

    /// Requests currently waiting for service (volumes: summed over
    /// spindles).
    fn queue_len(&self) -> usize;

    /// Stops the service task(s) once the queue drains.
    fn shutdown(&self);

    /// Submits a read of `nsect` sectors at `lba` (untagged stream).
    fn submit_read(&self, lba: u64, nsect: u32) -> IoHandle {
        self.submit_read_tagged(lba, nsect, 0)
    }

    /// Submits a read of `nsect` sectors at `lba` on behalf of `stream`.
    fn submit_read_tagged(&self, lba: u64, nsect: u32, stream: u32) -> IoHandle {
        self.submit_read_for(lba, nsect, stream, SpanId::NONE)
    }

    /// Submits a read on behalf of `stream`, parenting the device's trace
    /// spans under `span`.
    fn submit_read_for(&self, lba: u64, nsect: u32, stream: u32, span: SpanId) -> IoHandle {
        self.submit(DiskRequest {
            op: DiskOp::Read,
            lba,
            nsect,
            data: None,
            ordered: false,
            stream,
            span,
        })
    }

    /// Submits a write of `data` (exactly `nsect` sectors) at `lba`
    /// (untagged stream).
    fn submit_write(&self, lba: u64, nsect: u32, data: Vec<u8>) -> IoHandle {
        self.submit_write_tagged(lba, nsect, data, 0)
    }

    /// Submits a write of `data` at `lba` on behalf of `stream`.
    fn submit_write_tagged(&self, lba: u64, nsect: u32, data: Vec<u8>, stream: u32) -> IoHandle {
        self.submit_write_for(lba, nsect, data, stream, SpanId::NONE)
    }

    /// Submits a write on behalf of `stream`, parenting the device's trace
    /// spans under `span`.
    fn submit_write_for(
        &self,
        lba: u64,
        nsect: u32,
        data: Vec<u8>,
        stream: u32,
        span: SpanId,
    ) -> IoHandle {
        self.submit(DiskRequest {
            op: DiskOp::Write,
            lba,
            nsect,
            data: Some(data),
            ordered: false,
            stream,
            span,
        })
    }
}

/// A shared handle to any block device — the type mounts actually hold.
pub type SharedDevice = Rc<dyn BlockDevice>;

/// Immediate resubmissions [`BlockDeviceExt::try_read`]/[`try_write`]
/// attempt on a transient [`IoStatus::MediaError`] before giving up.
/// Resubmission is free in virtual time (the mechanism still charges
/// rotation for the retry pass), so there is no backoff here — the
/// policy-level retry with backoff lives in `vfs::iopath`.
///
/// [`try_write`]: BlockDeviceExt::try_write
pub const EXT_RETRIES: u32 = 4;

/// Await-style convenience over any [`BlockDevice`] (including `dyn`).
/// Separate from the object-safe trait because async methods would make it
/// non-dispatchable.
#[allow(async_fn_in_trait)] // Single-threaded simulation: futures are !Send by design.
pub trait BlockDeviceExt: BlockDevice {
    /// Read and wait, resubmitting up to [`EXT_RETRIES`] times on a media
    /// error (transient faults clear under retry; latent ones do not).
    async fn try_read(&self, lba: u64, nsect: u32) -> Result<Vec<u8>, IoStatus>;

    /// Write and wait, with the same bounded retry as
    /// [`BlockDeviceExt::try_read`].
    async fn try_write(&self, lba: u64, nsect: u32, data: Vec<u8>) -> Result<(), IoStatus>;

    /// Read and wait.
    ///
    /// # Panics
    ///
    /// Panics if the device reports an unrecoverable error — for callers
    /// (mkfs, tests) that run on devices known to be healthy. Fallible
    /// paths use [`BlockDeviceExt::try_read`].
    async fn read(&self, lba: u64, nsect: u32) -> Vec<u8>;

    /// Write and wait.
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable device errors, like
    /// [`BlockDeviceExt::read`].
    async fn write(&self, lba: u64, nsect: u32, data: Vec<u8>);
}

impl<T: BlockDevice + ?Sized> BlockDeviceExt for T {
    async fn try_read(&self, lba: u64, nsect: u32) -> Result<Vec<u8>, IoStatus> {
        let mut attempt = 0;
        loop {
            let res = self.submit_read(lba, nsect).wait().await;
            match res.status {
                IoStatus::Ok => return Ok(res.data.expect("read returns data")),
                IoStatus::MediaError if attempt < EXT_RETRIES => attempt += 1,
                status => return Err(status),
            }
        }
    }

    async fn try_write(&self, lba: u64, nsect: u32, data: Vec<u8>) -> Result<(), IoStatus> {
        let mut attempt = 0;
        loop {
            // Submission consumes its payload, so retries need the original
            // kept here. These wrappers carry metadata traffic (superblock,
            // group headers, mkfs), not the clustered data path — the extra
            // clone per write is off the hot path, and the last attempt
            // moves the buffer instead of copying it.
            let payload = if attempt < EXT_RETRIES {
                data.clone()
            } else {
                return match self.submit_write(lba, nsect, data).wait().await.status {
                    IoStatus::Ok => Ok(()),
                    status => Err(status),
                };
            };
            let res = self.submit_write(lba, nsect, payload).wait().await;
            match res.status {
                IoStatus::Ok => return Ok(()),
                IoStatus::MediaError => attempt += 1,
                status => return Err(status),
            }
        }
    }

    async fn read(&self, lba: u64, nsect: u32) -> Vec<u8> {
        self.try_read(lba, nsect)
            .await
            .expect("unrecoverable device error on read")
    }

    async fn write(&self, lba: u64, nsect: u32, data: Vec<u8>) {
        self.try_write(lba, nsect, data)
            .await
            .expect("unrecoverable device error on write");
    }
}
