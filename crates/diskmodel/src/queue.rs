//! The disk request queue: `disksort` ordering, `B_ORDER` barriers, and
//! optional driver-level coalescing.
//!
//! `disksort` is the BSD one-way elevator (C-LOOK): among eligible requests,
//! pick the one with the smallest LBA at or beyond the current head
//! position; if none, wrap to the smallest LBA outright. This is the routine
//! the paper credits for the no-write-limit random-update win (config D's
//! FRU beating config A's): with an unbounded queue, disksort gets to sort
//! N scattered writes into two sweeps.
//!
//! `B_ORDER` (the paper's Further Work proposal) marks a request as a
//! barrier: it must be serviced after every request submitted before it and
//! before every request submitted after it.
//!
//! Coalescing implements the rejected "driver clustering" alternative: when
//! the driver dequeues a request it also absorbs queued requests that are
//! physically contiguous with it (same direction), issuing one larger
//! transfer.

use std::cell::RefCell;
use std::rc::Rc;

use simkit::{Event, SimTime};

use crate::request::{DiskOp, DiskRequest, IoSlot};

pub(crate) struct Queued {
    pub(crate) seq: u64,
    pub(crate) req: DiskRequest,
    pub(crate) event: Event,
    pub(crate) slot: Rc<RefCell<IoSlot>>,
    pub(crate) submitted_at: SimTime,
}

/// The pending-request queue.
pub(crate) struct DiskQueue {
    items: Vec<Queued>,
    next_seq: u64,
}

impl DiskQueue {
    pub(crate) fn new() -> Self {
        DiskQueue {
            items: Vec::new(),
            next_seq: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn push(
        &mut self,
        req: DiskRequest,
        event: Event,
        slot: Rc<RefCell<IoSlot>>,
        now: SimTime,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push(Queued {
            seq,
            req,
            event,
            slot,
            submitted_at: now,
        });
    }

    /// Sequence number of the earliest unserviced `B_ORDER` request, if any.
    fn barrier_seq(&self) -> Option<u64> {
        self.items
            .iter()
            .filter(|q| q.req.ordered)
            .map(|q| q.seq)
            .min()
    }

    /// Selects the next request per disksort, honoring barriers.
    ///
    /// Returns the index into `items`.
    fn select(&self, head_lba: u64) -> Option<usize> {
        if self.items.is_empty() {
            return None;
        }
        let barrier = self.barrier_seq();
        let eligible = |q: &Queued| match barrier {
            // Requests submitted before the barrier may still be sorted
            // among themselves.
            Some(b) => q.seq < b,
            None => true,
        };
        let mut chosen: Option<usize> = None;
        let mut chosen_key: Option<(bool, u64)> = None; // (wrapped, lba): prefer not-wrapped, then lowest lba
        for (i, q) in self.items.iter().enumerate() {
            if !eligible(q) {
                continue;
            }
            let wrapped = q.req.lba < head_lba;
            let key = (wrapped, q.req.lba);
            if chosen_key.map(|c| key < c).unwrap_or(true) {
                chosen = Some(i);
                chosen_key = Some(key);
            }
        }
        if chosen.is_some() {
            return chosen;
        }
        // Everything eligible is gone: the barrier request itself is next
        // (items is non-empty, so when nothing sorts ahead of the barrier
        // the barrier exists; the fold below also covers the impossible
        // no-barrier case gracefully instead of unwrapping).
        debug_assert!(barrier.is_some(), "no barrier yet nothing eligible");
        match barrier {
            Some(b) => self.items.iter().position(|q| q.seq == b),
            None => Some(0),
        }
    }

    /// Removes and returns the next request (no coalescing).
    pub(crate) fn take_next(&mut self, head_lba: u64) -> Option<Queued> {
        let i = self.select(head_lba)?;
        Some(self.items.swap_remove(i))
    }

    /// Removes and returns the oldest request (submission order, no
    /// sorting) — models drivers that skip `disksort`.
    pub(crate) fn take_fifo(&mut self) -> Option<Queued> {
        if self.items.is_empty() {
            return None;
        }
        let mut min_i = 0;
        for (i, q) in self.items.iter().enumerate() {
            if q.seq < self.items[min_i].seq {
                min_i = i;
            }
        }
        Some(self.items.swap_remove(min_i))
    }

    /// Removes and returns the next request plus any queued requests that
    /// are physically contiguous with it (same direction, not ordered),
    /// merged into one batch of at most `max_sectors`. The batch is sorted
    /// by LBA and its members form one contiguous span.
    pub(crate) fn take_next_coalesced(
        &mut self,
        head_lba: u64,
        max_sectors: u32,
    ) -> Option<Vec<Queued>> {
        let first = self.take_next(head_lba)?;
        if first.req.ordered {
            return Some(vec![first]);
        }
        let barrier = self.barrier_seq();
        let mergeable = |q: &Queued, op: DiskOp| {
            q.req.op == op && !q.req.ordered && barrier.map(|b| q.seq < b).unwrap_or(true)
        };
        let op = first.req.op;
        // Track the batch's contiguous span incrementally: the batch is
        // never empty, so the span needs no unwrap-on-empty bookkeeping.
        let mut span_start = first.req.lba;
        let mut span_end = first.req.lba + first.req.nsect as u64;
        let mut total = first.req.nsect;
        let mut batch = vec![first];
        loop {
            let next = self.items.iter().position(|q| {
                mergeable(q, op)
                    && (q.req.lba + q.req.nsect as u64 == span_start || q.req.lba == span_end)
                    && total + q.req.nsect <= max_sectors
            });
            match next {
                Some(i) => {
                    let q = self.items.swap_remove(i);
                    total += q.req.nsect;
                    span_start = span_start.min(q.req.lba);
                    span_end = span_end.max(q.req.lba + q.req.nsect as u64);
                    batch.push(q);
                }
                None => break,
            }
        }
        batch.sort_by_key(|q| q.req.lba);
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::new_handle;

    fn push(q: &mut DiskQueue, op: DiskOp, lba: u64, nsect: u32, ordered: bool) {
        let (_h, event, slot) = new_handle();
        // Handles are dropped in tests that only exercise ordering.
        q.push(
            DiskRequest {
                op,
                lba,
                nsect,
                data: if op == DiskOp::Write {
                    Some(vec![0u8; nsect as usize * 512])
                } else {
                    None
                },
                ordered,
                stream: 0,
                span: simkit::SpanId::NONE,
            },
            event,
            slot,
            SimTime::ZERO,
        );
    }

    fn drain_order(q: &mut DiskQueue, mut head: u64) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some(item) = q.take_next(head) {
            head = item.req.lba + item.req.nsect as u64;
            order.push(item.req.lba);
        }
        order
    }

    #[test]
    fn disksort_one_way_elevator() {
        let mut q = DiskQueue::new();
        for lba in [50u64, 10, 30, 70, 20] {
            push(&mut q, DiskOp::Read, lba, 1, false);
        }
        // Head at 25: service 30, 50, 70, then wrap to 10, 20.
        assert_eq!(drain_order(&mut q, 25), vec![30, 50, 70, 10, 20]);
    }

    #[test]
    fn disksort_sorts_seek_storm_into_two_sweeps() {
        // The paper's example: alternating writes to the beginning and end
        // of the disk sort into one pass over each region.
        let mut q = DiskQueue::new();
        for i in 0..4u64 {
            push(&mut q, DiskOp::Write, i, 1, false); // "beginning"
            push(&mut q, DiskOp::Write, 1000 + i, 1, false); // "end"
        }
        let order = drain_order(&mut q, 0);
        assert_eq!(order, vec![0, 1, 2, 3, 1000, 1001, 1002, 1003]);
    }

    #[test]
    fn barrier_is_not_reordered() {
        let mut q = DiskQueue::new();
        push(&mut q, DiskOp::Write, 90, 1, false); // seq 0
        push(&mut q, DiskOp::Write, 80, 1, false); // seq 1
        push(&mut q, DiskOp::Write, 10, 1, true); // seq 2: barrier
        push(&mut q, DiskOp::Write, 5, 1, false); // seq 3
        push(&mut q, DiskOp::Write, 50, 1, false); // seq 4
                                                   // Pre-barrier requests sort among themselves (head 0 → 80, 90),
                                                   // then the barrier, then the rest sort from the new head position
                                                   // (11 → 50 first, wrap to 5).
        assert_eq!(drain_order(&mut q, 0), vec![80, 90, 10, 50, 5]);
    }

    #[test]
    fn two_barriers_preserve_mutual_order() {
        let mut q = DiskQueue::new();
        push(&mut q, DiskOp::Write, 100, 1, true); // seq 0
        push(&mut q, DiskOp::Write, 50, 1, true); // seq 1
        push(&mut q, DiskOp::Write, 1, 1, false); // seq 2
        assert_eq!(drain_order(&mut q, 0), vec![100, 50, 1]);
    }

    #[test]
    fn coalesce_merges_contiguous_same_op() {
        let mut q = DiskQueue::new();
        push(&mut q, DiskOp::Write, 16, 16, false);
        push(&mut q, DiskOp::Write, 0, 16, false);
        push(&mut q, DiskOp::Write, 32, 16, false);
        push(&mut q, DiskOp::Write, 64, 16, false); // Gap at 48: not merged.
        let batch = q.take_next_coalesced(0, 256).unwrap();
        let lbas: Vec<u64> = batch.iter().map(|b| b.req.lba).collect();
        assert_eq!(lbas, vec![0, 16, 32]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn coalesce_respects_max_and_op() {
        let mut q = DiskQueue::new();
        push(&mut q, DiskOp::Write, 0, 16, false);
        push(&mut q, DiskOp::Read, 16, 16, false); // Different op: not merged.
        push(&mut q, DiskOp::Write, 16, 16, false);
        push(&mut q, DiskOp::Write, 32, 16, false);
        let batch = q.take_next_coalesced(0, 32).unwrap();
        assert_eq!(batch.len(), 2, "32-sector cap stops the merge");
        assert_eq!(batch[1].req.op, DiskOp::Write);
    }

    #[test]
    fn coalesce_never_crosses_barrier() {
        let mut q = DiskQueue::new();
        push(&mut q, DiskOp::Write, 0, 16, false); // seq 0
        push(&mut q, DiskOp::Write, 16, 16, true); // seq 1: barrier
        push(&mut q, DiskOp::Write, 32, 16, false); // seq 2
        let batch = q.take_next_coalesced(0, 256).unwrap();
        assert_eq!(batch.len(), 1, "barrier stops coalescing");
        assert_eq!(batch[0].req.lba, 0);
        let batch2 = q.take_next_coalesced(16, 256).unwrap();
        assert_eq!(batch2.len(), 1);
        assert!(batch2[0].req.ordered);
    }
}
