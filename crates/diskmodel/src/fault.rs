//! Deterministic fault injection: a [`FaultDevice`] wraps any
//! [`BlockDevice`] and fails requests according to a seeded, reproducible
//! plan.
//!
//! Four fault shapes, matching how real drives die:
//!
//! - **Latent media errors** (`media=`): an LBA range that always fails.
//!   The rest of the device keeps working — redundancy above (RAID-1
//!   mirror fallback, RAID-5 parity reconstruction) can still serve the
//!   data.
//! - **Transient errors** (`transient=`): a range that fails the first *N*
//!   requests touching it, then recovers — the case bounded retry exists
//!   for.
//! - **Spindle death** (`die=`): past a virtual instant the whole device
//!   answers [`IoStatus::DeviceGone`], including requests already in
//!   flight when it died.
//! - **Power cut** (`cut=`): not an error injected on the I/O path but a
//!   stopping point for the crash-consistency harness. The device journals
//!   every write; [`FaultDevice::crash_image`] replays the cut: writes
//!   that completed before it survive whole, writes in flight at the cut
//!   come back *torn* — a seeded prefix of their sectors, possibly empty
//!   (lost entirely).
//!
//! All randomness comes from [`simkit::SimRng`] seeded by the plan, so a
//! given `--faults` string produces byte-identical behavior on every run
//! at any `--jobs` count.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use simkit::{Sim, SimRng, SimTime};

use crate::device::{BlockDevice, SharedDevice};
use crate::disk::DiskStats;
use crate::ns;
use crate::request::{handle_pair, DiskOp, DiskRequest, IoHandle, IoResult, IoStatus};

/// Virtual time a drive spends discovering a media error before reporting
/// it: real drives retry internally (ECC passes, head re-reads) far longer
/// than a clean transfer takes. 5 ms ≈ a few revolutions of the modeled
/// spindle.
pub const FAULT_ERROR_LATENCY_NS: u64 = 5_000_000;

/// Virtual time for the host to decide a dead device is not answering — a
/// stand-in for the command timeout. Kept short so degraded-mode fallback
/// is visible but not dominant in the latency distributions.
pub const FAULT_GONE_LATENCY_NS: u64 = 1_000_000;

/// Why a `--faults` string was rejected. `Display` gives the exact
/// complaint the CLI prints before its usage text (same contract as
/// `volmgr`'s `SpecError`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FaultParseError {}

fn err(msg: impl Into<String>) -> FaultParseError {
    FaultParseError(msg.into())
}

/// Parses a virtual-time literal: a non-negative integer with an optional
/// `us`/`ms`/`s` suffix; bare numbers are milliseconds.
fn parse_time(s: &str) -> Result<SimTime, FaultParseError> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("us") {
        (d, 1_000u64)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1_000_000)
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(err(format!(
            "bad time '{s}': want <int>[us|ms|s] (bare = ms)"
        )));
    }
    let n: u64 = digits
        .parse()
        .map_err(|_| err(format!("time '{s}' out of range")))?;
    n.checked_mul(mult)
        .map(SimTime::from_nanos)
        .ok_or_else(|| err(format!("time '{s}' out of range")))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, FaultParseError> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(err(format!(
            "bad {what} '{s}': want a non-negative integer"
        )));
    }
    s.parse()
        .map_err(|_| err(format!("{what} '{s}' out of range")))
}

fn parse_u32(s: &str, what: &str) -> Result<u32, FaultParseError> {
    let v = parse_u64(s, what)?;
    u32::try_from(v).map_err(|_| err(format!("{what} '{s}' out of range")))
}

/// Splits `spindle:rest` at the first `:`.
fn split_spindle<'a>(s: &'a str, clause: &str) -> Result<(u32, &'a str), FaultParseError> {
    let (sp, rest) = s
        .split_once(':')
        .ok_or_else(|| err(format!("bad {clause} '{s}': want <spindle>:<range>")))?;
    Ok((parse_u32(sp, "spindle")?, rest))
}

/// Splits `lba+nsect`.
fn split_range(s: &str, clause: &str) -> Result<(u64, u32), FaultParseError> {
    let (lba, n) = s
        .split_once('+')
        .ok_or_else(|| err(format!("bad {clause} range '{s}': want <lba>+<nsect>")))?;
    let nsect = parse_u32(n, "sector count")?;
    if nsect == 0 {
        return Err(err(format!("bad {clause} range '{s}': zero-length range")));
    }
    Ok((parse_u64(lba, "lba")?, nsect))
}

/// A parsed, validated `--faults` plan for a whole array.
///
/// Grammar: comma-joined clauses, each one of
///
/// ```text
/// seed=<u64>                              rng seed for torn-write prefixes
/// media=<spindle>:<lba>+<nsect>           latent media error (permanent)
/// transient=<spindle>:<lba>+<nsect>x<n>   fails the first n touches, then heals
/// die=<spindle>@<time>                    whole-spindle death at a virtual time
/// cut=<time>                              power-cut instant for the crash harness
/// ```
///
/// Times are non-negative integers with an optional `us`/`ms`/`s` suffix;
/// bare numbers are milliseconds. The grammar is deliberately rigid: a
/// malformed plan must produce a precise complaint (exit 2 + usage), not a
/// guessed fault load.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// Seed for torn-write prefix lengths (default 0).
    pub seed: u64,
    /// Power-cut instant, if the plan has one.
    pub cut: Option<SimTime>,
    media: Vec<(u32, u64, u32)>,
    transient: Vec<(u32, u64, u32, u32)>,
    die: Vec<(u32, SimTime)>,
}

impl FaultPlan {
    /// Parses a `--faults` string. See the type-level grammar.
    pub fn parse(s: &str) -> Result<FaultPlan, FaultParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(err("empty fault plan"));
        }
        let mut plan = FaultPlan::default();
        let mut seen_seed = false;
        for clause in s.split(',') {
            let clause = clause.trim();
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| err(format!("bad clause '{clause}': want key=value")))?;
            match key {
                "seed" => {
                    if seen_seed {
                        return Err(err("duplicate seed clause"));
                    }
                    seen_seed = true;
                    plan.seed = parse_u64(val, "seed")?;
                }
                "media" => {
                    let (sp, range) = split_spindle(val, "media")?;
                    let (lba, nsect) = split_range(range, "media")?;
                    plan.media.push((sp, lba, nsect));
                }
                "transient" => {
                    let (sp, rest) = split_spindle(val, "transient")?;
                    let (range, count) = rest.rsplit_once('x').ok_or_else(|| {
                        err(format!("bad transient '{val}': want <lba>+<nsect>x<count>"))
                    })?;
                    let (lba, nsect) = split_range(range, "transient")?;
                    let count = parse_u32(count, "transient count")?;
                    if count == 0 {
                        return Err(err(format!("bad transient '{val}': zero count")));
                    }
                    plan.transient.push((sp, lba, nsect, count));
                }
                "die" => {
                    let (sp, at) = val
                        .split_once('@')
                        .ok_or_else(|| err(format!("bad die '{val}': want <spindle>@<time>")))?;
                    let sp = parse_u32(sp, "spindle")?;
                    if plan.die.iter().any(|&(d, _)| d == sp) {
                        return Err(err(format!("duplicate die clause for spindle {sp}")));
                    }
                    plan.die.push((sp, parse_time(at)?));
                }
                "cut" => {
                    if plan.cut.is_some() {
                        return Err(err("duplicate cut clause"));
                    }
                    plan.cut = Some(parse_time(val)?);
                }
                _ => {
                    return Err(err(format!(
                        "unknown fault clause '{key}' (want seed/media/transient/die/cut)"
                    )))
                }
            }
        }
        Ok(plan)
    }

    /// Faults addressed to spindle `k` (a single-disk setup is spindle 0).
    pub fn for_spindle(&self, k: u32) -> SpindleFaults {
        SpindleFaults {
            media: self
                .media
                .iter()
                .filter(|&&(sp, ..)| sp == k)
                .map(|&(_, lba, nsect)| (lba, nsect))
                .collect(),
            transient: self
                .transient
                .iter()
                .filter(|&&(sp, ..)| sp == k)
                .map(|&(_, lba, nsect, count)| (lba, nsect, count))
                .collect(),
            die_at: self.die.iter().find(|&&(sp, _)| sp == k).map(|&(_, at)| at),
        }
    }

    /// Highest spindle index any clause names, for validating the plan
    /// against the array width.
    pub fn max_spindle(&self) -> Option<u32> {
        self.media
            .iter()
            .map(|&(sp, ..)| sp)
            .chain(self.transient.iter().map(|&(sp, ..)| sp))
            .chain(self.die.iter().map(|&(sp, _)| sp))
            .max()
    }

    /// True when no clause injects I/O-path faults (the plan may still
    /// carry a `cut`).
    pub fn is_error_free(&self) -> bool {
        self.media.is_empty() && self.transient.is_empty() && self.die.is_empty()
    }
}

/// The faults one member device is configured with (see
/// [`FaultPlan::for_spindle`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpindleFaults {
    /// Permanent bad ranges: `(lba, nsect)`.
    pub media: Vec<(u64, u32)>,
    /// Self-healing ranges: `(lba, nsect, failures_before_recovery)`.
    pub transient: Vec<(u64, u32, u32)>,
    /// Virtual instant the whole spindle stops answering.
    pub die_at: Option<SimTime>,
}

impl SpindleFaults {
    /// True when this spindle has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.media.is_empty() && self.transient.is_empty() && self.die_at.is_none()
    }
}

struct TransientRange {
    lba: u64,
    nsect: u32,
    remaining: Cell<u32>,
}

/// One write the journal remembers, for crash-image reconstruction.
struct JournalEntry {
    lba: u64,
    nsect: u32,
    data: Vec<u8>,
    finished_at: Cell<Option<SimTime>>,
}

/// A write to replay onto a fresh device when reconstructing post-crash
/// media state.
#[derive(Debug)]
pub struct ReplayWrite {
    /// Starting sector.
    pub lba: u64,
    /// Sectors actually persisted (≤ the original request; 0-sector torn
    /// writes are dropped from the image entirely).
    pub nsect: u32,
    /// Payload prefix covering `nsect` sectors.
    pub data: Vec<u8>,
    /// True when this write was in flight at the cut and survives only as
    /// a prefix.
    pub torn: bool,
}

struct FaultInner {
    sim: Sim,
    base: SharedDevice,
    media: Vec<(u64, u32)>,
    transient: RefCell<Vec<TransientRange>>,
    die_at: Cell<Option<SimTime>>,
    journal: Option<RefCell<Vec<JournalEntry>>>,
}

impl FaultInner {
    /// Checks the static fault tables for `[lba, lba+nsect)`. Permanent
    /// ranges win over transient ones; a transient hit burns one of the
    /// range's remaining failures.
    fn check_media(&self, lba: u64, nsect: u32) -> bool {
        let end = lba + nsect as u64;
        let overlaps = |flba: u64, fn_: u32| flba < end && lba < flba + fn_ as u64;
        if self.media.iter().any(|&(flba, fn_)| overlaps(flba, fn_)) {
            return true;
        }
        for t in self.transient.borrow().iter() {
            if overlaps(t.lba, t.nsect) && t.remaining.get() > 0 {
                t.remaining.set(t.remaining.get() - 1);
                return true;
            }
        }
        false
    }
}

/// A fault-injecting wrapper around any [`BlockDevice`]. See the module
/// docs for the fault model.
#[derive(Clone)]
pub struct FaultDevice {
    inner: Rc<FaultInner>,
    seed: u64,
}

impl FaultDevice {
    /// Wraps `base` with the given faults. No write journal: crash images
    /// are unavailable, but nothing is cloned on the write path.
    pub fn new(sim: &Sim, base: SharedDevice, faults: SpindleFaults, seed: u64) -> FaultDevice {
        Self::build(sim, base, faults, seed, false)
    }

    /// Wraps `base` with the given faults *and* journals every write so
    /// [`FaultDevice::crash_image`] can reconstruct post-power-cut media
    /// state. Costs one payload clone per write.
    pub fn with_journal(
        sim: &Sim,
        base: SharedDevice,
        faults: SpindleFaults,
        seed: u64,
    ) -> FaultDevice {
        Self::build(sim, base, faults, seed, true)
    }

    fn build(
        sim: &Sim,
        base: SharedDevice,
        faults: SpindleFaults,
        seed: u64,
        journal: bool,
    ) -> FaultDevice {
        FaultDevice {
            inner: Rc::new(FaultInner {
                sim: sim.clone(),
                base,
                media: faults.media,
                transient: RefCell::new(
                    faults
                        .transient
                        .into_iter()
                        .map(|(lba, nsect, count)| TransientRange {
                            lba,
                            nsect,
                            remaining: Cell::new(count),
                        })
                        .collect(),
                ),
                die_at: Cell::new(faults.die_at),
                journal: journal.then(|| RefCell::new(Vec::new())),
            }),
            seed,
        }
    }

    /// The wrapped device.
    pub fn base(&self) -> &SharedDevice {
        &self.inner.base
    }

    /// Schedules (or reschedules) whole-spindle death at `at`, on a device
    /// already in service. The `die=` clause of a `--faults` plan fixes the
    /// instant at construction; experiment drivers that key fault onset to
    /// workload progress (`iobench faults`) set it here instead. Requests
    /// in flight at `at` die with the spindle, exactly as with a planned
    /// death.
    pub fn schedule_death(&self, at: SimTime) {
        self.inner.die_at.set(Some(at));
    }

    /// Arms one more transient range at runtime: the next `count` requests
    /// touching `[lba, lba+nsect)` fail with a media error, then the range
    /// heals. Same semantics as a `transient=` plan clause.
    pub fn arm_transient(&self, lba: u64, nsect: u32, count: u32) {
        self.inner.transient.borrow_mut().push(TransientRange {
            lba,
            nsect,
            remaining: Cell::new(count),
        });
    }

    /// Reconstructs what the media holds after power dies at `cut`:
    /// writes that completed by then, in completion order, followed by
    /// seeded torn prefixes (possibly zero sectors — the write is lost)
    /// of writes still in flight, in submission order.
    ///
    /// Replay the returned writes onto a *fresh* device to get the
    /// post-crash state; the wrapped device's own store is not rewound.
    ///
    /// # Panics
    ///
    /// Panics if the device was built without a journal
    /// ([`FaultDevice::new`] instead of [`FaultDevice::with_journal`]).
    pub fn crash_image(&self, cut: SimTime) -> Vec<ReplayWrite> {
        let journal = self
            .inner
            .journal
            .as_ref()
            .expect("crash_image on a FaultDevice built without a journal")
            .borrow();
        let sector = self.inner.base.sector_size() as usize;
        // Durable writes first, ordered by completion (ties broken by
        // journal index — submission order — for determinism).
        let mut durable: Vec<(SimTime, usize)> = journal
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e.finished_at.get() {
                Some(t) if t <= cut => Some((t, i)),
                _ => None,
            })
            .collect();
        durable.sort();
        let mut image: Vec<ReplayWrite> = durable
            .into_iter()
            .map(|(_, i)| {
                let e = &journal[i];
                ReplayWrite {
                    lba: e.lba,
                    nsect: e.nsect,
                    data: e.data.clone(),
                    torn: false,
                }
            })
            .collect();
        // Writes in flight at the cut persist only a seeded prefix of
        // their sectors; a zero-sector prefix means the write was lost.
        let mut rng = SimRng::new(self.seed ^ 0x746f_726e); // "torn"
        for e in journal.iter() {
            let in_flight = match e.finished_at.get() {
                None => true,
                Some(t) => t > cut,
            };
            if !in_flight {
                continue;
            }
            let kept = rng.gen_range(e.nsect as u64 + 1) as u32;
            if kept == 0 {
                continue;
            }
            image.push(ReplayWrite {
                lba: e.lba,
                nsect: kept,
                data: e.data[..kept as usize * sector].to_vec(),
                torn: true,
            });
        }
        image
    }
}

impl BlockDevice for FaultDevice {
    fn submit(&self, req: DiskRequest) -> IoHandle {
        let (handle, completion) = handle_pair();
        let inner = Rc::clone(&self.inner);
        self.inner.sim.spawn(async move {
            let s = inner.sim.stats();
            // A dead device never answers; the host's command timeout
            // turns silence into DeviceGone.
            if inner.die_at.get().is_some_and(|t| inner.sim.now() >= t) {
                inner.sim.sleep(ns(FAULT_GONE_LATENCY_NS)).await;
                s.counter("fault.injected{kind=gone}").inc();
                completion.complete(IoResult::error(IoStatus::DeviceGone, inner.sim.now()));
                return;
            }
            // Media faults fail the transfer before any data moves (a
            // failed write persists nothing); the drive burns its
            // internal-retry budget before admitting defeat.
            if inner.check_media(req.lba, req.nsect) {
                inner.sim.sleep(ns(FAULT_ERROR_LATENCY_NS)).await;
                s.counter("fault.injected{kind=media}").inc();
                completion.complete(IoResult::error(IoStatus::MediaError, inner.sim.now()));
                return;
            }
            // Journal the write before forwarding (submission consumes the
            // payload). The index stays valid: the journal is append-only.
            let jidx = match (&inner.journal, req.op) {
                (Some(j), DiskOp::Write) => {
                    let mut j = j.borrow_mut();
                    j.push(JournalEntry {
                        lba: req.lba,
                        nsect: req.nsect,
                        data: req.data.clone().unwrap_or_default(),
                        finished_at: Cell::new(None),
                    });
                    Some(j.len() - 1)
                }
                _ => None,
            };
            let res = inner.base.submit(req).wait().await;
            // In flight when the spindle died: the completion never
            // reached the host.
            if inner.die_at.get().is_some_and(|t| res.finished_at >= t) {
                s.counter("fault.injected{kind=gone}").inc();
                completion.complete(IoResult::error(IoStatus::DeviceGone, res.finished_at));
                return;
            }
            if let (Some(j), Some(idx)) = (&inner.journal, jidx) {
                if res.status.is_ok() {
                    j.borrow()[idx].finished_at.set(Some(res.finished_at));
                }
            }
            completion.complete(res);
        });
        handle
    }

    fn sector_size(&self) -> u32 {
        self.inner.base.sector_size()
    }

    fn total_sectors(&self) -> u64 {
        self.inner.base.total_sectors()
    }

    fn sector_time_ns(&self) -> u64 {
        self.inner.base.sector_time_ns()
    }

    fn stats(&self) -> DiskStats {
        self.inner.base.stats()
    }

    fn reset_stats(&self) {
        self.inner.base.reset_stats()
    }

    fn queue_len(&self) -> usize {
        self.inner.base.queue_len()
    }

    fn shutdown(&self) {
        self.inner.base.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BlockDeviceExt;
    use crate::disk::{Disk, DiskParams};
    use simkit::SimDuration;

    fn wrap(sim: &Sim, faults: SpindleFaults, journal: bool) -> (FaultDevice, Disk) {
        let disk = Disk::new(sim, DiskParams::small_test());
        let base: SharedDevice = Rc::new(disk.clone());
        let dev = if journal {
            FaultDevice::with_journal(sim, base, faults, 42)
        } else {
            FaultDevice::new(sim, base, faults, 42)
        };
        (dev, disk)
    }

    #[test]
    fn parse_full_grammar() {
        let p =
            FaultPlan::parse("seed=7,media=1:100+8,transient=0:50+4x3,die=2@250ms,cut=1s").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.cut, Some(SimTime::from_nanos(1_000_000_000)));
        assert_eq!(p.max_spindle(), Some(2));
        let s1 = p.for_spindle(1);
        assert_eq!(s1.media, vec![(100, 8)]);
        assert!(s1.transient.is_empty());
        let s0 = p.for_spindle(0);
        assert_eq!(s0.transient, vec![(50, 4, 3)]);
        let s2 = p.for_spindle(2);
        assert_eq!(s2.die_at, Some(SimTime::from_nanos(250_000_000)));
        assert!(p.for_spindle(3).is_empty());
    }

    #[test]
    fn parse_time_suffixes() {
        let p = FaultPlan::parse("cut=250").unwrap(); // bare = ms
        assert_eq!(p.cut, Some(SimTime::from_nanos(250_000_000)));
        let p = FaultPlan::parse("cut=90us").unwrap();
        assert_eq!(p.cut, Some(SimTime::from_nanos(90_000)));
        assert!(p.is_error_free());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "bogus=1",
            "media=1",
            "media=1:100",
            "media=1:100+0",
            "transient=0:50+4",
            "transient=0:50+4x0",
            "die=1",
            "die=1@abcms",
            "cut=1h",
            "seed=1,seed=2",
            "cut=1,cut=2",
            "die=1@5,die=1@9",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn latent_media_error_is_permanent_and_local() {
        let sim = Sim::new();
        let (dev, _) = wrap(
            &sim,
            SpindleFaults {
                media: vec![(100, 8)],
                ..Default::default()
            },
            false,
        );
        sim.run_until(async move {
            // Overlapping reads fail every time, even past EXT retries.
            assert_eq!(dev.try_read(104, 2).await, Err(IoStatus::MediaError));
            assert_eq!(dev.try_read(96, 8).await, Err(IoStatus::MediaError));
            // A failed write persists nothing and reports the error.
            assert_eq!(
                dev.try_write(100, 1, vec![9u8; 512]).await,
                Err(IoStatus::MediaError)
            );
            // Sectors outside the range still work.
            dev.write(0, 2, vec![5u8; 1024]).await;
            assert_eq!(dev.read(0, 2).await, vec![5u8; 1024]);
        });
    }

    #[test]
    fn transient_error_clears_under_retry() {
        let sim = Sim::new();
        let (dev, _) = wrap(
            &sim,
            SpindleFaults {
                transient: vec![(50, 4, 3)],
                ..Default::default()
            },
            false,
        );
        let s = sim.clone();
        sim.run_until(async move {
            // try_read retries up to EXT_RETRIES times, outlasting the
            // 3-failure budget.
            let got = dev.try_read(50, 4).await.unwrap();
            assert_eq!(got.len(), 4 * 512);
            // Healed: later reads succeed on the first attempt.
            let errs = s.stats().counter_value("fault.injected{kind=media}");
            dev.read(50, 4).await;
            assert_eq!(
                s.stats().counter_value("fault.injected{kind=media}"),
                errs,
                "healed range injected another error"
            );
        });
    }

    #[test]
    fn spindle_death_fails_everything_including_in_flight() {
        let sim = Sim::new();
        let die = SimTime::from_nanos(2_000_000); // 2 ms
        let (dev, _) = wrap(
            &sim,
            SpindleFaults {
                die_at: Some(die),
                ..Default::default()
            },
            false,
        );
        let s = sim.clone();
        sim.run_until(async move {
            // Long-running read submitted alive, completing after death.
            let spt = 64u32;
            let in_flight = dev.submit_read(0, spt * 3);
            let res = in_flight.wait().await;
            assert_eq!(res.status, IoStatus::DeviceGone);
            assert!(res.finished_at >= die);
            // Fully post-death submission fails too.
            assert!(s.now() >= die);
            assert_eq!(dev.try_read(0, 1).await, Err(IoStatus::DeviceGone));
        });
    }

    #[test]
    fn runtime_scheduled_death_and_transient_arming() {
        let sim = Sim::new();
        let (dev, _) = wrap(&sim, SpindleFaults::default(), false);
        let s = sim.clone();
        sim.run_until(async move {
            // Healthy until the driver arms a fault mid-run.
            dev.write(0, 1, vec![3u8; 512]).await;
            dev.arm_transient(0, 4, 1);
            assert_eq!(dev.try_read(0, 1).await.map(|d| d.len()), Ok(512));
            // One failure burned; the range healed under EXT retries.
            assert_eq!(s.stats().counter_value("fault.injected{kind=media}"), 1);
            // Death scheduled at "now" kills every later request.
            dev.schedule_death(s.now());
            assert_eq!(dev.try_read(0, 1).await, Err(IoStatus::DeviceGone));
        });
    }

    #[test]
    fn crash_image_keeps_durable_tears_in_flight() {
        let sim = Sim::new();
        let (dev, _) = wrap(&sim, SpindleFaults::default(), true);
        let d = dev.clone();
        let s = sim.clone();
        // First write completes well before the cut; second is submitted
        // just before it and cannot finish in time.
        let cut = sim.run_until(async move {
            d.write(0, 4, vec![1u8; 4 * 512]).await;
            let cut = s.now() + SimDuration::from_micros(100);
            let h = d.submit_write(100, 8, vec![2u8; 8 * 512]);
            h.wait().await;
            cut
        });
        let image = dev.crash_image(cut);
        assert_eq!(image[0].lba, 0);
        assert_eq!(image[0].nsect, 4);
        assert!(!image[0].torn);
        // The in-flight write either vanished or survives as a torn
        // prefix bounded by the original request.
        for w in &image[1..] {
            assert!(w.torn);
            assert!(w.nsect >= 1 && w.nsect <= 8);
            assert_eq!(w.data.len(), w.nsect as usize * 512);
        }
        // Determinism: same journal, same cut, same image.
        let again = dev.crash_image(cut);
        assert_eq!(image.len(), again.len());
        for (a, b) in image.iter().zip(again.iter()) {
            assert_eq!(
                (a.lba, a.nsect, a.torn, &a.data),
                (b.lba, b.nsect, b.torn, &b.data)
            );
        }
    }

    #[test]
    fn fault_free_wrapper_is_transparent() {
        let sim = Sim::new();
        let (dev, disk) = wrap(&sim, SpindleFaults::default(), false);
        sim.run_until(async move {
            let payload: Vec<u8> = (0..4 * 512).map(|i| (i % 241) as u8).collect();
            dev.write(8, 4, payload.clone()).await;
            assert_eq!(dev.read(8, 4).await, payload);
        });
        assert_eq!(disk.stats().writes, 1);
        assert_eq!(disk.stats().reads, 1);
    }
}
