//! The controller's one-track read buffer.
//!
//! "A track buffer is a memory cache the size of one track commonly found on
//! newer disks ... When a read request for a block is sent to the disk, the
//! entire track is read into the buffer. If successive blocks are on the
//! same track, they are serviced immediately from the track buffer."
//!
//! The model: when a media read transfers sectors on track `T`, the
//! controller keeps capturing everything that streams under the head, so
//! each sector of `T` is *deposited* into the buffer at the moment it passes
//! under the head, starting from the transfer start, for at most one full
//! revolution. Moving the arm off the track aborts the fill; sectors already
//! deposited stay valid. The buffer acts as a write-through cache for
//! writes: data goes to the media, and a write to the buffered track
//! invalidates the buffer (conservative model).

use simkit::SimTime;

/// Fill state of the track buffer.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TrackBuf {
    state: Option<Fill>,
}

#[derive(Clone, Copy, Debug)]
struct Fill {
    /// Global track index being captured.
    track: u64,
    /// When the capture began (start of the triggering media transfer).
    fill_start: SimTime,
    /// Angular slot under the head at `fill_start`.
    start_slot: u32,
    /// Sectors per track / sector time for this track.
    spt: u32,
    sector_time_ns: u64,
    /// Set when the arm left the track; deposits after this instant never
    /// happened.
    aborted_at: Option<SimTime>,
}

/// Outcome of probing the buffer for a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BufProbe {
    /// Not buffered; go to the media.
    Miss,
    /// Every requested sector is (or will be) in the buffer; data is fully
    /// available at the given instant (which may be in the future while the
    /// fill is still streaming by).
    Hit { ready_at: SimTime },
}

impl TrackBuf {
    pub(crate) fn new() -> Self {
        TrackBuf { state: None }
    }

    /// Begins capturing `track` from `start_slot` at `fill_start`.
    pub(crate) fn begin_fill(
        &mut self,
        track: u64,
        fill_start: SimTime,
        start_slot: u32,
        spt: u32,
        sector_time_ns: u64,
    ) {
        self.state = Some(Fill {
            track,
            fill_start,
            start_slot,
            spt,
            sector_time_ns,
            aborted_at: None,
        });
    }

    /// Notes that the arm moved off the buffered track at `now`.
    pub(crate) fn arm_left_track(&mut self, now: SimTime) {
        if let Some(f) = &mut self.state {
            // Only the first departure matters; a completed fill (one full
            // revolution) is unaffected by later moves.
            let fill_end = f.fill_start + crate::ns(f.spt as u64 * f.sector_time_ns);
            if f.aborted_at.is_none() && now < fill_end {
                f.aborted_at = Some(now);
            }
        }
    }

    /// Invalidates the buffer entirely (a write touched the buffered track).
    pub(crate) fn invalidate(&mut self) {
        self.state = None;
    }

    /// Global track index currently buffered, if any.
    pub(crate) fn buffered_track(&self) -> Option<u64> {
        self.state.map(|f| f.track)
    }

    /// Instant at which the sector at angular slot `slot` is deposited.
    fn deposit_time(f: &Fill, slot: u32) -> SimTime {
        let delta = (slot as u64 + f.spt as u64 - f.start_slot as u64) % f.spt as u64;
        // `+1`: the sector is usable once it has fully passed the head.
        f.fill_start + crate::ns((delta + 1) * f.sector_time_ns)
    }

    /// Probes the buffer for a run of sectors on `track` whose angular
    /// slots are `slots`.
    pub(crate) fn probe(&self, track: u64, slots: impl Iterator<Item = u32>) -> BufProbe {
        let Some(f) = &self.state else {
            return BufProbe::Miss;
        };
        if f.track != track {
            return BufProbe::Miss;
        }
        let mut ready_at = SimTime::ZERO;
        for slot in slots {
            let dep = Self::deposit_time(f, slot);
            if let Some(aborted) = f.aborted_at {
                if dep > aborted {
                    return BufProbe::Miss;
                }
            }
            if dep > ready_at {
                ready_at = dep;
            }
        }
        BufProbe::Hit { ready_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_buffer_misses() {
        let b = TrackBuf::new();
        assert_eq!(b.probe(0, [0u32].into_iter()), BufProbe::Miss);
    }

    #[test]
    fn hit_after_deposit() {
        let mut b = TrackBuf::new();
        // 10 slots, 1 ms per sector, fill starts at t=0 from slot 2.
        b.begin_fill(7, t(0), 2, 10, 1_000_000);
        // Slot 2 is deposited at 1 ms, slot 5 at 4 ms, slot 1 at 10 ms (wrap).
        match b.probe(7, [2u32].into_iter()) {
            BufProbe::Hit { ready_at } => assert_eq!(ready_at, t(1)),
            other => panic!("expected hit, got {other:?}"),
        }
        match b.probe(7, [5u32, 2].into_iter()) {
            BufProbe::Hit { ready_at } => assert_eq!(ready_at, t(4)),
            other => panic!("expected hit, got {other:?}"),
        }
        match b.probe(7, [1u32].into_iter()) {
            BufProbe::Hit { ready_at } => assert_eq!(ready_at, t(10)),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn other_track_misses() {
        let mut b = TrackBuf::new();
        b.begin_fill(7, t(0), 0, 10, 1_000_000);
        assert_eq!(b.probe(8, [0u32].into_iter()), BufProbe::Miss);
    }

    #[test]
    fn abort_limits_deposits() {
        let mut b = TrackBuf::new();
        b.begin_fill(7, t(0), 0, 10, 1_000_000);
        b.arm_left_track(t(5));
        // Slot 3 deposited at 4 ms (before abort): still valid.
        assert!(matches!(
            b.probe(7, [3u32].into_iter()),
            BufProbe::Hit { .. }
        ));
        // Slot 7 would deposit at 8 ms (after abort): lost.
        assert_eq!(b.probe(7, [7u32].into_iter()), BufProbe::Miss);
    }

    #[test]
    fn abort_after_full_rev_is_harmless() {
        let mut b = TrackBuf::new();
        b.begin_fill(7, t(0), 0, 10, 1_000_000);
        b.arm_left_track(t(11)); // Fill completed at 10 ms.
        assert!(matches!(
            b.probe(7, [9u32].into_iter()),
            BufProbe::Hit { .. }
        ));
    }

    #[test]
    fn invalidate_clears() {
        let mut b = TrackBuf::new();
        b.begin_fill(7, t(0), 0, 10, 1_000_000);
        b.invalidate();
        assert_eq!(b.probe(7, [0u32].into_iter()), BufProbe::Miss);
        assert_eq!(b.buffered_track(), None);
    }
}
