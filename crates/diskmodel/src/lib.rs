//! # diskmodel — a rotating-disk simulator
//!
//! Models the drive the paper measures on — a ~400 MB 3.5" SCSI disk with a
//! track buffer — down to the physics its results depend on:
//!
//! - **Rotation**: the platter's angular position is a pure function of the
//!   virtual clock, so a request that arrives "just too late" genuinely
//!   waits almost a full revolution — the effect the file system's
//!   `rotdelay` gap exists to avoid.
//! - **Seeks and head switches**, with per-track skew so sequential
//!   transfers survive track crossings.
//! - **Track buffer**: reads capture the whole track; writes are
//!   write-through (the reason the paper rejects "just set rotdelay to 0"
//!   without clustering — write performance "suffers horribly").
//! - **`disksort`**: the BSD one-way elevator, plus the paper's proposed
//!   `B_ORDER` barrier flag and the rejected driver-clustering
//!   (request-coalescing) alternative.
//! - **Real bytes**: a sparse sector store backs the platters, so file
//!   systems above round-trip genuine data.
//!
//! The drive is a single-server queueing station: one mechanism services one
//! (possibly coalesced) request at a time while the queue grows behind it.

pub mod device;
pub mod disk;
pub mod fault;
pub mod geometry;
mod queue;
pub mod request;
pub mod store;
mod trackbuf;

pub use device::{BlockDevice, BlockDeviceExt, SharedDevice, EXT_RETRIES};
pub use disk::{Disk, DiskParams, DiskStats, SeekModel};
pub use fault::{FaultDevice, FaultParseError, FaultPlan, ReplayWrite, SpindleFaults};
pub use geometry::{Chs, Geometry, Zone};
pub use request::{handle_pair, DiskOp, DiskRequest, IoCompletion, IoHandle, IoResult, IoStatus};
pub use store::SectorStore;

use simkit::SimDuration;

/// Internal shorthand for nanosecond durations.
pub(crate) fn ns(n: u64) -> SimDuration {
    SimDuration::from_nanos(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{Sim, SimDuration, SimTime};

    fn test_disk(sim: &Sim) -> Disk {
        Disk::new(sim, DiskParams::small_test())
    }

    #[test]
    fn write_read_roundtrip_through_mechanism() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let d = disk.clone();
        sim.run_until(async move {
            let payload: Vec<u8> = (0..2 * 512).map(|i| (i % 250) as u8).collect();
            d.write(100, 2, payload.clone()).await;
            let got = d.read(100, 2).await;
            assert_eq!(got, payload);
        });
        let stats = disk.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.sectors_written, 2);
        assert_eq!(stats.sectors_read, 2);
    }

    #[test]
    fn read_takes_physical_time() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let d = disk.clone();
        sim.run_until(async move {
            d.read(0, 1).await;
        });
        // At minimum: controller overhead (0.5 ms) + transfer of one sector
        // (rev/32 ≈ 0.52 ms). Rotational wait at t=0 for slot 0 is 0.
        let elapsed = sim.now().duration_since(SimTime::ZERO);
        assert!(
            elapsed >= SimDuration::from_micros(1000),
            "one sector read took {elapsed}"
        );
        assert!(
            elapsed < SimDuration::from_millis(25),
            "one sector read took {elapsed}"
        );
    }

    #[test]
    fn sequential_read_of_whole_track_is_one_revolution_ish() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let d = disk.clone();
        let g = disk.geometry().clone();
        sim.run_until(async move {
            d.read(0, g.sectors_per_track).await;
        });
        let rev = SimDuration::from_nanos(disk.geometry().rev_time_ns());
        let elapsed = sim.now().duration_since(SimTime::ZERO);
        // Worst case: initial rotational latency of nearly one revolution
        // plus exactly one revolution of transfer.
        assert!(
            elapsed < rev * 2 + SimDuration::from_millis(2),
            "full-track read took {elapsed}, rev is {rev}"
        );
    }

    #[test]
    fn late_arriving_adjacent_read_without_buffer_blows_a_revolution() {
        // The paper's core physics: read block k; think for a while; read
        // block k+1. Without a track buffer the platter has rotated past it.
        let sim = Sim::new();
        let disk = Disk::new(
            &sim,
            DiskParams {
                track_buffer: false,
                ..DiskParams::small_test()
            },
        );
        let d = disk.clone();
        let s = sim.clone();
        let t2 = sim.run_until(async move {
            d.read(0, 8).await;
            // "CPU time" gap: 1 ms of thinking.
            s.sleep(SimDuration::from_millis(1)).await;
            let before = s.now();
            d.read(8, 8).await;
            s.now().duration_since(before)
        });
        let rev = SimDuration::from_nanos(disk.geometry().rev_time_ns());
        // The second read must wait for the platter to come around again:
        // clearly more than half a revolution.
        assert!(
            t2 > rev.mul_f64(0.5),
            "adjacent read after a think-gap took only {t2} (rev = {rev})"
        );
    }

    #[test]
    fn track_buffer_turns_adjacent_read_into_fast_hit() {
        let sim = Sim::new();
        let disk = test_disk(&sim); // Track buffer on.
        let d = disk.clone();
        let s = sim.clone();
        let t2 = sim.run_until(async move {
            d.read(0, 8).await;
            // Wait a full revolution so the fill certainly completed.
            s.sleep(SimDuration::from_millis(20)).await;
            let before = s.now();
            d.read(8, 8).await;
            s.now().duration_since(before)
        });
        let rev = SimDuration::from_nanos(disk.geometry().rev_time_ns());
        assert!(
            t2 < rev.mul_f64(0.25),
            "buffered adjacent read took {t2} (rev = {rev})"
        );
        assert_eq!(disk.stats().trackbuf_hits, 1);
    }

    #[test]
    fn writes_do_not_hit_the_track_buffer() {
        // Write-through: a write after a read of the same sectors still
        // pays full mechanical cost.
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let d = disk.clone();
        let s = sim.clone();
        let wtime = sim.run_until(async move {
            d.read(0, 8).await;
            s.sleep(SimDuration::from_millis(20)).await;
            let before = s.now();
            d.write(0, 8, vec![7u8; 8 * 512]).await;
            s.now().duration_since(before)
        });
        // Must include rotational wait: more than the bare transfer time.
        let xfer = SimDuration::from_nanos(8 * disk.geometry().sector_time_ns(0));
        assert!(wtime > xfer, "write serviced too fast: {wtime}");
        assert_eq!(disk.stats().trackbuf_hits, 0);
    }

    #[test]
    fn multi_track_read_crosses_with_skew_not_full_rev() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let d = disk.clone();
        let g = disk.geometry().clone();
        let spt = g.sectors_per_track;
        sim.run_until(async move {
            d.read(0, spt * 2).await; // Two full tracks.
        });
        let rev = SimDuration::from_nanos(disk.geometry().rev_time_ns());
        let elapsed = sim.now().duration_since(SimTime::ZERO);
        // Up to one revolution of initial latency, two revolutions of data,
        // plus a skewed head switch — the switch must NOT cost a whole
        // extra revolution.
        assert!(
            elapsed < rev.mul_f64(3.3),
            "two-track read took {elapsed} (rev = {rev})"
        );
    }

    #[test]
    fn queued_requests_are_elevator_ordered() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let g = disk.geometry().clone();
        let spc = (g.sectors_per_track * g.heads) as u64;
        // Submit far, near, middle while the mechanism is busy with a read.
        let d = disk.clone();
        let (f, near_t, mid_t, far_t) = sim.run_until(async move {
            let first = d.submit_read(0, 4);
            let far = d.submit_read(spc * 100, 4);
            let near = d.submit_read(spc * 10, 4);
            let mid = d.submit_read(spc * 50, 4);
            let f = first.wait().await.finished_at;
            let a = far.wait().await.finished_at;
            let b = near.wait().await.finished_at;
            let c = mid.wait().await.finished_at;
            (f, b, c, a)
        });
        assert!(
            f < near_t && near_t < mid_t && mid_t < far_t,
            "elevator should service near, mid, far in ascending order: \
             {f:?} {near_t:?} {mid_t:?} {far_t:?}"
        );
    }

    #[test]
    fn fifo_mode_services_in_submission_order() {
        let sim = Sim::new();
        let disk = Disk::new(
            &sim,
            DiskParams {
                use_disksort: false,
                ..DiskParams::small_test()
            },
        );
        let g = disk.geometry().clone();
        let spc = (g.sectors_per_track * g.heads) as u64;
        let d = disk.clone();
        let (far_t, near_t) = sim.run_until(async move {
            let _first = d.submit_read(0, 4);
            let far = d.submit_read(spc * 100, 4);
            let near = d.submit_read(spc * 10, 4);
            let a = far.wait().await.finished_at;
            let b = near.wait().await.finished_at;
            (a, b)
        });
        assert!(far_t < near_t, "FIFO must not reorder");
    }

    #[test]
    fn b_order_barrier_forces_service_order() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let g = disk.geometry().clone();
        let spc = (g.sectors_per_track * g.heads) as u64;
        let d = disk.clone();
        let (ordered_t, late_t) = sim.run_until(async move {
            let _busy = d.submit_read(spc * 50, 4);
            // An ordered metadata write far away...
            let ordered = d.submit(DiskRequest {
                op: DiskOp::Write,
                lba: spc * 100,
                nsect: 2,
                data: Some(vec![1u8; 1024]),
                ordered: true,
                stream: 0,
                span: simkit::SpanId::NONE,
            });
            // ...then a tempting nearby write submitted after it.
            let late = d.submit_write(spc * 50 + 8, 2, vec![2u8; 1024]);
            let o = ordered.wait().await.finished_at;
            let l = late.wait().await.finished_at;
            (o, l)
        });
        assert!(
            ordered_t < late_t,
            "B_ORDER write must be serviced before later submissions"
        );
    }

    #[test]
    fn driver_clustering_coalesces_contiguous_writes() {
        let sim = Sim::new();
        let disk = Disk::new(
            &sim,
            DiskParams {
                coalesce_limit: Some(112), // 56 KB, the paper's 16-bit-driver cap.
                ..DiskParams::small_test()
            },
        );
        let d = disk.clone();
        let got = sim.run_until(async move {
            // Keep the mechanism busy so the queue builds up.
            let busy = d.submit_read(3000, 4);
            let mut handles = Vec::new();
            for i in 0..6u64 {
                handles.push(d.submit_write(i * 8, 8, vec![i as u8; 8 * 512]));
            }
            busy.wait().await;
            for h in handles {
                h.wait().await;
            }
            // Data integrity across the merge.
            d.read(16, 8).await
        });
        let stats = disk.stats();
        assert!(
            stats.coalesced >= 5,
            "6 contiguous writes should coalesce, got {} merges",
            stats.coalesced
        );
        assert_eq!(stats.sectors_written, 48);
        assert!(got.iter().all(|&b| b == 2));
    }

    #[test]
    fn zero_length_request_panics() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            disk.submit_read(0, 0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn stats_accumulate_phases() {
        let sim = Sim::new();
        let disk = test_disk(&sim);
        let d = disk.clone();
        let g = disk.geometry().clone();
        let spc = (g.sectors_per_track * g.heads) as u64;
        sim.run_until(async move {
            d.read(0, 4).await;
            d.read(spc * 100, 4).await; // Forces a seek.
        });
        let st = disk.stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.seeks, 1);
        assert!(st.seek_time > SimDuration::ZERO);
        assert!(st.transfer_time > SimDuration::ZERO);
        assert!(st.busy >= st.transfer_time);
    }

    #[test]
    fn zoned_drive_outer_tracks_transfer_faster() {
        let g = Geometry::zoned_example();
        // Outer zone: 80 sectors/track; inner: 48. Same rev time, so the
        // outer zone moves ~1.67x the data per revolution.
        let outer = g.sector_time_ns(0);
        let inner = g.sector_time_ns(250);
        assert!(inner > outer);
        let sim = Sim::new();
        let disk = Disk::new(
            &sim,
            DiskParams {
                geometry: g,
                track_buffer: false,
                ..DiskParams::small_test()
            },
        );
        let d = disk.clone();
        let s = sim.clone();
        let (t_outer, t_inner) = sim.run_until(async move {
            let a = s.now();
            d.read(0, 160).await; // Two outer tracks.
            let t_outer = s.now().duration_since(a);
            // An inner-zone LBA aligned to a track start.
            let inner_lba = (100u64 * 4 * 80 + 100 * 4 * 64) + 10 * 48;
            let b = s.now();
            d.read(inner_lba, 96).await; // Two inner tracks.
            (t_outer, s.now().duration_since(b))
        });
        // Outer read moves 160 sectors in ~2 revs; inner read moves 96 in
        // ~2 revs. Bytes/time clearly favors the outer zone.
        let outer_rate = 160.0 / t_outer.as_secs_f64();
        let inner_rate = 96.0 / t_inner.as_secs_f64();
        assert!(
            outer_rate > inner_rate * 1.2,
            "outer {outer_rate:.0} sect/s vs inner {inner_rate:.0} sect/s"
        );
    }
}
