//! Sparse byte storage behind the simulated platters.
//!
//! The disk stores *real data* so the file system above it round-trips
//! metadata and file contents for real (and `fsck` can check genuinely
//! written state). Storage is sparse: untouched regions read back as zeros
//! without occupying host memory.

use std::collections::HashMap;

const CHUNK_SECTORS: u64 = 128; // 64 KB chunks at 512 B sectors.

/// Yields one chunk-aligned run per chunk touched by `[lba, lba + nsect)`:
/// `(chunk_idx, byte offset within the chunk, byte offset within the
/// transfer, run length in bytes)`. Lets `read`/`write` do one hash lookup
/// and one `copy_from_slice` per chunk instead of one per sector.
fn chunk_runs(
    lba: u64,
    nsect: u32,
    sector_size: usize,
) -> impl Iterator<Item = (u64, usize, usize, usize)> {
    let end = lba + nsect as u64;
    let mut sector = lba;
    std::iter::from_fn(move || {
        if sector >= end {
            return None;
        }
        let chunk_idx = sector / CHUNK_SECTORS;
        let chunk_end = (chunk_idx + 1) * CHUNK_SECTORS;
        let stop = end.min(chunk_end);
        let run = (stop - sector) as usize * sector_size;
        let within = (sector % CHUNK_SECTORS) as usize * sector_size;
        let xfer = (sector - lba) as usize * sector_size;
        sector = stop;
        Some((chunk_idx, within, xfer, run))
    })
}

/// Word-at-a-time zero check: benchmark writes are predominantly zero
/// payloads over absent chunks, so this runs over nearly every written
/// byte and a per-byte loop would dominate the submit path.
fn is_all_zero(data: &[u8]) -> bool {
    let (head, words, tail) = unsafe { data.align_to::<u64>() };
    head.iter().all(|&b| b == 0) && words.iter().all(|&w| w == 0) && tail.iter().all(|&b| b == 0)
}

/// Sparse sector-addressed storage.
pub struct SectorStore {
    sector_size: usize,
    total_sectors: u64,
    chunks: HashMap<u64, Vec<u8>>,
}

impl SectorStore {
    /// Creates a zero-filled store of `total_sectors` sectors.
    pub fn new(sector_size: u32, total_sectors: u64) -> Self {
        SectorStore {
            sector_size: sector_size as usize,
            total_sectors,
            chunks: HashMap::new(),
        }
    }

    /// Bytes per sector.
    pub fn sector_size(&self) -> usize {
        self.sector_size
    }

    /// Total capacity in sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Number of materialized (written-to) chunks, for memory accounting.
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Clips `nsect` so `[lba, lba + nsect)` stays within capacity. Out of
    /// range is an upstream bug (devices validate at submit): the debug
    /// build trips the assertion, the release build clamps — unreachable
    /// sectors read as zeros and writes beyond the end are dropped —
    /// instead of corrupting memory or dying.
    fn clip_range(&self, lba: u64, nsect: u32) -> u32 {
        debug_assert!(
            lba + nsect as u64 <= self.total_sectors,
            "sector range {lba}+{nsect} beyond capacity {}",
            self.total_sectors
        );
        self.total_sectors.saturating_sub(lba).min(nsect as u64) as u32
    }

    /// Reads `nsect` sectors starting at `lba`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the range exceeds the device capacity;
    /// release builds return zeros for the out-of-range tail.
    pub fn read(&self, lba: u64, nsect: u32) -> Vec<u8> {
        let clipped = self.clip_range(lba, nsect);
        let mut out = vec![0u8; nsect as usize * self.sector_size];
        for (chunk_idx, within, xfer, run) in chunk_runs(lba, clipped, self.sector_size) {
            // Absent chunks stay zero: `out` is pre-zeroed.
            if let Some(chunk) = self.chunks.get(&chunk_idx) {
                out[xfer..xfer + run].copy_from_slice(&chunk[within..within + run]);
            }
        }
        out
    }

    /// Writes `data` (must be exactly `nsect` sectors) starting at `lba`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the range exceeds capacity or `data` has the
    /// wrong length; release builds clip to the sectors actually covered.
    pub fn write(&mut self, lba: u64, nsect: u32, data: &[u8]) {
        let mut clipped = self.clip_range(lba, nsect);
        debug_assert_eq!(
            data.len(),
            nsect as usize * self.sector_size,
            "write data length mismatch"
        );
        // A short payload covers fewer sectors than claimed: write what is
        // actually there rather than reading past the slice.
        clipped = clipped.min((data.len() / self.sector_size) as u32);
        let sector_size = self.sector_size;
        for (chunk_idx, within, xfer, run) in chunk_runs(lba, clipped, sector_size) {
            let src = &data[xfer..xfer + run];
            // Writing zeros over an absent chunk is a no-op: absent chunks
            // already read back as zeros, and not materializing them keeps
            // host memory proportional to *distinct* data written, not to
            // partition size (benchmark workloads write zero payloads).
            if let Some(chunk) = self.chunks.get_mut(&chunk_idx) {
                chunk[within..within + run].copy_from_slice(src);
            } else if !is_all_zero(src) {
                let chunk = self
                    .chunks
                    .entry(chunk_idx)
                    .or_insert_with(|| vec![0u8; CHUNK_SECTORS as usize * sector_size]);
                chunk[within..within + run].copy_from_slice(src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = SectorStore::new(512, 100);
        let data = s.read(10, 4);
        assert_eq!(data.len(), 4 * 512);
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(s.resident_chunks(), 0, "reads do not materialize chunks");
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = SectorStore::new(512, 1000);
        let data: Vec<u8> = (0..3 * 512).map(|i| (i % 251) as u8).collect();
        s.write(42, 3, &data);
        assert_eq!(s.read(42, 3), data);
        // Partial overlap.
        assert_eq!(s.read(43, 1), data[512..1024].to_vec());
    }

    #[test]
    fn write_crossing_chunk_boundary() {
        let mut s = SectorStore::new(512, 1000);
        let data: Vec<u8> = (0..4 * 512).map(|i| (i % 17) as u8).collect();
        s.write(126, 4, &data); // Chunk size is 128 sectors.
        assert_eq!(s.read(126, 4), data);
        assert_eq!(s.resident_chunks(), 2);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = SectorStore::new(512, 100);
        s.write(5, 1, &[1u8; 512]);
        s.write(5, 1, &[2u8; 512]);
        assert_eq!(s.read(5, 1), vec![2u8; 512]);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn read_past_end_panics() {
        let s = SectorStore::new(512, 10);
        s.read(8, 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn short_write_panics() {
        let mut s = SectorStore::new(512, 10);
        s.write(0, 2, &[0u8; 512]);
    }
}
