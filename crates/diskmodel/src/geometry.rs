//! Disk geometry: cylinders, heads, sectors, zones, and skew.
//!
//! Logical block addresses (LBAs, in sectors) map onto a physical
//! (cylinder, head, sector) triple. Variable-geometry ("zoned") drives put
//! more sectors on outer tracks — the paper cites them as a reason users
//! cannot pick a "right" extent size, so the model supports them.

/// One zone of a variable-geometry drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone (inclusive).
    pub start_cyl: u32,
    /// Sectors per track within this zone.
    pub sectors_per_track: u32,
}

/// Physical layout of a drive.
#[derive(Clone, Debug)]
pub struct Geometry {
    /// Bytes per sector (512 on the drives the paper measures).
    pub sector_size: u32,
    /// Sectors per track for a uniform drive; ignored when `zones` is set.
    pub sectors_per_track: u32,
    /// Tracks per cylinder (number of heads).
    pub heads: u32,
    /// Cylinder count.
    pub cylinders: u32,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Sectors of angular offset added per successive track within a
    /// cylinder, so that a head switch during a sequential transfer lands
    /// just *before* the next logical sector instead of just after it.
    pub track_skew: u32,
    /// Additional angular offset applied when crossing to the next
    /// cylinder, covering the track-to-track seek (which is longer than a
    /// head switch).
    pub cyl_skew: u32,
    /// Zones for a variable-geometry drive, ordered by `start_cyl`
    /// (which must start at 0). `None` means uniform geometry.
    pub zones: Option<Vec<Zone>>,
}

/// A physical sector address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder index.
    pub cyl: u32,
    /// Head (track within cylinder) index.
    pub head: u32,
    /// Sector index within the track.
    pub sector: u32,
}

impl Geometry {
    /// A model of the paper's drive: a 1990-vintage ~400 MB 3.5" SCSI disk.
    ///
    /// 3600 RPM (16.67 ms/rev) and 64 × 512-byte sectors per track give a
    /// 2 MB/s media rate, so one 8 KB file system block is 16 sectors
    /// ≈ 4.2 ms — matching the paper's "rotational delay of one block time
    /// ... 4 milliseconds" and "almost a full rotation (about 16
    /// milliseconds)".
    pub fn sun_scsi_400mb() -> Geometry {
        Geometry {
            sector_size: 512,
            sectors_per_track: 64,
            heads: 9,
            cylinders: 1400, // 1400 × 9 × 64 × 512 B ≈ 412 MB
            rpm: 3600,
            track_skew: 4, // ≈1 ms: covers the head-switch time.
            cyl_skew: 16,  // ≈4.2 ms: covers a track-to-track seek.
            zones: None,
        }
    }

    /// A small uniform drive for fast unit tests (≈8 MB).
    pub fn small_test() -> Geometry {
        Geometry {
            sector_size: 512,
            sectors_per_track: 32,
            heads: 4,
            cylinders: 128,
            rpm: 3600,
            track_skew: 4,
            cyl_skew: 10,
            zones: None,
        }
    }

    /// A three-zone variable-geometry drive used by the extent-size
    /// discussion tests.
    pub fn zoned_example() -> Geometry {
        Geometry {
            sector_size: 512,
            sectors_per_track: 0, // Unused when zoned.
            heads: 4,
            cylinders: 300,
            rpm: 3600,
            track_skew: 4,
            cyl_skew: 10,
            zones: Some(vec![
                Zone {
                    start_cyl: 0,
                    sectors_per_track: 80,
                },
                Zone {
                    start_cyl: 100,
                    sectors_per_track: 64,
                },
                Zone {
                    start_cyl: 200,
                    sectors_per_track: 48,
                },
            ]),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a malformed geometry (zero dimensions, bad zone table).
    pub fn validate(&self) {
        assert!(self.sector_size > 0, "sector_size must be positive");
        assert!(self.heads > 0, "heads must be positive");
        assert!(self.cylinders > 0, "cylinders must be positive");
        assert!(self.rpm > 0, "rpm must be positive");
        match &self.zones {
            None => assert!(
                self.sectors_per_track > 0,
                "sectors_per_track must be positive for uniform geometry"
            ),
            Some(zones) => {
                assert!(!zones.is_empty(), "zone table must not be empty");
                assert_eq!(zones[0].start_cyl, 0, "first zone must start at cyl 0");
                for w in zones.windows(2) {
                    assert!(
                        w[0].start_cyl < w[1].start_cyl,
                        "zones must be ordered by start_cyl"
                    );
                }
                for z in zones {
                    assert!(z.sectors_per_track > 0, "zone SPT must be positive");
                    assert!(z.start_cyl < self.cylinders, "zone beyond last cylinder");
                }
            }
        }
    }

    /// One full revolution, in nanoseconds.
    pub fn rev_time_ns(&self) -> u64 {
        60_000_000_000 / self.rpm as u64
    }

    /// Sectors per track on cylinder `cyl`.
    pub fn spt(&self, cyl: u32) -> u32 {
        match &self.zones {
            None => self.sectors_per_track,
            Some(zones) => {
                let mut spt = zones[0].sectors_per_track;
                for z in zones {
                    if cyl >= z.start_cyl {
                        spt = z.sectors_per_track;
                    } else {
                        break;
                    }
                }
                spt
            }
        }
    }

    /// Time for one sector to pass under the head on cylinder `cyl`, ns.
    pub fn sector_time_ns(&self, cyl: u32) -> u64 {
        self.rev_time_ns() / self.spt(cyl) as u64
    }

    /// Total capacity in sectors.
    pub fn total_sectors(&self) -> u64 {
        match &self.zones {
            None => self.sectors_per_track as u64 * self.heads as u64 * self.cylinders as u64,
            Some(zones) => {
                let mut total = 0u64;
                for (i, z) in zones.iter().enumerate() {
                    let end = zones
                        .get(i + 1)
                        .map(|n| n.start_cyl)
                        .unwrap_or(self.cylinders);
                    total +=
                        (end - z.start_cyl) as u64 * self.heads as u64 * z.sectors_per_track as u64;
                }
                total
            }
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * self.sector_size as u64
    }

    /// Maps an LBA (sector index) to its physical address.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is beyond the last sector.
    pub fn lba_to_chs(&self, lba: u64) -> Chs {
        assert!(
            lba < self.total_sectors(),
            "lba {lba} beyond capacity {}",
            self.total_sectors()
        );
        match &self.zones {
            None => {
                let spc = self.sectors_per_track as u64 * self.heads as u64;
                let cyl = (lba / spc) as u32;
                let within = lba % spc;
                Chs {
                    cyl,
                    head: (within / self.sectors_per_track as u64) as u32,
                    sector: (within % self.sectors_per_track as u64) as u32,
                }
            }
            Some(zones) => {
                let mut base = 0u64;
                for (i, z) in zones.iter().enumerate() {
                    let end = zones
                        .get(i + 1)
                        .map(|n| n.start_cyl)
                        .unwrap_or(self.cylinders);
                    let spc = z.sectors_per_track as u64 * self.heads as u64;
                    let zone_sectors = (end - z.start_cyl) as u64 * spc;
                    if lba < base + zone_sectors {
                        let in_zone = lba - base;
                        let cyl = z.start_cyl + (in_zone / spc) as u32;
                        let within = in_zone % spc;
                        return Chs {
                            cyl,
                            head: (within / z.sectors_per_track as u64) as u32,
                            sector: (within % z.sectors_per_track as u64) as u32,
                        };
                    }
                    base += zone_sectors;
                }
                unreachable!("lba bounds checked above")
            }
        }
    }

    /// Maps a physical address back to its LBA.
    pub fn chs_to_lba(&self, chs: Chs) -> u64 {
        match &self.zones {
            None => {
                let spc = self.sectors_per_track as u64 * self.heads as u64;
                chs.cyl as u64 * spc
                    + chs.head as u64 * self.sectors_per_track as u64
                    + chs.sector as u64
            }
            Some(zones) => {
                let mut base = 0u64;
                for (i, z) in zones.iter().enumerate() {
                    let end = zones
                        .get(i + 1)
                        .map(|n| n.start_cyl)
                        .unwrap_or(self.cylinders);
                    let spc = z.sectors_per_track as u64 * self.heads as u64;
                    if chs.cyl < end {
                        return base
                            + (chs.cyl - z.start_cyl) as u64 * spc
                            + chs.head as u64 * z.sectors_per_track as u64
                            + chs.sector as u64;
                    }
                    base += (end - z.start_cyl) as u64 * spc;
                }
                unreachable!("cylinder beyond zone table")
            }
        }
    }

    /// Global track index (used to accumulate skew).
    pub fn track_index(&self, chs: Chs) -> u64 {
        chs.cyl as u64 * self.heads as u64 + chs.head as u64
    }

    /// Angular slot (0..spt) at which logical `sector` of this track sits,
    /// after applying accumulated track and cylinder skew.
    pub fn angular_slot(&self, chs: Chs) -> u32 {
        let spt = self.spt(chs.cyl);
        // Each head switch within a cylinder adds track_skew; each
        // cylinder crossing adds cyl_skew (covering the seek).
        let switches = chs.cyl as u64 * (self.heads as u64 - 1) + chs.head as u64;
        let skew = (switches * self.track_skew as u64 + chs.cyl as u64 * self.cyl_skew as u64)
            % spt as u64;
        ((chs.sector as u64 + skew) % spt as u64) as u32
    }

    /// Number of sectors remaining on the track starting at `chs`
    /// (including `chs.sector` itself).
    pub fn sectors_to_track_end(&self, chs: Chs) -> u32 {
        self.spt(chs.cyl) - chs.sector
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_roundtrip() {
        let g = Geometry::small_test();
        g.validate();
        for lba in [0u64, 1, 31, 32, 127, 128, 4095, g.total_sectors() - 1] {
            let chs = g.lba_to_chs(lba);
            assert_eq!(g.chs_to_lba(chs), lba, "roundtrip for {lba}");
        }
    }

    #[test]
    fn uniform_mapping_values() {
        let g = Geometry::small_test(); // 32 spt, 4 heads
        assert_eq!(
            g.lba_to_chs(0),
            Chs {
                cyl: 0,
                head: 0,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(32),
            Chs {
                cyl: 0,
                head: 1,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(32 * 4),
            Chs {
                cyl: 1,
                head: 0,
                sector: 0
            }
        );
        assert_eq!(
            g.lba_to_chs(32 * 4 + 33),
            Chs {
                cyl: 1,
                head: 1,
                sector: 1
            }
        );
    }

    #[test]
    fn zoned_roundtrip_and_spt() {
        let g = Geometry::zoned_example();
        g.validate();
        assert_eq!(g.spt(0), 80);
        assert_eq!(g.spt(99), 80);
        assert_eq!(g.spt(100), 64);
        assert_eq!(g.spt(250), 48);
        for lba in [
            0u64,
            79,
            80,
            100 * 4 * 80 - 1,
            100 * 4 * 80,
            100 * 4 * 80 + 100 * 4 * 64,
            g.total_sectors() - 1,
        ] {
            let chs = g.lba_to_chs(lba);
            assert_eq!(g.chs_to_lba(chs), lba, "roundtrip for {lba}");
        }
    }

    #[test]
    fn zoned_capacity() {
        let g = Geometry::zoned_example();
        let expect = 100u64 * 4 * 80 + 100 * 4 * 64 + 100 * 4 * 48;
        assert_eq!(g.total_sectors(), expect);
        assert_eq!(g.capacity_bytes(), expect * 512);
    }

    #[test]
    fn paper_drive_parameters() {
        let g = Geometry::sun_scsi_400mb();
        g.validate();
        // ≈16.7 ms revolution.
        assert_eq!(g.rev_time_ns(), 16_666_666);
        // 8 KB block = 16 sectors ≈ 4.2 ms — the paper's "4 ms" block time.
        let block_ns = 16 * g.sector_time_ns(0);
        assert!((4_000_000..4_400_000).contains(&block_ns), "{block_ns}");
        // Capacity ≈ 400 MB.
        let mb = g.capacity_bytes() / (1 << 20);
        assert!((380..=420).contains(&mb), "{mb} MB");
    }

    #[test]
    fn skew_accumulates_per_track() {
        let g = Geometry::small_test(); // skew 4, spt 32
        let t0s0 = g.angular_slot(Chs {
            cyl: 0,
            head: 0,
            sector: 0,
        });
        let t1s0 = g.angular_slot(Chs {
            cyl: 0,
            head: 1,
            sector: 0,
        });
        let t2s0 = g.angular_slot(Chs {
            cyl: 0,
            head: 2,
            sector: 0,
        });
        assert_eq!(t0s0, 0);
        assert_eq!(t1s0, 4);
        assert_eq!(t2s0, 8);
        // Sector offsets within a track are preserved.
        assert_eq!(
            g.angular_slot(Chs {
                cyl: 0,
                head: 1,
                sector: 10
            }),
            14
        );
    }

    #[test]
    fn sectors_to_track_end() {
        let g = Geometry::small_test();
        assert_eq!(
            g.sectors_to_track_end(Chs {
                cyl: 0,
                head: 0,
                sector: 0
            }),
            32
        );
        assert_eq!(
            g.sectors_to_track_end(Chs {
                cyl: 0,
                head: 0,
                sector: 31
            }),
            1
        );
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn lba_out_of_range_panics() {
        let g = Geometry::small_test();
        g.lba_to_chs(g.total_sectors());
    }
}
