//! The drive mechanism: a single server that seeks, waits for rotation, and
//! transfers, advancing the virtual clock through each phase.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simkit::stats::{Counter, Histogram, NameId, StatsRegistry, TimeWeighted};
use simkit::{Notify, Sim, SimDuration, SpanId};

use crate::device::BlockDevice;
use crate::geometry::Geometry;
use crate::queue::{DiskQueue, Queued};
use crate::request::{new_handle, DiskOp, DiskRequest, IoHandle, IoResult, IoStatus};
use crate::store::SectorStore;
use crate::trackbuf::{BufProbe, TrackBuf};

/// Seek time model: `min + factor * sqrt(distance_in_cylinders)` ms.
#[derive(Clone, Copy, Debug)]
pub struct SeekModel {
    /// Settle + single-track seek, milliseconds.
    pub min_ms: f64,
    /// Multiplies the square root of the cylinder distance, milliseconds.
    pub factor_ms: f64,
}

impl SeekModel {
    /// A 1990-vintage drive: ~3 ms track-to-track, ~25 ms full stroke.
    pub fn vintage_1990() -> SeekModel {
        SeekModel {
            min_ms: 2.5,
            factor_ms: 0.6,
        }
    }

    /// Seek duration for a move of `distance` cylinders (0 → zero).
    pub fn time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis_f64(self.min_ms + self.factor_ms * (distance as f64).sqrt())
        }
    }
}

/// Full configuration of a simulated drive.
#[derive(Clone, Debug)]
pub struct DiskParams {
    /// Physical layout.
    pub geometry: Geometry,
    /// Arm movement model.
    pub seek: SeekModel,
    /// Time to switch between heads on the same cylinder.
    pub head_switch: SimDuration,
    /// Fixed controller/command overhead per request batch.
    pub controller_overhead: SimDuration,
    /// Whether the controller has a one-track read buffer.
    pub track_buffer: bool,
    /// Host transfer rate for track-buffer hits, bytes per second.
    pub bus_rate: f64,
    /// When set, the driver coalesces physically contiguous queued requests
    /// into one transfer of at most this many sectors ("driver clustering").
    pub coalesce_limit: Option<u32>,
    /// When `false`, requests are serviced strictly in submission order
    /// (no `disksort`) — some drivers "depend on intelligent controllers"
    /// instead; modeled as FIFO here.
    pub use_disksort: bool,
}

impl DiskParams {
    /// The paper's measurement drive: 400 MB SCSI with a track buffer.
    pub fn sun0424() -> DiskParams {
        DiskParams {
            geometry: Geometry::sun_scsi_400mb(),
            seek: SeekModel::vintage_1990(),
            head_switch: SimDuration::from_micros(700),
            controller_overhead: SimDuration::from_micros(800),
            track_buffer: true,
            bus_rate: 5.0e6, // Synchronous SCSI-1 host transfer.
            coalesce_limit: None,
            use_disksort: true,
        }
    }

    /// Same drive without a track buffer ("not all drives have track
    /// buffers").
    pub fn sun0424_no_track_buffer() -> DiskParams {
        DiskParams {
            track_buffer: false,
            ..Self::sun0424()
        }
    }

    /// A small, fast-to-simulate drive for unit tests.
    pub fn small_test() -> DiskParams {
        DiskParams {
            geometry: Geometry::small_test(),
            seek: SeekModel::vintage_1990(),
            head_switch: SimDuration::from_millis(1),
            controller_overhead: SimDuration::from_micros(500),
            track_buffer: true,
            bus_rate: 4.0e6,
            coalesce_limit: None,
            use_disksort: true,
        }
    }
}

/// Aggregate drive statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Read requests completed (after any coalescing).
    pub reads: u64,
    /// Write requests completed (after any coalescing).
    pub writes: u64,
    /// Sectors transferred from media or buffer to host.
    pub sectors_read: u64,
    /// Sectors transferred to media.
    pub sectors_written: u64,
    /// Total arm seek time.
    pub seek_time: SimDuration,
    /// Number of non-zero seeks.
    pub seeks: u64,
    /// Rotational latency waited (excludes transfer).
    pub rot_wait: SimDuration,
    /// Media/bus transfer time.
    pub transfer_time: SimDuration,
    /// Reads fully served from the track buffer.
    pub trackbuf_hits: u64,
    /// Reads that had to touch the media.
    pub trackbuf_misses: u64,
    /// Requests merged away by driver clustering.
    pub coalesced: u64,
    /// Total time requests spent queued before service began.
    pub queue_wait: SimDuration,
    /// Time the mechanism was busy (any service phase).
    pub busy: SimDuration,
}

/// Registry handles mirroring [`DiskStats`] into `sim.stats()` under the
/// `disk.*` namespace (schema: DESIGN.md "Observability").
struct DiskMetrics {
    reads: Counter,
    writes: Counter,
    sectors_read: Counter,
    sectors_written: Counter,
    seeks: Counter,
    seek_distance: Histogram,
    seek_time_ns: Counter,
    rot_wait_ns: Counter,
    transfer_time_ns: Counter,
    trackbuf_hits: Counter,
    trackbuf_misses: Counter,
    coalesced: Counter,
    queue_wait_ns: Counter,
    busy_ns: Counter,
    queue_depth: TimeWeighted,
    /// Registry handle for lazily materialized per-stream counters.
    registry: StatsRegistry,
    /// Interned base names for the per-stream counters below: the
    /// per-sub-request attribution path resolves `base{stream=N}` through
    /// the registry's trivial-hash interned table instead of formatting
    /// and re-hashing a `String` key per I/O. Sectors are attributed per
    /// sub-request, so the per-stream counters sum to the global
    /// `disk.sectors_*` exactly. Each stream present in a serviced batch
    /// is charged the batch's full service interval — the same interval
    /// its `disk.service` span covers — so per-stream span sums and the
    /// `disk.busy_ns{stream=N}` counters agree exactly. (A coalesced
    /// batch that mixes streams charges the interval to each stream, so
    /// the per-stream values can exceed the global `disk.busy_ns`.)
    sectors_read_id: NameId,
    sectors_written_id: NameId,
    busy_ns_id: NameId,
    /// Set when this drive is one spindle of a volume: mirrors busy time
    /// and sector counts into `disk.*{spindle=K}`, so an array's traffic
    /// can be attributed per leg. The `spindle=K` family sums exactly to
    /// the global `disk.busy_ns`/`disk.sectors_*` when every drive in the
    /// sim is labelled (each batch is charged to exactly one spindle).
    spindle: Option<SpindleMetrics>,
}

/// Per-spindle mirrors of the hot counters (see [`DiskMetrics::spindle`]).
struct SpindleMetrics {
    busy_ns: Counter,
    sectors_read: Counter,
    sectors_written: Counter,
    /// Per-leg `disk.queue_depth{spindle=K}`: the shared global gauge
    /// mixes every spindle of an array together, which hides a single
    /// hot leg; the telemetry sampler reads this one per drive.
    queue_depth: TimeWeighted,
}

impl DiskMetrics {
    /// Cylinder-distance buckets: track-to-track up to a full stroke.
    const SEEK_DIST_EDGES: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 512, 2048];

    fn new(sim: &Sim, spindle: Option<u32>) -> DiskMetrics {
        let s = sim.stats();
        let spindle = spindle.map(|k| SpindleMetrics {
            busy_ns: s.labelled_counter("disk.busy_ns", "spindle", k),
            sectors_read: s.labelled_counter("disk.sectors_read", "spindle", k),
            sectors_written: s.labelled_counter("disk.sectors_written", "spindle", k),
            queue_depth: s.time_weighted(&StatsRegistry::labelled_name(
                "disk.queue_depth",
                "spindle",
                k,
            )),
        });
        DiskMetrics {
            spindle,
            reads: s.counter("disk.reads"),
            writes: s.counter("disk.writes"),
            sectors_read: s.counter("disk.sectors_read"),
            sectors_written: s.counter("disk.sectors_written"),
            seeks: s.counter("disk.seeks"),
            seek_distance: s.histogram("disk.seek_distance_cyls", &Self::SEEK_DIST_EDGES),
            seek_time_ns: s.counter("disk.seek_time_ns"),
            rot_wait_ns: s.counter("disk.rot_wait_ns"),
            transfer_time_ns: s.counter("disk.transfer_time_ns"),
            trackbuf_hits: s.counter("disk.trackbuf_hits"),
            trackbuf_misses: s.counter("disk.trackbuf_misses"),
            coalesced: s.counter("disk.requests_coalesced"),
            queue_wait_ns: s.counter("disk.queue_wait_ns"),
            busy_ns: s.counter("disk.busy_ns"),
            queue_depth: s.time_weighted("disk.queue_depth"),
            sectors_read_id: s.intern("disk.sectors_read"),
            sectors_written_id: s.intern("disk.sectors_written"),
            busy_ns_id: s.intern("disk.busy_ns"),
            registry: s.clone(),
        }
    }

    fn stream_sectors(&self, stream: u32, op: DiskOp) -> Counter {
        let base = match op {
            DiskOp::Read => self.sectors_read_id,
            DiskOp::Write => self.sectors_written_id,
        };
        self.registry.stream_counter_id(base, stream)
    }

    fn stream_busy(&self, stream: u32) -> Counter {
        self.registry.stream_counter_id(self.busy_ns_id, stream)
    }
}

struct DiskInner {
    sim: Sim,
    params: DiskParams,
    store: RefCell<SectorStore>,
    queue: RefCell<DiskQueue>,
    notify: Notify,
    cur_cyl: Cell<u32>,
    cur_head: Cell<u32>,
    trackbuf: RefCell<TrackBuf>,
    stats: RefCell<DiskStats>,
    metrics: DiskMetrics,
    shutdown: Cell<bool>,
}

/// A simulated drive. Cloning shares the device.
#[derive(Clone)]
pub struct Disk {
    inner: Rc<DiskInner>,
}

impl Disk {
    /// Creates the drive and spawns its service task on `sim`.
    pub fn new(sim: &Sim, params: DiskParams) -> Disk {
        Self::build(sim, params, None)
    }

    /// [`Disk::new`], additionally labelling the drive as spindle `k` of a
    /// volume: busy time and sector counts are mirrored into
    /// `disk.busy_ns{spindle=K}` / `disk.sectors_*{spindle=K}`.
    pub fn new_spindle(sim: &Sim, params: DiskParams, k: u32) -> Disk {
        Self::build(sim, params, Some(k))
    }

    fn build(sim: &Sim, params: DiskParams, spindle: Option<u32>) -> Disk {
        params.geometry.validate();
        let store = SectorStore::new(params.geometry.sector_size, params.geometry.total_sectors());
        let disk = Disk {
            inner: Rc::new(DiskInner {
                sim: sim.clone(),
                params,
                store: RefCell::new(store),
                queue: RefCell::new(DiskQueue::new()),
                notify: Notify::new(),
                cur_cyl: Cell::new(0),
                cur_head: Cell::new(0),
                trackbuf: RefCell::new(TrackBuf::new()),
                stats: RefCell::new(DiskStats::default()),
                metrics: DiskMetrics::new(sim, spindle),
                shutdown: Cell::new(false),
            }),
        };
        let d = disk.clone();
        sim.spawn(async move { d.service_loop().await });
        disk
    }

    /// The drive's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.inner.params.geometry
    }

    /// The drive's configuration.
    pub fn params(&self) -> &DiskParams {
        &self.inner.params
    }

    async fn service_loop(&self) {
        loop {
            let batch: Option<Vec<Queued>> = {
                let head_lba = self.current_head_lba();
                let mut q = self.inner.queue.borrow_mut();
                if !self.inner.params.use_disksort {
                    // FIFO: emulate by always taking the lowest sequence.
                    q.take_fifo().map(|item| vec![item])
                } else if let Some(limit) = self.inner.params.coalesce_limit {
                    q.take_next_coalesced(head_lba, limit)
                } else {
                    q.take_next(head_lba).map(|item| vec![item])
                }
            };
            match batch {
                Some(batch) => {
                    self.inner.metrics.queue_depth.add(-(batch.len() as f64));
                    if let Some(sp) = &self.inner.metrics.spindle {
                        sp.queue_depth.add(-(batch.len() as f64));
                    }
                    self.service_batch(batch).await
                }
                None => {
                    if self.inner.shutdown.get() {
                        return;
                    }
                    self.inner.notify.wait().await;
                }
            }
        }
    }

    /// LBA corresponding to the arm's current track (sector 0), used as the
    /// elevator position.
    fn current_head_lba(&self) -> u64 {
        let g = &self.inner.params.geometry;
        g.chs_to_lba(crate::geometry::Chs {
            cyl: self.inner.cur_cyl.get(),
            head: self.inner.cur_head.get(),
            sector: 0,
        })
    }

    async fn service_batch(&self, batch: Vec<Queued>) {
        let started = self.inner.sim.now();
        let tracer = self.inner.sim.tracer().clone();
        {
            let mut stats = self.inner.stats.borrow_mut();
            let merged = (batch.len() as u64).saturating_sub(1);
            stats.coalesced += merged;
            self.inner.metrics.coalesced.add(merged);
            for q in &batch {
                let waited = started.duration_since(q.submitted_at);
                stats.queue_wait += waited;
                self.inner.metrics.queue_wait_ns.add(waited.as_nanos());
                // The wait is only known once service begins, so the queue
                // span is recorded retroactively.
                tracer.record(
                    "disk.queue",
                    q.req.stream,
                    q.req.span,
                    q.submitted_at,
                    started,
                );
            }
        }
        let op = batch[0].req.op;
        let span_lba = batch[0].req.lba;
        let span_sectors: u32 = batch.iter().map(|q| q.req.nsect).sum();
        debug_assert!(
            batch
                .windows(2)
                .all(|w| w[0].req.lba + w[0].req.nsect as u64 == w[1].req.lba),
            "batch must be contiguous"
        );
        // One live service span for the whole batch, parented under the
        // first sub-request's originator; additional streams in a coalesced
        // batch get their own retroactive copy below so every stream's
        // service time is visible in its own trace row.
        let svc = tracer.start("disk.service", batch[0].req.stream, batch[0].req.span);
        tracer.arg(svc, "lba", span_lba);
        tracer.arg(svc, "nsect", span_sectors as u64);

        self.inner
            .sim
            .sleep(self.inner.params.controller_overhead)
            .await;

        let span_data = match op {
            DiskOp::Read => {
                let data = self
                    .media_read(span_lba, span_sectors, batch[0].req.stream, svc)
                    .await;
                Some(data)
            }
            DiskOp::Write => {
                let ssz = self.inner.params.geometry.sector_size as usize;
                let mut payload = Vec::with_capacity(span_sectors as usize * ssz);
                for q in &batch {
                    match q.req.data.as_deref() {
                        Some(d) => payload.extend_from_slice(d),
                        None => {
                            // Upstream bug (submit validates this); the
                            // debug build trips, the release build writes
                            // zeros of the right length instead of dying.
                            debug_assert!(false, "write request without payload");
                            payload.resize(payload.len() + q.req.nsect as usize * ssz, 0);
                        }
                    }
                }
                self.media_write(span_lba, span_sectors, &payload).await;
                None
            }
        };

        let finished_at = self.inner.sim.now();
        tracer.end(svc);
        {
            let mut stats = self.inner.stats.borrow_mut();
            let m = &self.inner.metrics;
            stats.busy += finished_at.duration_since(started);
            m.busy_ns
                .add(finished_at.duration_since(started).as_nanos());
            if let Some(sp) = &m.spindle {
                sp.busy_ns
                    .add(finished_at.duration_since(started).as_nanos());
            }
            // Per-stream busy attribution (and service spans for streams a
            // coalesced batch merged in behind batch[0]'s): each distinct
            // stream is charged the full service interval once.
            let mut seen: Vec<u32> = Vec::new();
            for q in &batch {
                if seen.contains(&q.req.stream) {
                    continue;
                }
                seen.push(q.req.stream);
                m.stream_busy(q.req.stream)
                    .add(finished_at.duration_since(started).as_nanos());
                if q.req.stream != batch[0].req.stream {
                    tracer.record(
                        "disk.service",
                        q.req.stream,
                        q.req.span,
                        started,
                        finished_at,
                    );
                }
            }
            match op {
                DiskOp::Read => {
                    stats.reads += 1;
                    stats.sectors_read += span_sectors as u64;
                    m.reads.inc();
                    m.sectors_read.add(span_sectors as u64);
                    if let Some(sp) = &m.spindle {
                        sp.sectors_read.add(span_sectors as u64);
                    }
                }
                DiskOp::Write => {
                    stats.writes += 1;
                    stats.sectors_written += span_sectors as u64;
                    m.writes.inc();
                    m.sectors_written.add(span_sectors as u64);
                    if let Some(sp) = &m.spindle {
                        sp.sectors_written.add(span_sectors as u64);
                    }
                }
            }
            // Attribute sectors per sub-request: a coalesced batch may mix
            // streams, and the per-stream counters must sum to the globals.
            for q in &batch {
                m.stream_sectors(q.req.stream, op).add(q.req.nsect as u64);
            }
        }
        // Complete every sub-request, slicing read data per requester.
        let ssz = self.inner.params.geometry.sector_size as usize;
        for q in batch {
            let data = span_data.as_ref().map(|d| {
                let off = (q.req.lba - span_lba) as usize * ssz;
                d[off..off + q.req.nsect as usize * ssz].to_vec()
            });
            q.slot.borrow_mut().result = Some(IoResult::ok(data, finished_at));
            q.event.signal();
        }
    }

    /// Rotational positioning: time until the leading edge of angular
    /// `slot` arrives on a track with `spt` sectors.
    ///
    /// Uses the *effective* revolution `spt * sector_time` so the angular
    /// clock is exactly consistent with transfer durations (which advance
    /// in whole sector times); otherwise integer truncation of the sector
    /// time would drift a few ns per revolution and turn every
    /// back-to-back transfer into a full-revolution miss.
    fn rot_wait_to_slot(&self, slot: u32, spt: u32, sector_ns: u64) -> SimDuration {
        let rev_eff = sector_ns * spt as u64;
        let now_in_rev = self.inner.sim.now().as_nanos() % rev_eff;
        let target = slot as u64 * sector_ns;
        let wait = (target + rev_eff - now_in_rev) % rev_eff;
        SimDuration::from_nanos(wait)
    }

    /// Positions the arm for the track holding `chs`, charging seek and
    /// head-switch time and aborting any in-progress buffer fill.
    async fn position(&self, chs: crate::geometry::Chs) {
        let g = &self.inner.params.geometry;
        let moved_cyl = chs.cyl != self.inner.cur_cyl.get();
        let moved_head = chs.head != self.inner.cur_head.get();
        if moved_cyl || moved_head {
            // Leaving the current track ends any fill in progress.
            let leaving = self
                .inner
                .trackbuf
                .borrow()
                .buffered_track()
                .map(|t| {
                    t == g.track_index(crate::geometry::Chs {
                        cyl: self.inner.cur_cyl.get(),
                        head: self.inner.cur_head.get(),
                        sector: 0,
                    })
                })
                .unwrap_or(false);
            if leaving {
                self.inner
                    .trackbuf
                    .borrow_mut()
                    .arm_left_track(self.inner.sim.now());
            }
        }
        if moved_cyl {
            let dist = chs.cyl.abs_diff(self.inner.cur_cyl.get());
            let t = self.inner.params.seek.time(dist);
            self.inner.sim.sleep(t).await;
            let mut stats = self.inner.stats.borrow_mut();
            stats.seek_time += t;
            stats.seeks += 1;
            drop(stats);
            self.inner.metrics.seeks.inc();
            self.inner.metrics.seek_distance.observe(dist as u64);
            self.inner.metrics.seek_time_ns.add(t.as_nanos());
            self.inner.cur_cyl.set(chs.cyl);
        }
        if moved_head || moved_cyl {
            self.inner.sim.sleep(self.inner.params.head_switch).await;
            self.inner.cur_head.set(chs.head);
        }
    }

    async fn media_read(&self, lba: u64, nsect: u32, stream: u32, svc: SpanId) -> Vec<u8> {
        let g = self.inner.params.geometry.clone();
        let mut remaining = nsect;
        let mut cur = lba;
        // Host (bus) transfers from the track buffer overlap the
        // mechanism's further motion (DMA): they only delay the request's
        // completion, not subsequent media runs.
        let mut host_until = self.inner.sim.now();
        while remaining > 0 {
            let chs = g.lba_to_chs(cur);
            let run = remaining.min(g.sectors_to_track_end(chs));
            let track = g.track_index(chs);
            let spt = g.spt(chs.cyl);
            let sector_ns = g.sector_time_ns(chs.cyl);

            let probe = if self.inner.params.track_buffer {
                let slots = (0..run).map(|i| {
                    g.angular_slot(crate::geometry::Chs {
                        sector: chs.sector + i,
                        ..chs
                    })
                });
                self.inner.trackbuf.borrow().probe(track, slots)
            } else {
                BufProbe::Miss
            };

            match probe {
                BufProbe::Hit { ready_at } => {
                    self.inner.stats.borrow_mut().trackbuf_hits += 1;
                    self.inner.metrics.trackbuf_hits.inc();
                    if ready_at > self.inner.sim.now() {
                        self.inner.sim.sleep_until(ready_at).await;
                    }
                    // Host transfer from buffer over the bus (overlapped).
                    let bytes = run as u64 * g.sector_size as u64;
                    let bus = SimDuration::from_secs_f64(bytes as f64 / self.inner.params.bus_rate);
                    let start = host_until.max(self.inner.sim.now());
                    host_until = start + bus;
                    self.inner.stats.borrow_mut().transfer_time += bus;
                    self.inner.metrics.transfer_time_ns.add(bus.as_nanos());
                    // The hit's cost is the overlapped bus transfer window.
                    let hit = self.inner.sim.tracer().record(
                        "disk.trackbuf_hit",
                        stream,
                        svc,
                        start,
                        host_until,
                    );
                    self.inner.sim.tracer().arg(hit, "sectors", run as u64);
                }
                BufProbe::Miss => {
                    if self.inner.params.track_buffer {
                        self.inner.stats.borrow_mut().trackbuf_misses += 1;
                        self.inner.metrics.trackbuf_misses.inc();
                    }
                    self.position(chs).await;
                    let start_slot = g.angular_slot(chs);
                    let rot = self.rot_wait_to_slot(start_slot, spt, sector_ns);
                    self.inner.sim.sleep(rot).await;
                    self.inner.stats.borrow_mut().rot_wait += rot;
                    self.inner.metrics.rot_wait_ns.add(rot.as_nanos());
                    let fill_start = self.inner.sim.now();
                    let xfer = SimDuration::from_nanos(run as u64 * sector_ns);
                    self.inner.sim.sleep(xfer).await;
                    self.inner.stats.borrow_mut().transfer_time += xfer;
                    self.inner.metrics.transfer_time_ns.add(xfer.as_nanos());
                    if self.inner.params.track_buffer {
                        self.inner
                            .trackbuf
                            .borrow_mut()
                            .begin_fill(track, fill_start, start_slot, spt, sector_ns);
                    }
                }
            }
            cur += run as u64;
            remaining -= run;
        }
        // Wait out any remaining host transfer before completing.
        if host_until > self.inner.sim.now() {
            self.inner.sim.sleep_until(host_until).await;
        }
        self.inner.store.borrow().read(lba, nsect)
    }

    async fn media_write(&self, lba: u64, nsect: u32, data: &[u8]) {
        let g = self.inner.params.geometry.clone();
        let mut remaining = nsect;
        let mut cur = lba;
        while remaining > 0 {
            let chs = g.lba_to_chs(cur);
            let run = remaining.min(g.sectors_to_track_end(chs));
            let track = g.track_index(chs);
            let spt = g.spt(chs.cyl);
            let sector_ns = g.sector_time_ns(chs.cyl);

            // Write-through: a write to the buffered track invalidates it.
            if self.inner.trackbuf.borrow().buffered_track() == Some(track) {
                self.inner.trackbuf.borrow_mut().invalidate();
            }
            self.position(chs).await;
            let start_slot = g.angular_slot(chs);
            let rot = self.rot_wait_to_slot(start_slot, spt, sector_ns);
            self.inner.sim.sleep(rot).await;
            self.inner.stats.borrow_mut().rot_wait += rot;
            self.inner.metrics.rot_wait_ns.add(rot.as_nanos());
            let xfer = SimDuration::from_nanos(run as u64 * sector_ns);
            self.inner.sim.sleep(xfer).await;
            self.inner.stats.borrow_mut().transfer_time += xfer;
            self.inner.metrics.transfer_time_ns.add(xfer.as_nanos());

            cur += run as u64;
            remaining -= run;
        }
        self.inner.store.borrow_mut().write(lba, nsect, data);
    }
}

impl Disk {
    /// Rejects a malformed request: the debug build trips an assertion
    /// (malformed requests are bugs in the layer above), the release build
    /// completes the handle immediately with [`IoStatus::MediaError`] so
    /// the error path above gets exercised instead of the process dying.
    fn reject(&self, why: &'static str) -> IoHandle {
        debug_assert!(false, "malformed disk request: {why}");
        let _ = why;
        let (handle, event, slot) = new_handle();
        slot.borrow_mut().result =
            Some(IoResult::error(IoStatus::MediaError, self.inner.sim.now()));
        event.signal();
        handle
    }
}

impl BlockDevice for Disk {
    fn submit(&self, req: DiskRequest) -> IoHandle {
        if req.nsect == 0 {
            return self.reject("zero-length disk request");
        }
        if req.lba + req.nsect as u64 > self.inner.params.geometry.total_sectors() {
            return self.reject("request beyond end of device");
        }
        match &req.data {
            Some(data)
                if data.len()
                    != req.nsect as usize * self.inner.params.geometry.sector_size as usize =>
            {
                return self.reject("write payload length mismatch");
            }
            None if req.op == DiskOp::Write => {
                return self.reject("write without payload");
            }
            _ => {}
        }
        let (handle, event, slot) = new_handle();
        self.inner
            .queue
            .borrow_mut()
            .push(req, event, slot, self.inner.sim.now());
        self.inner.metrics.queue_depth.add(1.0);
        if let Some(sp) = &self.inner.metrics.spindle {
            sp.queue_depth.add(1.0);
        }
        self.inner.notify.notify_all();
        handle
    }

    fn sector_size(&self) -> u32 {
        self.inner.params.geometry.sector_size
    }

    fn total_sectors(&self) -> u64 {
        self.inner.params.geometry.total_sectors()
    }

    fn sector_time_ns(&self) -> u64 {
        self.inner.params.geometry.sector_time_ns(0)
    }

    fn stats(&self) -> DiskStats {
        *self.inner.stats.borrow()
    }

    fn reset_stats(&self) {
        *self.inner.stats.borrow_mut() = DiskStats::default();
    }

    fn queue_len(&self) -> usize {
        self.inner.queue.borrow().len()
    }

    fn shutdown(&self) {
        self.inner.shutdown.set(true);
        self.inner.notify.notify_all();
    }
}
