//! Disk request and completion types.

use std::cell::RefCell;
use std::rc::Rc;

use simkit::{Event, SimTime, SpanId};

/// Direction of a transfer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DiskOp {
    /// Transfer from media to memory.
    Read,
    /// Transfer from memory to media.
    Write,
}

/// A request as submitted to the drive.
#[derive(Debug)]
pub struct DiskRequest {
    /// Direction.
    pub op: DiskOp,
    /// Starting sector.
    pub lba: u64,
    /// Sector count (must be positive).
    pub nsect: u32,
    /// Payload for writes (exactly `nsect` sectors); `None` for reads.
    pub data: Option<Vec<u8>>,
    /// The paper's proposed `B_ORDER` flag: this request may not be
    /// reordered with respect to any other request by `disksort`, the
    /// driver, or the controller.
    pub ordered: bool,
    /// The I/O stream this request belongs to (0 = untagged: metadata and
    /// other background traffic). Rides through the queue so per-stream
    /// sector counters can attribute every transfer to its originator.
    pub stream: u32,
    /// The tracer span this request belongs to (`SpanId::NONE` when the
    /// submitter is not tracing). The drive parents its `disk.queue` and
    /// `disk.service` child spans here, so a request's time in the driver
    /// nests under the file-system operation that issued it.
    pub span: SpanId,
}

/// How a request finished. Before the fault-injection layer existed every
/// request succeeded by construction; now completions carry a status and
/// every consumer must decide whether to retry, reconstruct, or surface
/// the failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoStatus {
    /// The transfer completed; reads carry data.
    Ok,
    /// An unrecoverable defect under the addressed sectors. Sector-local:
    /// other ranges of the device still work. Transient errors also report
    /// this — retrying is the caller's call.
    MediaError,
    /// The whole device stopped answering (spindle death, pulled cable).
    /// Retrying the same device is pointless; redundancy above may still
    /// recover.
    DeviceGone,
}

impl IoStatus {
    /// True for a successful completion.
    pub fn is_ok(self) -> bool {
        self == IoStatus::Ok
    }
}

/// Completion record delivered when a request finishes.
#[derive(Debug)]
pub struct IoResult {
    /// Data read from media (successful reads only; `None` on failure).
    pub data: Option<Vec<u8>>,
    /// Virtual time at which the transfer completed (or failed).
    pub finished_at: SimTime,
    /// Outcome of the transfer.
    pub status: IoStatus,
}

impl IoResult {
    /// A successful completion at `finished_at` carrying `data`.
    pub fn ok(data: Option<Vec<u8>>, finished_at: SimTime) -> IoResult {
        IoResult {
            data,
            finished_at,
            status: IoStatus::Ok,
        }
    }

    /// A failed completion: no data, the given status.
    pub fn error(status: IoStatus, finished_at: SimTime) -> IoResult {
        debug_assert!(!status.is_ok(), "error result with Ok status");
        IoResult {
            data: None,
            finished_at,
            status,
        }
    }
}

#[derive(Default)]
pub(crate) struct IoSlot {
    pub(crate) result: Option<IoResult>,
}

/// Handle used to await a submitted request's completion.
pub struct IoHandle {
    pub(crate) event: Event,
    pub(crate) slot: Rc<RefCell<IoSlot>>,
}

impl IoHandle {
    /// Waits for the transfer to complete and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the same handle is awaited twice (the result is consumed).
    pub async fn wait(self) -> IoResult {
        self.event.wait().await;
        self.slot
            .borrow_mut()
            .result
            .take()
            .expect("IoHandle::wait consumed twice")
    }

    /// Returns `true` once the request has completed.
    pub fn is_done(&self) -> bool {
        self.event.is_signaled()
    }
}

pub(crate) fn new_handle() -> (IoHandle, Event, Rc<RefCell<IoSlot>>) {
    let event = Event::new();
    let slot = Rc::new(RefCell::new(IoSlot::default()));
    (
        IoHandle {
            event: event.clone(),
            slot: Rc::clone(&slot),
        },
        event,
        slot,
    )
}

/// Completion side of an [`IoHandle`], for devices layered above the drive
/// (a volume fans a request out to its spindles and completes the parent
/// handle itself once every child finishes).
pub struct IoCompletion {
    event: Event,
    slot: Rc<RefCell<IoSlot>>,
}

impl IoCompletion {
    /// Delivers the result and wakes the waiter. Consumes the completion:
    /// a request finishes exactly once.
    pub fn complete(self, result: IoResult) {
        self.slot.borrow_mut().result = Some(result);
        self.event.signal();
    }
}

/// Creates a connected handle/completion pair, for [`BlockDevice`]
/// implementations that service requests themselves instead of queueing
/// them on a drive mechanism.
///
/// [`BlockDevice`]: crate::BlockDevice
pub fn handle_pair() -> (IoHandle, IoCompletion) {
    let (handle, event, slot) = new_handle();
    (handle, IoCompletion { event, slot })
}
