//! Property tests for the page cache: arbitrary interleavings of create /
//! lookup / dirty / free / invalidate keep the internal structures
//! consistent, and the daemon can always recover memory from clean pages.

use pagecache::{PageCache, PageCacheParams, PageId, PageKey, PageoutDaemon, PageoutParams};
use proptest::prelude::*;
use simkit::{Sim, SimDuration};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Create { vnode: u8, page: u8 },
    Lookup { vnode: u8, page: u8 },
    Dirty { vnode: u8, page: u8 },
    Clean { vnode: u8, page: u8 },
    Free { vnode: u8, page: u8 },
    Invalidate { vnode: u8, from_page: u8 },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    fn vp() -> (std::ops::Range<u8>, std::ops::Range<u8>) {
        (0u8..3, 0u8..24)
    }
    prop_oneof![
        vp().prop_map(|(vnode, page)| Op::Create { vnode, page }),
        vp().prop_map(|(vnode, page)| Op::Lookup { vnode, page }),
        vp().prop_map(|(vnode, page)| Op::Dirty { vnode, page }),
        vp().prop_map(|(vnode, page)| Op::Clean { vnode, page }),
        vp().prop_map(|(vnode, page)| Op::Free { vnode, page }),
        (0u8..3, 0u8..24).prop_map(|(vnode, from_page)| Op::Invalidate { vnode, from_page }),
        Just(Op::Tick),
    ]
}

fn key(vnode: u8, page: u8) -> PageKey {
    PageKey {
        vnode: vnode as u64,
        offset: page as u64 * 8192,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cache_stays_consistent_under_arbitrary_ops(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let sim = Sim::new();
        let pc = PageCache::new(&sim, PageCacheParams::small_test());
        // The daemon keeps allocation from deadlocking when all 32 pages
        // are consumed (clean pages can always be stolen back).
        let (_daemon, rx) = PageoutDaemon::spawn(&sim, &pc, None, PageoutParams::small_test());
        std::mem::forget(rx);
        let pc2 = pc.clone();
        let s = sim.clone();
        sim.run_until(async move {
            // Shadow map of live ids we know about (may be stale; the cache
            // is the source of truth via generation checks).
            let mut ids: HashMap<PageKey, PageId> = HashMap::new();
            for op in ops {
                match op {
                    Op::Create { vnode, page } => {
                        let k = key(vnode, page);
                        if pc2.lookup(k).is_none() {
                            let id = pc2.create(k).await;
                            pc2.unbusy(id);
                            ids.insert(k, id);
                        }
                    }
                    Op::Lookup { vnode, page } => {
                        if let Some(id) = pc2.lookup(key(vnode, page)) {
                            pc2.set_referenced(id);
                            ids.insert(key(vnode, page), id);
                        }
                    }
                    Op::Dirty { vnode, page } => {
                        if let Some(id) = pc2.lookup(key(vnode, page)) {
                            pc2.mark_dirty(id);
                        }
                    }
                    Op::Clean { vnode, page } => {
                        if let Some(id) = pc2.lookup(key(vnode, page)) {
                            pc2.clear_dirty(id);
                        }
                    }
                    Op::Free { vnode, page } => {
                        if let Some(id) = pc2.lookup(key(vnode, page)) {
                            if !pc2.is_dirty(id) && !pc2.is_busy(id) {
                                pc2.free_page(id);
                            }
                        }
                    }
                    Op::Invalidate { vnode, from_page } => {
                        pc2.invalidate_vnode(vnode as u64, from_page as u64 * 8192);
                        ids.retain(|k, _| {
                            !(k.vnode == vnode as u64
                                && k.offset >= from_page as u64 * 8192)
                        });
                    }
                    Op::Tick => {
                        s.sleep(SimDuration::from_millis(3)).await;
                    }
                }
                pc2.assert_consistent();
            }
            // Every id we believe is live must still resolve by key (or
            // have been legitimately recycled — lookup is the arbiter).
            for (k, _) in ids {
                let _ = pc2.lookup(k); // Must not panic.
            }
            pc2.assert_consistent();
        });
    }
}
