//! The page name cache: `<vnode, offset>` → physical page.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use simkit::stats::{Counter, Gauge, NameId};
use simkit::{Notify, Sim, SimDuration, SpanId};

/// Identifies a file for page naming purposes.
pub type VnodeId = u64;

/// The name of a cached page: a vnode plus a page-aligned byte offset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning vnode.
    pub vnode: VnodeId,
    /// Byte offset within the file (page aligned).
    pub offset: u64,
}

/// Sizing and thresholds for the cache.
#[derive(Clone, Copy, Debug)]
pub struct PageCacheParams {
    /// Physical pages available to the cache.
    pub total_pages: usize,
    /// Bytes per page (the reproduction uses 8 KB = one fs block).
    pub page_size: usize,
    /// Low-water mark: the pageout daemon runs while `free < lotsfree`.
    pub lotsfree: usize,
}

impl PageCacheParams {
    /// The paper's measurement machine: 8 MB SPARCstation 1. Roughly 6 MB
    /// is page cache after the kernel; at 8 KB pages that is 768 pages.
    pub fn sparcstation_8mb() -> PageCacheParams {
        PageCacheParams {
            total_pages: 768,
            page_size: 8192,
            lotsfree: 48, // 1/16 of memory, the classic lotsfree ratio.
        }
    }

    /// A tiny cache for unit tests.
    pub fn small_test() -> PageCacheParams {
        PageCacheParams {
            total_pages: 32,
            page_size: 8192,
            lotsfree: 4,
        }
    }
}

/// Counters exposed for experiments and assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageCacheStats {
    /// Lookups that found the page (including reclaims).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Hits that pulled the page back off the free list.
    pub reclaims: u64,
    /// Pages created (identity assigned).
    pub creates: u64,
    /// Pages returned to the free list.
    pub frees: u64,
    /// Identities destroyed (truncate/unlink/reuse).
    pub destroys: u64,
    /// Allocations that had to wait for a free page.
    pub alloc_stalls: u64,
    /// Total virtual time allocations spent waiting.
    pub alloc_stall_time: SimDuration,
}

/// "Not linked" sentinel for the intrusive free-list links.
const NIL: usize = usize::MAX;

struct Page {
    key: Option<PageKey>,
    generation: u64,
    data: Vec<u8>,
    busy: bool,
    dirty: bool,
    referenced: bool,
    on_free_list: bool,
    waiters: Vec<Waker>,
    /// Intrusive free-list links ([`NIL`] when not on the list). The list
    /// orders pages by when they were freed (LRU-of-free): `create` steals
    /// from the head, so the longest-free identity is recycled first.
    free_prev: usize,
    free_next: usize,
}

/// The free list as an intrusive doubly-linked list threaded through
/// [`Page::free_prev`]/[`Page::free_next`]. Push, pop, and — the operation
/// the previous `VecDeque` representation made O(free) on every reclaim —
/// removal of an arbitrary page are all O(1).
struct FreeList {
    head: usize,
    tail: usize,
    len: usize,
}

impl FreeList {
    fn new() -> FreeList {
        FreeList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    fn push_back(&mut self, pages: &mut [Page], idx: usize) {
        debug_assert!(pages[idx].free_prev == NIL && pages[idx].free_next == NIL);
        pages[idx].free_prev = self.tail;
        pages[idx].free_next = NIL;
        if self.tail == NIL {
            self.head = idx;
        } else {
            pages[self.tail].free_next = idx;
        }
        self.tail = idx;
        self.len += 1;
    }

    fn pop_front(&mut self, pages: &mut [Page]) -> Option<usize> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        self.unlink(pages, idx);
        Some(idx)
    }

    /// Unlinks `idx` wherever it sits in the list (reclaim).
    fn unlink(&mut self, pages: &mut [Page], idx: usize) {
        let (prev, next) = (pages[idx].free_prev, pages[idx].free_next);
        debug_assert!(
            prev != NIL || next != NIL || self.head == idx,
            "unlinked page"
        );
        if prev == NIL {
            self.head = next;
        } else {
            pages[prev].free_next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            pages[next].free_prev = prev;
        }
        pages[idx].free_prev = NIL;
        pages[idx].free_next = NIL;
        self.len -= 1;
    }
}

/// Stable reference to a page; all accessors panic if the page identity was
/// recycled (generation mismatch), which turns use-after-free bugs into
/// loud failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageId {
    idx: usize,
    generation: u64,
}

/// Registry handles mirroring [`PageCacheStats`] into `sim.stats()`
/// under the `cache.*` namespace (schema: DESIGN.md "Observability").
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    reclaims: Counter,
    creates: Counter,
    frees: Counter,
    destroys: Counter,
    alloc_stalls: Counter,
    alloc_stall_ns: Counter,
    /// Occupancy gauges sampled by the telemetry sampler: pages currently
    /// on the free list and pages currently dirty. Kept in lockstep with
    /// the free list / dirty index at every mutation site.
    free_pages: Gauge,
    dirty_pages: Gauge,
    /// Registry handle for lazily materialized per-stream counters.
    registry: simkit::stats::StatsRegistry,
    /// Interned `cache.hits`/`cache.misses` base names: per-stream lookup
    /// attribution ([`PageCache::lookup_for`]) resolves `base{stream=N}`
    /// through the registry's trivial-hash interned table instead of
    /// formatting and re-hashing a `String` per fault.
    hits_id: NameId,
    misses_id: NameId,
}

impl CacheMetrics {
    fn new(sim: &Sim) -> CacheMetrics {
        let s = sim.stats();
        CacheMetrics {
            hits: s.counter("cache.hits"),
            misses: s.counter("cache.misses"),
            reclaims: s.counter("cache.reclaims"),
            creates: s.counter("cache.creates"),
            frees: s.counter("cache.frees"),
            destroys: s.counter("cache.destroys"),
            alloc_stalls: s.counter("cache.alloc_stalls"),
            alloc_stall_ns: s.counter("cache.alloc_stall_ns"),
            free_pages: s.gauge("cache.free_pages"),
            dirty_pages: s.gauge("cache.dirty_pages"),
            hits_id: s.intern("cache.hits"),
            misses_id: s.intern("cache.misses"),
            registry: s.clone(),
        }
    }

    fn stream_lookup(&self, stream: u32, hit: bool) -> Counter {
        let base = if hit { self.hits_id } else { self.misses_id };
        self.registry.stream_counter_id(base, stream)
    }
}

struct CacheInner {
    sim: Sim,
    params: PageCacheParams,
    pages: RefCell<Vec<Page>>,
    hash: RefCell<HashMap<PageKey, usize>>,
    free: RefCell<FreeList>,
    /// Per-vnode index of dirty page offsets, kept in lockstep with the
    /// per-page dirty bits so [`PageCache::dirty_offsets`] reads the
    /// answer instead of scanning the whole name hash.
    dirty: RefCell<HashMap<VnodeId, BTreeSet<u64>>>,
    /// Signaled whenever a page joins the free list (allocation stalls wait
    /// here).
    mem_notify: Notify,
    /// Signaled whenever free memory drops below `lotsfree` (the pageout
    /// daemon waits here).
    pressure_notify: Notify,
    stats: RefCell<PageCacheStats>,
    metrics: CacheMetrics,
    /// Observers of identity destruction (reuse, invalidation): each is
    /// called with the key a page *stopped* naming. The I/O path uses
    /// this to notice prefetched-but-never-consumed pages leaving the
    /// cache (wasted-read accounting).
    recycle_hooks: RefCell<Vec<RecycleHook>>,
}

/// An identity-destruction observer (see `CacheInner::recycle_hooks`).
type RecycleHook = Box<dyn Fn(PageKey)>;

/// The unified page cache. Clones share the same memory.
#[derive(Clone)]
pub struct PageCache {
    inner: Rc<CacheInner>,
}

impl PageCache {
    /// Creates an empty cache: every page starts on the free list with no
    /// identity.
    pub fn new(sim: &Sim, params: PageCacheParams) -> PageCache {
        assert!(params.total_pages > 0, "cache needs at least one page");
        assert!(
            params.lotsfree < params.total_pages,
            "lotsfree must be below total_pages"
        );
        let mut pages: Vec<Page> = (0..params.total_pages)
            .map(|_| Page {
                key: None,
                generation: 0,
                data: vec![0u8; params.page_size],
                busy: false,
                dirty: false,
                referenced: false,
                on_free_list: true,
                waiters: Vec::new(),
                free_prev: NIL,
                free_next: NIL,
            })
            .collect();
        let mut free = FreeList::new();
        for idx in 0..params.total_pages {
            free.push_back(&mut pages, idx);
        }
        let cache = PageCache {
            inner: Rc::new(CacheInner {
                sim: sim.clone(),
                params,
                pages: RefCell::new(pages),
                hash: RefCell::new(HashMap::new()),
                free: RefCell::new(free),
                dirty: RefCell::new(HashMap::new()),
                mem_notify: Notify::new(),
                pressure_notify: Notify::new(),
                stats: RefCell::new(PageCacheStats::default()),
                metrics: CacheMetrics::new(sim),
                recycle_hooks: RefCell::new(Vec::new()),
            }),
        };
        cache
            .inner
            .metrics
            .free_pages
            .set(params.total_pages as f64);
        cache
    }

    /// Mirrors the free-list length into the `cache.free_pages` gauge;
    /// called after every free-list mutation so the telemetry sampler
    /// reads a current value.
    fn sync_free_gauge(&self) {
        self.inner
            .metrics
            .free_pages
            .set(self.inner.free.borrow().len as f64);
    }

    /// Registers an observer of page-identity destruction: `hook(key)`
    /// runs synchronously whenever a page stops naming `key` (free-list
    /// reuse, [`PageCache::invalidate_page`],
    /// [`PageCache::invalidate_vnode`]). Hooks must not call back into
    /// the cache.
    pub fn add_recycle_hook(&self, hook: impl Fn(PageKey) + 'static) {
        self.inner.recycle_hooks.borrow_mut().push(Box::new(hook));
    }

    fn fire_recycle(&self, key: PageKey) {
        for hook in self.inner.recycle_hooks.borrow().iter() {
            hook(key);
        }
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.inner.params.page_size
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> usize {
        self.inner.params.total_pages
    }

    /// Pages currently on the free list.
    pub fn free_count(&self) -> usize {
        self.inner.free.borrow().len
    }

    /// The pageout daemon's low-water mark.
    pub fn lotsfree(&self) -> usize {
        self.inner.params.lotsfree
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PageCacheStats {
        *self.inner.stats.borrow()
    }

    /// Resets counters (sizing is unaffected).
    pub fn reset_stats(&self) {
        *self.inner.stats.borrow_mut() = PageCacheStats::default();
    }

    /// Notifier used by the pageout daemon; fires when memory runs low.
    pub(crate) fn pressure_notify(&self) -> Notify {
        self.inner.pressure_notify.clone()
    }

    fn check(&self, id: PageId) {
        let pages = self.inner.pages.borrow();
        assert_eq!(
            pages[id.idx].generation, id.generation,
            "stale PageId: page was recycled"
        );
    }

    /// Finds the page named `key`, reclaiming it from the free list if
    /// needed, and marks it referenced.
    pub fn lookup(&self, key: PageKey) -> Option<PageId> {
        let idx = self.inner.hash.borrow().get(&key).copied();
        match idx {
            Some(idx) => {
                let mut pages = self.inner.pages.borrow_mut();
                debug_assert_eq!(pages[idx].key, Some(key));
                if pages[idx].on_free_list {
                    self.inner.free.borrow_mut().unlink(&mut pages, idx);
                    pages[idx].on_free_list = false;
                    self.inner.stats.borrow_mut().reclaims += 1;
                    self.inner.metrics.reclaims.inc();
                    self.sync_free_gauge();
                }
                pages[idx].referenced = true;
                let generation = pages[idx].generation;
                self.inner.stats.borrow_mut().hits += 1;
                self.inner.metrics.hits.inc();
                Some(PageId { idx, generation })
            }
            None => {
                self.inner.stats.borrow_mut().misses += 1;
                self.inner.metrics.misses.inc();
                None
            }
        }
    }

    /// [`PageCache::lookup`], with the hit or miss additionally attributed
    /// to `stream` (`cache.hits{stream=N}` / `cache.misses{stream=N}`).
    /// Used by the demand-fault path, where the faulting stream is known;
    /// internal probes (cluster clipping, writeback gathering) stay
    /// unattributed.
    pub fn lookup_for(&self, key: PageKey, stream: u32) -> Option<PageId> {
        self.lookup_traced(key, stream, SpanId::NONE)
    }

    /// [`PageCache::lookup_for`], additionally recording the outcome as an
    /// instant `cache.hit` / `cache.miss` trace span under `parent`, so the
    /// analyzer can read hit ratios straight out of a trace. Lookups take
    /// no virtual time, so the span is zero-width.
    pub fn lookup_traced(&self, key: PageKey, stream: u32, parent: SpanId) -> Option<PageId> {
        let found = self.lookup(key);
        self.inner
            .metrics
            .stream_lookup(stream, found.is_some())
            .inc();
        let tracer = self.inner.sim.tracer();
        let name = if found.is_some() {
            "cache.hit"
        } else {
            "cache.miss"
        };
        let now = self.inner.sim.now();
        let span = tracer.record(name, stream, parent, now, now);
        tracer.arg(span, "offset", key.offset);
        found
    }

    /// Allocates a page for `key`, waiting for free memory if necessary.
    /// The new page is returned **busy** (the caller fills it and calls
    /// [`PageCache::unbusy`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` is already cached (callers must `lookup` first) or
    /// if the offset is not page aligned.
    pub async fn create(&self, key: PageKey) -> PageId {
        self.create_traced(key, 0, SpanId::NONE).await
    }

    /// [`PageCache::create`], recording any allocation stall (waiting for
    /// the pageout daemon to free memory) as a retroactive
    /// `cache.alloc_stall` trace span for `stream` under `parent`.
    pub async fn create_traced(&self, key: PageKey, stream: u32, parent: SpanId) -> PageId {
        assert_eq!(
            key.offset % self.inner.params.page_size as u64,
            0,
            "page offset must be page aligned"
        );
        assert!(
            self.inner.hash.borrow().get(&key).is_none(),
            "create of already-cached page {key:?}"
        );
        let start = self.inner.sim.now();
        let mut stalled = false;
        let idx = loop {
            let candidate = {
                let mut pages = self.inner.pages.borrow_mut();
                self.inner.free.borrow_mut().pop_front(&mut pages)
            };
            match candidate {
                Some(idx) => {
                    self.sync_free_gauge();
                    break idx;
                }
                None => {
                    if !stalled {
                        stalled = true;
                        self.inner.stats.borrow_mut().alloc_stalls += 1;
                        self.inner.metrics.alloc_stalls.inc();
                    }
                    // Out of memory: kick the daemon and wait for a free.
                    self.inner.pressure_notify.notify_all();
                    self.inner.mem_notify.wait().await;
                }
            }
        };
        if stalled {
            let now = self.inner.sim.now();
            let waited = now.duration_since(start);
            self.inner.stats.borrow_mut().alloc_stall_time += waited;
            self.inner.metrics.alloc_stall_ns.add(waited.as_nanos());
            self.inner
                .sim
                .tracer()
                .record("cache.alloc_stall", stream, parent, start, now);
        }
        {
            let mut pages = self.inner.pages.borrow_mut();
            let page = &mut pages[idx];
            debug_assert!(!page.busy, "free page cannot be busy");
            debug_assert!(!page.dirty, "free page cannot be dirty");
            // Destroy the old identity (the reuse that ends reclaimability).
            let recycled = page.key.take();
            if let Some(old) = recycled {
                self.inner.hash.borrow_mut().remove(&old);
                self.inner.stats.borrow_mut().destroys += 1;
                self.inner.metrics.destroys.inc();
            }
            page.key = Some(key);
            page.generation += 1;
            page.on_free_list = false;
            page.busy = true;
            page.dirty = false;
            page.referenced = true;
            page.data.fill(0);
            self.inner.hash.borrow_mut().insert(key, idx);
            self.inner.stats.borrow_mut().creates += 1;
            self.inner.metrics.creates.inc();
            let generation = page.generation;
            drop(pages);
            if let Some(old) = recycled {
                self.fire_recycle(old);
            }
            self.maybe_signal_pressure();
            PageId { idx, generation }
        }
    }

    fn maybe_signal_pressure(&self) {
        if self.free_count() < self.inner.params.lotsfree {
            self.inner.pressure_notify.notify_all();
        }
    }

    /// Waits until the page is not busy, then marks it busy (exclusive
    /// I/O-side lock). Resolves to `false` if the page's identity was
    /// recycled while waiting (the caller should forget the page).
    pub fn lock_busy(&self, id: PageId) -> LockBusy {
        self.check(id);
        LockBusy {
            cache: self.clone(),
            id,
        }
    }

    /// Waits until the page is not busy without acquiring it (used to wait
    /// out someone else's I/O, e.g. a fault on a page being read ahead).
    ///
    /// Tolerates recycled identities: if the page was reused (its
    /// generation changed), the wait resolves immediately — callers must
    /// re-lookup afterwards if they need the page itself.
    pub fn wait_unbusy(&self, id: PageId) -> WaitUnbusy {
        WaitUnbusy {
            cache: self.clone(),
            id,
        }
    }

    /// Whether `id` still names the same page (its identity has not been
    /// recycled).
    pub fn is_current(&self, id: PageId) -> bool {
        self.inner.pages.borrow()[id.idx].generation == id.generation
    }

    /// Clears busy and wakes waiters.
    pub fn unbusy(&self, id: PageId) {
        self.check(id);
        let mut pages = self.inner.pages.borrow_mut();
        let page = &mut pages[id.idx];
        assert!(page.busy, "unbusy of non-busy page");
        page.busy = false;
        for w in page.waiters.drain(..) {
            w.wake();
        }
    }

    /// Whether the page is currently busy.
    pub fn is_busy(&self, id: PageId) -> bool {
        self.check(id);
        self.inner.pages.borrow()[id.idx].busy
    }

    /// Marks the page modified (and indexes it under its vnode so
    /// [`PageCache::dirty_offsets`] needs no scan).
    pub fn mark_dirty(&self, id: PageId) {
        self.check(id);
        let mut pages = self.inner.pages.borrow_mut();
        if pages[id.idx].dirty {
            return;
        }
        // The page may have drifted onto the free list (e.g. a concurrent
        // cleaner wrote it out and freed it while this writer held no busy
        // lock). A dirty page must never be reusable, so reclaim it here —
        // otherwise a later allocation would pop it and discard the update.
        if pages[id.idx].on_free_list {
            self.inner.free.borrow_mut().unlink(&mut pages, id.idx);
            pages[id.idx].on_free_list = false;
            self.inner.stats.borrow_mut().reclaims += 1;
            self.inner.metrics.reclaims.inc();
            self.sync_free_gauge();
        }
        let page = &mut pages[id.idx];
        page.dirty = true;
        let key = page.key.expect("dirtying a page with no identity");
        if self
            .inner
            .dirty
            .borrow_mut()
            .entry(key.vnode)
            .or_default()
            .insert(key.offset)
        {
            self.inner.metrics.dirty_pages.add(1.0);
        }
    }

    /// Clears the modified flag (after a successful write to backing store).
    pub fn clear_dirty(&self, id: PageId) {
        self.check(id);
        let mut pages = self.inner.pages.borrow_mut();
        let page = &mut pages[id.idx];
        if !page.dirty {
            return;
        }
        page.dirty = false;
        if let Some(key) = page.key {
            self.remove_dirty_entry(key);
        }
    }

    /// Drops `key` from the per-vnode dirty index.
    fn remove_dirty_entry(&self, key: PageKey) {
        let mut dirty = self.inner.dirty.borrow_mut();
        if let Some(set) = dirty.get_mut(&key.vnode) {
            if set.remove(&key.offset) {
                self.inner.metrics.dirty_pages.add(-1.0);
            }
            if set.is_empty() {
                dirty.remove(&key.vnode);
            }
        }
    }

    /// Whether the page is dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.check(id);
        self.inner.pages.borrow()[id.idx].dirty
    }

    /// Sets the simulated hardware reference bit (a touch).
    pub fn set_referenced(&self, id: PageId) {
        self.check(id);
        self.inner.pages.borrow_mut()[id.idx].referenced = true;
    }

    /// Runs `f` over the page contents without copying. This (plus
    /// [`PageCache::read_at`] for copy-into-caller-buffer access) replaced
    /// the old whole-page-cloning `read_page`; nothing on the I/O path
    /// allocates or copies 8 KB per page anymore.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.check(id);
        f(&self.inner.pages.borrow()[id.idx].data)
    }

    /// Alias of [`PageCache::with_page`] (the original borrow-based name).
    pub fn with_data<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.with_page(id, f)
    }

    /// Overwrites page bytes at `off` (does NOT set the dirty flag — the
    /// caller decides, since fills from disk are not modifications).
    pub fn write_at(&self, id: PageId, off: usize, src: &[u8]) {
        self.check(id);
        let mut pages = self.inner.pages.borrow_mut();
        let data = &mut pages[id.idx].data;
        assert!(off + src.len() <= data.len(), "write beyond page");
        data[off..off + src.len()].copy_from_slice(src);
    }

    /// Reads page bytes at `off` into `dst`.
    pub fn read_at(&self, id: PageId, off: usize, dst: &mut [u8]) {
        self.check(id);
        let pages = self.inner.pages.borrow();
        let data = &pages[id.idx].data;
        assert!(off + dst.len() <= data.len(), "read beyond page");
        dst.copy_from_slice(&data[off..off + dst.len()]);
    }

    /// Returns the page to the free list, keeping its identity so it can be
    /// reclaimed until reused.
    ///
    /// # Panics
    ///
    /// Panics if the page is busy or dirty — dirty pages must be cleaned
    /// before they are freed.
    pub fn free_page(&self, id: PageId) {
        self.check(id);
        let mut pages = self.inner.pages.borrow_mut();
        assert!(!pages[id.idx].busy, "freeing a busy page");
        assert!(!pages[id.idx].dirty, "freeing a dirty page");
        if pages[id.idx].on_free_list {
            return; // Idempotent.
        }
        pages[id.idx].referenced = false;
        pages[id.idx].on_free_list = true;
        self.inner.free.borrow_mut().push_back(&mut pages, id.idx);
        drop(pages);
        self.sync_free_gauge();
        self.inner.stats.borrow_mut().frees += 1;
        self.inner.metrics.frees.inc();
        self.inner.mem_notify.notify_all();
    }

    /// Destroys one page's identity — the failed-read path. The page was
    /// created busy for a transfer that never delivered data, so its
    /// contents are garbage and no later lookup may find it. Unlike
    /// [`PageCache::invalidate_vnode`] the page may be busy (it usually
    /// is): busy is cleared and waiters woken — they observe the recycled
    /// generation and re-fault.
    pub fn invalidate_page(&self, id: PageId) {
        self.check(id);
        let mut pages = self.inner.pages.borrow_mut();
        let key = pages[id.idx].key.take();
        if pages[id.idx].dirty {
            pages[id.idx].dirty = false;
            if let Some(k) = key {
                self.remove_dirty_entry(k);
            }
        }
        pages[id.idx].generation += 1;
        pages[id.idx].referenced = false;
        pages[id.idx].busy = false;
        for w in pages[id.idx].waiters.drain(..).collect::<Vec<_>>() {
            w.wake();
        }
        let was_free = pages[id.idx].on_free_list;
        pages[id.idx].on_free_list = true;
        if !was_free {
            self.inner.free.borrow_mut().push_back(&mut pages, id.idx);
        }
        drop(pages);
        if let Some(k) = key {
            self.inner.hash.borrow_mut().remove(&k);
            self.fire_recycle(k);
        }
        if !was_free {
            self.sync_free_gauge();
            self.inner.mem_notify.notify_all();
        }
        self.inner.stats.borrow_mut().destroys += 1;
        self.inner.metrics.destroys.inc();
    }

    /// Destroys the identity of every page of `vnode` with offset ≥ `from`
    /// (truncate/unlink). Pages must not be busy.
    pub fn invalidate_vnode(&self, vnode: VnodeId, from: u64) {
        let mut victims: Vec<(PageKey, usize)> = self
            .inner
            .hash
            .borrow()
            .iter()
            .filter(|(k, _)| k.vnode == vnode && k.offset >= from)
            .map(|(k, &i)| (*k, i))
            .collect();
        // Free pages in ascending offset order, not hash-iteration order:
        // the free list feeds page reuse, so a RandomState-dependent order
        // here would leak into which physical page holds which identity —
        // and from there into pageout-daemon scan counts — making whole
        // simulations differ between processes.
        victims.sort_unstable_by_key(|&(k, _)| k.offset);
        for (key, idx) in victims {
            let mut pages = self.inner.pages.borrow_mut();
            assert!(!pages[idx].busy, "invalidating a busy page");
            if pages[idx].dirty {
                self.remove_dirty_entry(key);
            }
            pages[idx].key = None;
            pages[idx].generation += 1;
            pages[idx].dirty = false;
            pages[idx].referenced = false;
            let was_free = pages[idx].on_free_list;
            pages[idx].on_free_list = true;
            if !was_free {
                self.inner.free.borrow_mut().push_back(&mut pages, idx);
            }
            drop(pages);
            self.inner.hash.borrow_mut().remove(&key);
            self.fire_recycle(key);
            if !was_free {
                self.sync_free_gauge();
                self.inner.mem_notify.notify_all();
            }
            self.inner.stats.borrow_mut().destroys += 1;
            self.inner.metrics.destroys.inc();
        }
    }

    /// Offsets of all dirty pages belonging to `vnode`, sorted ascending
    /// (used by fsync and inode deactivation). Served from the per-vnode
    /// dirty index — O(dirty pages of this vnode), not a whole-cache scan.
    pub fn dirty_offsets(&self, vnode: VnodeId) -> Vec<u64> {
        self.inner
            .dirty
            .borrow()
            .get(&vnode)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of resident (identified, not-free) pages.
    pub fn resident_count(&self) -> usize {
        let pages = self.inner.pages.borrow();
        pages
            .iter()
            .filter(|p| p.key.is_some() && !p.on_free_list)
            .count()
    }

    /// Number of resident pages belonging to `vnode` (cache-survival
    /// experiments).
    pub fn resident_of(&self, vnode: VnodeId) -> usize {
        let pages = self.inner.pages.borrow();
        pages
            .iter()
            .filter(|p| !p.on_free_list && p.key.map(|k| k.vnode == vnode).unwrap_or(false))
            .count()
    }

    // ---- pageout daemon access (crate-internal) ----

    pub(crate) fn scan_snapshot(&self, idx: usize) -> (Option<PageKey>, bool, bool, bool, bool) {
        let pages = self.inner.pages.borrow();
        let p = &pages[idx];
        (p.key, p.busy, p.dirty, p.referenced, p.on_free_list)
    }

    pub(crate) fn clear_referenced_at(&self, idx: usize) {
        self.inner.pages.borrow_mut()[idx].referenced = false;
    }

    /// Back-hand free attempt; returns `true` if the page was freed.
    pub(crate) fn try_free_at(&self, idx: usize) -> bool {
        let mut pages = self.inner.pages.borrow_mut();
        let p = &pages[idx];
        if p.busy || p.dirty || p.referenced || p.on_free_list || p.key.is_none() {
            return false;
        }
        pages[idx].on_free_list = true;
        self.inner.free.borrow_mut().push_back(&mut pages, idx);
        drop(pages);
        self.sync_free_gauge();
        self.inner.stats.borrow_mut().frees += 1;
        self.inner.metrics.frees.inc();
        self.inner.mem_notify.notify_all();
        true
    }

    /// Validates internal invariants (tests only; O(pages)).
    pub fn assert_consistent(&self) {
        let pages = self.inner.pages.borrow();
        let hash = self.inner.hash.borrow();
        let free = self.inner.free.borrow();
        let dirty = self.inner.dirty.borrow();
        for (key, &idx) in hash.iter() {
            assert_eq!(pages[idx].key, Some(*key), "hash points at wrong page");
        }
        // Walk the intrusive free list, checking links and flags.
        let mut seen = std::collections::HashSet::new();
        let mut idx = free.head;
        let mut prev = NIL;
        while idx != NIL {
            assert!(seen.insert(idx), "page {idx} on free list twice");
            assert_eq!(pages[idx].free_prev, prev, "free list back-link broken");
            assert!(pages[idx].on_free_list, "free list flag mismatch");
            assert!(!pages[idx].busy, "busy page on free list");
            assert!(!pages[idx].dirty, "dirty page on free list");
            prev = idx;
            idx = pages[idx].free_next;
        }
        assert_eq!(free.tail, prev, "free list tail mismatch");
        assert_eq!(free.len, seen.len(), "free list length mismatch");
        for (idx, p) in pages.iter().enumerate() {
            if p.on_free_list {
                assert!(seen.contains(&idx), "flagged free but not listed");
            } else {
                assert!(
                    p.free_prev == NIL && p.free_next == NIL,
                    "off-list page still linked"
                );
            }
            if let Some(k) = p.key {
                assert_eq!(hash.get(&k), Some(&idx), "page identity not hashed");
                assert_eq!(
                    p.dirty,
                    dirty.get(&k.vnode).is_some_and(|s| s.contains(&k.offset)),
                    "dirty index out of sync for {k:?}"
                );
            }
        }
        let indexed: usize = dirty.values().map(|s| s.len()).sum();
        let actually_dirty = pages.iter().filter(|p| p.dirty).count();
        assert_eq!(indexed, actually_dirty, "dirty index size mismatch");
    }
}

/// Future returned by [`PageCache::lock_busy`].
pub struct LockBusy {
    cache: PageCache,
    id: PageId,
}

impl Future for LockBusy {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let mut pages = self.cache.inner.pages.borrow_mut();
        let page = &mut pages[self.id.idx];
        if page.generation != self.id.generation {
            // Recycled while we waited: the page we wanted no longer exists.
            return Poll::Ready(false);
        }
        if page.busy {
            page.waiters.push(cx.waker().clone());
            Poll::Pending
        } else {
            // The page may have drifted onto the free list while this lock
            // waited (e.g. a concurrent cleaner freed it after its own
            // write). A busy page must never sit on the free list, so
            // reclaim it here.
            let reclaimed = page.on_free_list;
            if reclaimed {
                self.cache
                    .inner
                    .free
                    .borrow_mut()
                    .unlink(&mut pages, self.id.idx);
                pages[self.id.idx].on_free_list = false;
            }
            pages[self.id.idx].busy = true;
            drop(pages);
            if reclaimed {
                self.cache.inner.stats.borrow_mut().reclaims += 1;
                self.cache.inner.metrics.reclaims.inc();
            }
            Poll::Ready(true)
        }
    }
}

/// Future returned by [`PageCache::wait_unbusy`].
pub struct WaitUnbusy {
    cache: PageCache,
    id: PageId,
}

impl Future for WaitUnbusy {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut pages = self.cache.inner.pages.borrow_mut();
        let page = &mut pages[self.id.idx];
        if page.generation != self.id.generation {
            // The page was recycled while we waited — it is certainly not
            // busy on our behalf anymore.
            return Poll::Ready(());
        }
        if page.busy {
            page.waiters.push(cx.waker().clone());
            Poll::Pending
        } else {
            Poll::Ready(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sim: &Sim) -> PageCache {
        PageCache::new(sim, PageCacheParams::small_test())
    }

    fn key(v: VnodeId, off: u64) -> PageKey {
        PageKey {
            vnode: v,
            offset: off,
        }
    }

    #[test]
    fn create_lookup_roundtrip() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            let id = pc2.create(key(1, 0)).await;
            pc2.write_at(id, 0, b"hello");
            pc2.unbusy(id);
            let found = pc2.lookup(key(1, 0)).expect("cached");
            assert_eq!(found, id);
            pc2.with_data(found, |d| assert_eq!(&d[..5], b"hello"));
            assert!(pc2.lookup(key(1, 8192)).is_none());
            pc2.assert_consistent();
        });
        let st = pc.stats();
        assert_eq!(st.creates, 1);
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn free_then_reclaim_keeps_contents() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            let id = pc2.create(key(1, 0)).await;
            pc2.write_at(id, 0, b"data");
            pc2.unbusy(id);
            pc2.free_page(id);
            assert_eq!(pc2.free_count(), 32);
            // Reclaim: the identity survived the free.
            let back = pc2.lookup(key(1, 0)).expect("reclaimable");
            pc2.with_data(back, |d| assert_eq!(&d[..4], b"data"));
            assert_eq!(pc2.free_count(), 31);
            pc2.assert_consistent();
        });
        assert_eq!(pc.stats().reclaims, 1);
    }

    #[test]
    fn mark_dirty_reclaims_from_free_list() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            let id = pc2.create(key(1, 0)).await;
            pc2.write_at(id, 0, b"v1");
            pc2.unbusy(id);
            // A cleaner wrote the page out and freed it...
            pc2.free_page(id);
            assert_eq!(pc2.free_count(), 32);
            // ...then a writer who still held the PageId re-dirties it.
            // The page must come back off the free list, or a later
            // allocation would pop it dirty and discard the update.
            pc2.mark_dirty(id);
            assert_eq!(pc2.free_count(), 31);
            assert_eq!(pc2.dirty_offsets(1), vec![0]);
            // Churn through every free page: none may come up dirty.
            for i in 0..31u64 {
                let n = pc2.create(key(2, i * 8192)).await;
                pc2.unbusy(n);
            }
            assert!(pc2.is_current(id), "dirty page must not be recycled");
            pc2.assert_consistent();
        });
        assert_eq!(pc.stats().reclaims, 1);
    }

    #[test]
    fn reuse_destroys_old_identity() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            // Fill all 32 pages for vnode 1, freeing each.
            let mut ids = Vec::new();
            for i in 0..32u64 {
                let id = pc2.create(key(1, i * 8192)).await;
                pc2.unbusy(id);
                ids.push(id);
            }
            for id in ids {
                pc2.free_page(id);
            }
            // Allocate one page for vnode 2: reuses the oldest free page,
            // which was vnode 1 offset 0.
            let id2 = pc2.create(key(2, 0)).await;
            pc2.unbusy(id2);
            assert!(
                pc2.lookup(key(1, 0)).is_none(),
                "reused page lost its old identity"
            );
            assert!(pc2.lookup(key(1, 8192)).is_some(), "others reclaimable");
            pc2.assert_consistent();
        });
        assert!(pc.stats().destroys >= 1);
    }

    #[test]
    fn stale_page_id_panics() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        let stale = sim.run_until(async move {
            let mut last = None;
            for i in 0..33u64 {
                // One more than capacity: forces reuse.
                if let Some(id) = last.take() {
                    pc2.unbusy(id);
                    pc2.free_page(id);
                }
                last = Some(pc2.create(key(1, i * 8192)).await);
            }
            pc2.lookup(key(1, 0)) // Offset 0 was reused by offset 32*8192.
        });
        assert!(stale.is_none(), "identity gone after reuse");
    }

    #[test]
    fn alloc_stalls_until_free() {
        let sim = Sim::new();
        let pc = cache(&sim);
        // Fill memory with busy pages (cannot be stolen).
        let pc2 = pc.clone();
        let s = sim.clone();
        sim.run_until(async move {
            let mut ids = Vec::new();
            for i in 0..32u64 {
                ids.push(pc2.create(key(1, i * 8192)).await);
            }
            // A second task frees one page at t = 3 ms.
            let pc3 = pc2.clone();
            let s2 = s.clone();
            let first = ids[0];
            s.spawn(async move {
                s2.sleep(SimDuration::from_millis(3)).await;
                pc3.unbusy(first);
                pc3.free_page(first);
            });
            // This create must wait for that free.
            let id = pc2.create(key(2, 0)).await;
            assert_eq!(s.now().as_nanos(), 3_000_000);
            pc2.unbusy(id);
        });
        let st = pc.stats();
        assert_eq!(st.alloc_stalls, 1);
        assert_eq!(st.alloc_stall_time, SimDuration::from_millis(3));
    }

    #[test]
    fn lock_busy_waits_for_io() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        let s = sim.clone();
        sim.run_until(async move {
            let id = pc2.create(key(1, 0)).await; // Busy (being filled).
            let pc3 = pc2.clone();
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(SimDuration::from_millis(2)).await;
                pc3.unbusy(id); // "I/O complete."
            });
            pc2.lock_busy(id).await;
            assert_eq!(s.now().as_nanos(), 2_000_000);
            assert!(pc2.is_busy(id));
            pc2.unbusy(id);
        });
    }

    #[test]
    fn dirty_offsets_sorted() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            for off in [3u64, 0, 2] {
                let id = pc2.create(key(9, off * 8192)).await;
                pc2.mark_dirty(id);
                pc2.unbusy(id);
            }
            let id = pc2.create(key(9, 4 * 8192)).await;
            pc2.unbusy(id); // Clean.
            assert_eq!(pc2.dirty_offsets(9), vec![0, 2 * 8192, 3 * 8192]);
        });
    }

    #[test]
    fn invalidate_vnode_truncates() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            for off in 0..4u64 {
                let id = pc2.create(key(5, off * 8192)).await;
                pc2.mark_dirty(id);
                pc2.unbusy(id);
            }
            pc2.invalidate_vnode(5, 2 * 8192);
            assert!(pc2.lookup(key(5, 0)).is_some());
            assert!(pc2.lookup(key(5, 8192)).is_some());
            assert!(pc2.lookup(key(5, 2 * 8192)).is_none());
            assert!(pc2.lookup(key(5, 3 * 8192)).is_none());
            pc2.assert_consistent();
        });
    }

    #[test]
    #[should_panic(expected = "freeing a dirty page")]
    fn freeing_dirty_page_panics() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            let id = pc2.create(key(1, 0)).await;
            pc2.mark_dirty(id);
            pc2.unbusy(id);
            pc2.free_page(id);
        });
    }

    #[test]
    fn resident_of_counts_per_vnode() {
        let sim = Sim::new();
        let pc = cache(&sim);
        let pc2 = pc.clone();
        sim.run_until(async move {
            for off in 0..3u64 {
                let id = pc2.create(key(1, off * 8192)).await;
                pc2.unbusy(id);
            }
            let id = pc2.create(key(2, 0)).await;
            pc2.unbusy(id);
            assert_eq!(pc2.resident_of(1), 3);
            assert_eq!(pc2.resident_of(2), 1);
            assert_eq!(pc2.resident_count(), 4);
        });
    }
}
