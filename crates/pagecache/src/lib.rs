//! # pagecache — the SunOS-style unified VM page cache
//!
//! "There is no longer a distinction between process pages and I/O pages"
//! — all of memory is one cache of pages named by `<vnode, offset>`. This
//! crate models the parts of the SunOS 4.x VM system the paper interacts
//! with:
//!
//! - the **name cache**: lookup/create of pages by vnode and byte offset,
//!   with reclaim of pages still on the free list;
//! - **page flags**: busy (I/O in flight), dirty (modified), referenced
//!   (simulated hardware reference bit);
//! - the **pageout daemon**: the basic two-handed clock — the front hand
//!   clears reference bits, the back hand frees still-unreferenced pages,
//!   handing dirty victims to a per-filesystem *cleaner* queue (whose
//!   `putpage` may itself cluster, which is how the paper's write
//!   clustering also smooths pageout I/O);
//! - **memory-pressure accounting**: `lotsfree` low-water wakeups, and
//!   allocation stalls when the free list runs dry.
//!
//! The paper's free-behind fix lives in the file system (`rdwr`), not here;
//! this crate just provides the page-freeing entry it calls.

pub mod cache;
pub mod pageout;

pub use cache::{PageCache, PageCacheParams, PageCacheStats, PageId, PageKey, VnodeId};
pub use pageout::{CleanRequest, PageoutDaemon, PageoutParams, PageoutStats};
