//! The pageout daemon: the basic two-handed clock.
//!
//! "The first hand of the clock clears reference bits and the second hand
//! frees the page if the reference bit is still clear. The hands move, in
//! unison, only when the amount of free memory drops below a low water
//! mark." Dirty victims cannot simply be freed; they are handed to a
//! per-filesystem *cleaner* queue whose consumer calls `putpage` (which, in
//! the clustered file system, clusters even pageout writes).
//!
//! The daemon charges CPU time per page scanned — the overhead the paper's
//! free-behind fix avoids: "the pageout daemon no longer wakes up to free
//! pages when the system is heavily I/O bound, since the I/O bound
//! processes are doing it themselves."

use simkit::stats::Counter;
use simkit::{channel, Cpu, Receiver, Sender, Sim, SimDuration};

use crate::cache::{PageCache, PageKey};

/// A dirty victim chosen by the back hand; the filesystem cleaner should
/// write it out and free it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CleanRequest {
    /// Name of the dirty page.
    pub key: PageKey,
}

/// Two-handed clock parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageoutParams {
    /// Distance between the front (ref-clearing) and back (freeing) hands,
    /// in pages.
    pub handspread: usize,
    /// Pages examined per daemon scheduling quantum.
    pub scan_chunk: usize,
    /// CPU time charged per page examined.
    pub scan_cost: SimDuration,
    /// Pause between scan chunks while pressure persists (models the
    /// daemon's scheduling latency).
    pub pause: SimDuration,
}

impl PageoutParams {
    /// Defaults scaled for the small test cache.
    pub fn small_test() -> PageoutParams {
        PageoutParams {
            handspread: 8,
            scan_chunk: 16,
            scan_cost: SimDuration::from_micros(20),
            pause: SimDuration::from_millis(1),
        }
    }

    /// Defaults for the 8 MB measurement machine.
    pub fn sparcstation() -> PageoutParams {
        PageoutParams {
            handspread: 256,
            scan_chunk: 64,
            scan_cost: SimDuration::from_micros(5),
            pause: SimDuration::from_millis(4),
        }
    }
}

/// Counters for daemon activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageoutStats {
    /// Pages examined by either hand.
    pub scanned: u64,
    /// Pages freed by the back hand.
    pub freed: u64,
    /// Dirty victims pushed to the cleaner.
    pub cleans_requested: u64,
    /// Times the daemon woke from the pressure signal.
    pub wakeups: u64,
}

/// Handle to a running pageout daemon.
pub struct PageoutDaemon {
    stats: std::rc::Rc<std::cell::RefCell<PageoutStats>>,
}

impl PageoutDaemon {
    /// Spawns the daemon on `sim`, scanning `cache` and emitting dirty
    /// victims on the returned channel. `cpu` (if given) is charged for
    /// scanning work.
    pub fn spawn(
        sim: &Sim,
        cache: &PageCache,
        cpu: Option<Cpu>,
        params: PageoutParams,
    ) -> (PageoutDaemon, Receiver<CleanRequest>) {
        let (tx, rx) = channel();
        let stats = std::rc::Rc::new(std::cell::RefCell::new(PageoutStats::default()));
        let daemon = PageoutDaemon {
            stats: std::rc::Rc::clone(&stats),
        };
        let metrics = PageoutMetrics::new(sim);
        let sim2 = sim.clone();
        let cache = cache.clone();
        sim.spawn(async move {
            run_daemon(sim2, cache, cpu, params, tx, stats, metrics).await;
        });
        (daemon, rx)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PageoutStats {
        *self.stats.borrow()
    }
}

/// Registry handles mirroring [`PageoutStats`] into `sim.stats()` under
/// the `pageout.*` namespace. `pageout.freed` is the daemon's half of
/// the free-behind comparison (`ufs.free_behind_pages` is the other).
struct PageoutMetrics {
    scanned: Counter,
    freed: Counter,
    cleans_requested: Counter,
    wakeups: Counter,
}

impl PageoutMetrics {
    fn new(sim: &Sim) -> PageoutMetrics {
        let s = sim.stats();
        PageoutMetrics {
            scanned: s.counter("pageout.scanned"),
            freed: s.counter("pageout.freed"),
            cleans_requested: s.counter("pageout.cleans_requested"),
            wakeups: s.counter("pageout.wakeups"),
        }
    }
}

async fn run_daemon(
    sim: Sim,
    cache: PageCache,
    cpu: Option<Cpu>,
    params: PageoutParams,
    tx: Sender<CleanRequest>,
    stats: std::rc::Rc<std::cell::RefCell<PageoutStats>>,
    metrics: PageoutMetrics,
) {
    let npages = cache.total_pages();
    let handspread = params.handspread.min(npages.saturating_sub(1)).max(1);
    let mut front = handspread; // Front hand leads by handspread.
    let mut back = 0usize;
    loop {
        if cache.free_count() >= cache.lotsfree() {
            // Quiescent: sleep until an allocation signals pressure.
            cache.pressure_notify().wait().await;
            stats.borrow_mut().wakeups += 1;
            metrics.wakeups.inc();
            continue;
        }
        // Scan one chunk.
        for _ in 0..params.scan_chunk {
            if cache.free_count() >= cache.lotsfree() {
                break;
            }
            // Front hand: clear the reference bit.
            cache.clear_referenced_at(front);
            // Back hand: free if still unreferenced; queue dirty victims.
            let (key, busy, dirty, referenced, on_free) = cache.scan_snapshot(back);
            if let Some(key) = key {
                if !busy && !referenced && !on_free {
                    if dirty {
                        stats.borrow_mut().cleans_requested += 1;
                        metrics.cleans_requested.inc();
                        // Receiver gone means no cleaner is registered;
                        // the victim stays dirty and will be revisited.
                        let _ = tx.send(CleanRequest { key });
                    } else {
                        let freed = cache.try_free_at(back);
                        if freed {
                            stats.borrow_mut().freed += 1;
                            metrics.freed.inc();
                        }
                    }
                }
            }
            stats.borrow_mut().scanned += 2;
            metrics.scanned.add(2);
            front = (front + 1) % npages;
            back = (back + 1) % npages;
        }
        // Charge the scanning CPU cost (the overhead free-behind avoids).
        let cost = params.scan_cost * (params.scan_chunk as u64);
        match &cpu {
            Some(cpu) => cpu.charge("pageout", cost).await,
            None => sim.sleep(cost).await,
        }
        sim.sleep(params.pause).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{PageCacheParams, PageKey};
    use simkit::SimTime;

    fn key(v: u64, off: u64) -> PageKey {
        PageKey {
            vnode: v,
            offset: off,
        }
    }

    /// Fills the cache with clean, unbusy pages and lets the daemon free
    /// some.
    #[test]
    fn daemon_frees_unreferenced_clean_pages() {
        let sim = Sim::new();
        let pc = PageCache::new(&sim, PageCacheParams::small_test());
        let (daemon, _rx) = PageoutDaemon::spawn(&sim, &pc, None, PageoutParams::small_test());
        let pc2 = pc.clone();
        let s = sim.clone();
        sim.run_until(async move {
            for i in 0..32u64 {
                let id = pc2.create(key(1, i * 8192)).await;
                pc2.unbusy(id);
            }
            assert_eq!(pc2.free_count(), 0);
            // Give the daemon time: each page needs the front hand to clear
            // its ref bit, then the back hand (handspread behind) to free it.
            s.sleep(simkit::SimDuration::from_millis(100)).await;
            assert!(
                pc2.free_count() >= pc2.lotsfree(),
                "daemon restored free memory: {} free",
                pc2.free_count()
            );
            pc2.assert_consistent();
        });
        let st = daemon.stats();
        assert!(st.freed > 0);
        assert!(st.scanned > 0);
    }

    #[test]
    fn daemon_requests_cleaning_for_dirty_pages() {
        let sim = Sim::new();
        let pc = PageCache::new(&sim, PageCacheParams::small_test());
        let (daemon, mut rx) = PageoutDaemon::spawn(&sim, &pc, None, PageoutParams::small_test());
        let pc2 = pc.clone();
        let s = sim.clone();
        let cleaned = sim.run_until(async move {
            for i in 0..32u64 {
                let id = pc2.create(key(1, i * 8192)).await;
                pc2.mark_dirty(id);
                pc2.unbusy(id);
            }
            s.sleep(simkit::SimDuration::from_millis(50)).await;
            // Drain the cleaner queue, simulating a filesystem cleaner.
            let mut cleaned = Vec::new();
            while let Some(req) = rx.try_recv() {
                cleaned.push(req.key);
            }
            cleaned
        });
        assert!(!cleaned.is_empty(), "dirty victims routed to the cleaner");
        assert!(daemon.stats().cleans_requested as usize >= cleaned.len());
    }

    #[test]
    fn recently_referenced_pages_survive_one_pass() {
        let sim = Sim::new();
        let pc = PageCache::new(&sim, PageCacheParams::small_test());
        let (_daemon, _rx) = PageoutDaemon::spawn(&sim, &pc, None, PageoutParams::small_test());
        let pc2 = pc.clone();
        let s = sim.clone();
        sim.run_until(async move {
            let mut ids = Vec::new();
            for i in 0..32u64 {
                let id = pc2.create(key(1, i * 8192)).await;
                pc2.unbusy(id);
                ids.push(id);
            }
            // A "working set" task keeps touching pages 0..4 faster than
            // the hands come around.
            let pc3 = pc2.clone();
            let s2 = s.clone();
            let toucher = s.spawn(async move {
                for _ in 0..100 {
                    for i in 0..4u64 {
                        if let Some(id) = pc3.lookup(key(1, i * 8192)) {
                            pc3.set_referenced(id);
                        }
                    }
                    s2.sleep(simkit::SimDuration::from_micros(300)).await;
                }
            });
            toucher.await;
            // The working set should still be resident.
            for i in 0..4u64 {
                assert!(
                    pc2.lookup(key(1, i * 8192)).is_some(),
                    "hot page {i} evicted and reused"
                );
            }
        });
    }

    #[test]
    fn daemon_idle_when_memory_plentiful() {
        let sim = Sim::new();
        let pc = PageCache::new(&sim, PageCacheParams::small_test());
        let (daemon, _rx) = PageoutDaemon::spawn(&sim, &pc, None, PageoutParams::small_test());
        let pc2 = pc.clone();
        let s = sim.clone();
        sim.run_until(async move {
            // Use only 4 of 32 pages: free stays far above lotsfree.
            for i in 0..4u64 {
                let id = pc2.create(key(1, i * 8192)).await;
                pc2.unbusy(id);
            }
            s.sleep(simkit::SimDuration::from_millis(50)).await;
        });
        assert_eq!(daemon.stats().scanned, 0, "no pressure, no scanning");
        assert_eq!(
            sim.now(),
            SimTime::ZERO + simkit::SimDuration::from_millis(50)
        );
    }
}
