//! End-to-end tests of the file system over the simulated disk.

use clufs::Tuning;
use diskmodel::BlockDeviceExt;
use simkit::Sim;
use ufs::{build_test_world, fsck, FileKind};
use vfs::{AccessMode, FileSystem, FsError, Vnode};

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn mkfs_then_fsck_is_clean() {
    let sim = Sim::new();
    let s = sim.clone();
    let report = sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        w.fs.clone().unmount().await.unwrap();
        fsck(&*w.disk).await.unwrap()
    });
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert!(report.was_clean);
    assert_eq!(report.dirs, 1, "just the root");
    assert_eq!(report.files, 0);
}

#[test]
fn write_read_roundtrip_small() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("hello.txt").await.unwrap();
        let data = pattern(1000, 7);
        f.write(0, &data, AccessMode::Copy).await.unwrap();
        assert_eq!(f.size(), 1000);
        let back = f.read(0, 1000, AccessMode::Copy).await.unwrap();
        assert_eq!(back, data);
        // Partial read.
        let mid = f.read(100, 50, AccessMode::Copy).await.unwrap();
        assert_eq!(mid, data[100..150]);
        // Read past EOF is short.
        let tail = f.read(900, 500, AccessMode::Copy).await.unwrap();
        assert_eq!(tail, data[900..1000]);
        let empty = f.read(5000, 10, AccessMode::Copy).await.unwrap();
        assert!(empty.is_empty());
    });
}

#[test]
fn multi_megabyte_file_through_indirect_blocks() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("big").await.unwrap();
        // 2 MB > 12 direct blocks (96 KB): exercises the indirect block.
        let chunk = pattern(64 * 1024, 3);
        for i in 0..32u64 {
            f.write(i * chunk.len() as u64, &chunk, AccessMode::Copy)
                .await
                .unwrap();
        }
        assert_eq!(f.size(), 2 * 1024 * 1024);
        // Spot-check several regions, including across the direct/indirect
        // boundary at 96 KB.
        for off in [
            0u64,
            95 * 1024,
            97 * 1024,
            1024 * 1024,
            2 * 1024 * 1024 - 4096,
        ] {
            let got = f.read(off, 4096, AccessMode::Copy).await.unwrap();
            let expect: Vec<u8> = (0..4096)
                .map(|i| {
                    let abs = off as usize + i;
                    ((abs % chunk.len()) as u8).wrapping_mul(31).wrapping_add(3)
                })
                .collect();
            assert_eq!(got, expect, "mismatch at {off}");
        }
        w.fs.clone().unmount().await.unwrap();
        let report = fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 1);
    });
}

#[test]
fn survives_remount() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("persist").await.unwrap();
        let data = pattern(100_000, 9);
        f.write(0, &data, AccessMode::Copy).await.unwrap();
        w.fs.clone().unmount().await.unwrap();

        // Remount on the same disk with a fresh cache.
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let cpu = simkit::Cpu::new(&s);
        let fs2 = ufs::Ufs::mount(
            &s,
            &cpu,
            &cache,
            &w.disk,
            ufs::UfsParams::test(Tuning::config_a()),
            None,
        )
        .await
        .unwrap();
        let f2 = fs2.open("persist").await.unwrap();
        assert_eq!(f2.size(), 100_000);
        let back = f2.read(0, 100_000, AccessMode::Copy).await.unwrap();
        assert_eq!(back, data);
    });
}

#[test]
fn contiguous_allocation_with_rotdelay_zero() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("contig").await.unwrap();
        let data = vec![5u8; 40 * 8192]; // 40 blocks.
        f.write(0, &data, AccessMode::Copy).await.unwrap();
        let extents = f.extents().await.unwrap();
        // Real FFS behavior: one long run, interrupted only by the single
        // indirect block allocated in-stream at the direct-pointer boundary
        // (lbn 12), so two extents with a one-block gap.
        assert_eq!(
            extents.len(),
            2,
            "empty fs + rotdelay 0 → two extents around the indirect block, got {extents:?}"
        );
        assert_eq!(extents[0].2 + extents[1].2, 40);
        assert_eq!(
            extents[1].1 - (extents[0].1 + extents[0].2 as u64),
            1,
            "exactly the indirect block between the runs: {extents:?}"
        );
    });
}

#[test]
fn interleaved_allocation_with_rotdelay() {
    // Figure 4: with a 4 ms rotdelay every block is followed by a gap
    // block "used by a different file".
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_b()).await.unwrap();
        let f = w.fs.create("gappy").await.unwrap();
        f.write(0, &vec![1u8; 8 * 8192], AccessMode::Copy)
            .await
            .unwrap();
        let extents = f.extents().await.unwrap();
        assert_eq!(extents.len(), 8, "every block is its own extent");
        // Gaps are one block (4 ms rotdelay ≈ one 8 KB block time).
        for pair in extents.windows(2) {
            assert_eq!(
                pair[1].1 - pair[0].1,
                2,
                "blocks separated by exactly one gap block: {extents:?}"
            );
        }
    });
}

#[test]
fn truncate_frees_blocks_and_fsck_agrees() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let free0 = w.fs.free_blocks();
        let f = w.fs.create("trunc").await.unwrap();
        f.write(0, &pattern(200_000, 1), AccessMode::Copy)
            .await
            .unwrap();
        f.fsync().await.unwrap();
        assert!(w.fs.free_blocks() < free0);
        f.truncate(10_000).await.unwrap();
        assert_eq!(f.size(), 10_000);
        let back = f.read(0, 20_000, AccessMode::Copy).await.unwrap();
        assert_eq!(back.len(), 10_000);
        assert_eq!(back, pattern(200_000, 1)[..10_000]);
        w.fs.clone().unmount().await.unwrap();
        let report = fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
    });
}

#[test]
fn remove_returns_all_space() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let free0 = w.fs.free_blocks();
        let f = w.fs.create("victim").await.unwrap();
        f.write(0, &pattern(500_000, 2), AccessMode::Copy)
            .await
            .unwrap();
        f.fsync().await.unwrap();
        drop(f);
        w.fs.remove("victim").await.unwrap();
        assert_eq!(w.fs.free_blocks(), free0, "all blocks returned");
        assert_eq!(w.fs.open("victim").await.err(), Some(FsError::NotFound));
        w.fs.clone().unmount().await.unwrap();
        let report = fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 0);
    });
}

#[test]
fn holes_read_as_zeros() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("holey").await.unwrap();
        // Write at 0 and at 64 KB, leaving a hole between.
        f.write(0, &pattern(4096, 4), AccessMode::Copy)
            .await
            .unwrap();
        f.write(64 * 1024, &pattern(4096, 5), AccessMode::Copy)
            .await
            .unwrap();
        let hole = f.read(16 * 1024, 8192, AccessMode::Copy).await.unwrap();
        assert!(hole.iter().all(|&b| b == 0), "hole reads zeros");
        let tail = f.read(64 * 1024, 4096, AccessMode::Copy).await.unwrap();
        assert_eq!(tail, pattern(4096, 5));
        // A hole consumes no blocks.
        let extents = f.extents().await.unwrap();
        let allocated: u32 = extents.iter().map(|e| e.2).sum();
        assert_eq!(allocated, 2, "only the two written blocks: {extents:?}");
        w.fs.clone().unmount().await.unwrap();
        let report = fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
    });
}

#[test]
fn figure6_cluster_read_io_pattern() {
    // The end-to-end version of Figure 6: sequential reads of a contiguous
    // file with maxcontig=3 issue cluster-sized disk reads, one sync + one
    // async up front, then one async per cluster boundary.
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let mut tuning = Tuning::config_a();
        tuning.maxcontig = 3;
        let w = build_test_world(&s, tuning).await.unwrap();
        let f = w.fs.create("seq").await.unwrap();
        f.write(0, &pattern(12 * 8192, 6), AccessMode::Copy)
            .await
            .unwrap();
        f.fsync().await.unwrap();
        // Drop cached pages so reads hit the disk: invalidate via a fresh
        // file handle on a new mount would be heavyweight; instead read
        // through after clearing the cache by truncating... simplest is to
        // re-open the same file in a second world sharing the disk. Here we
        // just invalidate the pages directly.
        w.cache.invalidate_vnode(f.id(), 0);
        w.fs.reset_stats();
        w.disk.reset_stats();
        let back = f.read(0, 12 * 8192, AccessMode::Copy).await.unwrap();
        assert_eq!(back.len(), 12 * 8192);
        let st = w.fs.stats();
        assert_eq!(st.sync_reads, 1, "one synchronous cluster read");
        assert_eq!(st.readaheads, 3, "clusters 2..4 prefetched: {st:?}");
        assert_eq!(st.blocks_read, 12);
        let disk = w.disk.stats();
        assert_eq!(disk.reads, 4, "12 blocks in 4 cluster I/Os");
    });
}

#[test]
fn old_path_issues_one_io_per_block() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_b()).await.unwrap();
        let f = w.fs.create("seq").await.unwrap();
        f.write(0, &pattern(8 * 8192, 6), AccessMode::Copy)
            .await
            .unwrap();
        f.fsync().await.unwrap();
        w.cache.invalidate_vnode(f.id(), 0);
        w.fs.reset_stats();
        w.disk.reset_stats();
        f.read(0, 8 * 8192, AccessMode::Copy).await.unwrap();
        let st = w.fs.stats();
        assert_eq!(st.blocks_read, 8);
        let disk = w.disk.stats();
        assert_eq!(disk.reads, 8, "block-at-a-time: 8 I/Os for 8 blocks");
    });
}

#[test]
fn clustered_writes_batch_into_cluster_ios() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let mut tuning = Tuning::config_a();
        tuning.maxcontig = 4;
        let w = build_test_world(&s, tuning).await.unwrap();
        let f = w.fs.create("wseq").await.unwrap();
        w.fs.reset_stats();
        for i in 0..8u64 {
            f.write(i * 8192, &pattern(8192, i as u8), AccessMode::Copy)
                .await
                .unwrap();
        }
        f.fsync().await.unwrap();
        let st = w.fs.stats();
        assert_eq!(st.blocks_written, 8);
        assert_eq!(
            st.cluster_writes, 2,
            "8 sequential blocks at maxcontig=4 → 2 cluster writes"
        );
        // Data integrity.
        let back = f.read(3 * 8192, 8192, AccessMode::Copy).await.unwrap();
        assert_eq!(back, pattern(8192, 3));
    });
}

#[test]
fn old_path_writes_every_block_individually() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_d()).await.unwrap();
        let f = w.fs.create("wold").await.unwrap();
        w.fs.reset_stats();
        for i in 0..6u64 {
            f.write(i * 8192, &pattern(8192, i as u8), AccessMode::Copy)
                .await
                .unwrap();
        }
        f.fsync().await.unwrap();
        let st = w.fs.stats();
        assert_eq!(st.cluster_writes, 6, "one write I/O per block");
    });
}

#[test]
fn crash_without_sync_is_detected_by_fsck() {
    let sim = Sim::new();
    let s = sim.clone();
    let report = sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("crashy").await.unwrap();
        f.write(0, &pattern(100_000, 8), AccessMode::Copy)
            .await
            .unwrap();
        f.fsync().await.unwrap();
        // Crash: no sync_all, no unmount — the in-core bitmaps and the
        // clean flag never reach the disk.
        fsck(&*w.disk).await.unwrap()
    });
    assert!(!report.was_clean, "crash leaves the dirty flag");
    assert!(
        !report.is_clean(),
        "fsck must notice the unflushed allocation state"
    );
    // The specific signature: blocks claimed by the (synced) inode but
    // still free in the (never-synced) bitmap.
    assert!(
        report.errors.iter().any(|e| e.contains("free in bitmap")),
        "expected claimed-but-free errors, got {:?}",
        report.errors
    );
}

#[test]
fn many_files_and_directories() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        w.fs.mkdir("a").await.unwrap();
        w.fs.mkdir("a/b").await.unwrap();
        for i in 0..40 {
            let f = w.fs.create(&format!("a/b/file{i}")).await.unwrap();
            f.write(0, &pattern(3000 + i * 7, i as u8), AccessMode::Copy)
                .await
                .unwrap();
        }
        for i in (0..40).step_by(2) {
            w.fs.remove(&format!("a/b/file{i}")).await.unwrap();
        }
        for i in (1..40).step_by(2) {
            let f = w.fs.open(&format!("a/b/file{i}")).await.unwrap();
            assert_eq!(f.size(), 3000 + i * 7);
            let back = f
                .read(0, f.size() as usize, AccessMode::Copy)
                .await
                .unwrap();
            assert_eq!(back, pattern(3000 + i as usize * 7, i as u8));
        }
        w.fs.clone().unmount().await.unwrap();
        let report = fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.files, 20);
        assert_eq!(report.dirs, 3);
    });
}

#[test]
fn create_on_existing_truncates() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("file").await.unwrap();
        f.write(0, &pattern(50_000, 1), AccessMode::Copy)
            .await
            .unwrap();
        drop(f);
        let f2 = w.fs.create("file").await.unwrap();
        assert_eq!(f2.size(), 0);
    });
}

#[test]
fn out_of_space_respects_minfree() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("hog").await.unwrap();
        let capacity = w.fs.capacity_blocks();
        let chunk = vec![9u8; 32 * 8192];
        let mut written = 0u64;
        let mut err = None;
        for i in 0..capacity {
            match f
                .write(i * chunk.len() as u64, &chunk, AccessMode::Copy)
                .await
            {
                Ok(()) => written += 32,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(FsError::NoSpace));
        // The minfree reserve (10%) was honored, give or take a cluster.
        let used_fraction = written as f64 / capacity as f64;
        assert!(
            (0.80..=0.92).contains(&used_fraction),
            "filled {used_fraction:.2} of capacity"
        );
    });
}

#[test]
fn inline_small_files_use_no_blocks() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let mut w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        // Rebuild with inline_small on (build_test_world defaults off).
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.inline_small = true;
        params.mount_id = 2;
        let fs = ufs::Ufs::mount(&s, &w.cpu, &w.cache, &w.disk, params, None)
            .await
            .unwrap();
        w.fs = fs;
        let free0 = w.fs.free_blocks();
        let f = w.fs.create("tiny").await.unwrap();
        f.write(0, b"hello inline world", AccessMode::Copy)
            .await
            .unwrap();
        assert_eq!(f.size(), 18);
        assert_eq!(w.fs.free_blocks(), free0, "inline file allocates nothing");
        let back = f.read(0, 100, AccessMode::Copy).await.unwrap();
        assert_eq!(back, b"hello inline world");
        // Growing past the inline limit demotes to block storage.
        let big = pattern(3000, 3);
        f.write(0, &big, AccessMode::Copy).await.unwrap();
        let back = f.read(0, 3000, AccessMode::Copy).await.unwrap();
        assert_eq!(back, big);
        assert!(w.fs.free_blocks() < free0);
    });
}

#[test]
fn fsck_detects_deliberate_corruption() {
    let sim = Sim::new();
    let s = sim.clone();
    let report = sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("x").await.unwrap();
        f.write(0, &pattern(100_000, 3), AccessMode::Copy)
            .await
            .unwrap();
        w.fs.clone().unmount().await.unwrap();
        // Corrupt: point the root's first direct block into another file's
        // data... simpler: flip an allocation bit by rewriting a cg header
        // with one extra bit set.
        let sb_raw = w.disk.read(ufs::layout::SB_BLOCK * 16, 16).await;
        let sb = ufs::Superblock::decode(&sb_raw).unwrap();
        let cg_raw = w.disk.read(sb.cg_start(0) * 16, 16).await;
        let mut cg = ufs::layout::CgHeader::decode(&cg_raw).unwrap();
        // Find a free slot near the end of the group and mark it allocated
        // without any inode claiming it.
        let victim = (0..sb.data_blocks_per_cg())
            .rev()
            .find(|&i| !cg.block_allocated(i))
            .unwrap();
        cg.set_block(victim);
        w.disk.write(sb.cg_start(0) * 16, 16, cg.encode()).await;
        fsck(&*w.disk).await.unwrap()
    });
    assert!(
        report
            .errors
            .iter()
            .any(|e| e.contains("allocated in bitmap but unclaimed")),
        "got {:?}",
        report.errors
    );
}

#[test]
fn symlinks_fast_and_slow() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let f = w.fs.create("real.txt").await.unwrap();
        f.write(0, b"payload", AccessMode::Copy).await.unwrap();

        // Fast symlink: short target stays inline in the dinode.
        let free0 = w.fs.free_blocks();
        w.fs.symlink("quick", "real.txt").await.unwrap();
        assert_eq!(w.fs.free_blocks(), free0, "fast symlink uses no blocks");
        assert_eq!(w.fs.readlink("quick").await.unwrap(), "real.txt");
        let via = w.fs.open_following("quick").await.unwrap();
        let back = via.read(0, 7, AccessMode::Copy).await.unwrap();
        assert_eq!(back, b"payload");

        // Slow symlink: a long target needs a data block.
        let long_target = format!("{}/real.txt", "d".repeat(80));
        w.fs.mkdir(&"d".repeat(80)).await.unwrap();
        let f2 = w.fs.create(&long_target).await.unwrap();
        f2.write(0, b"deep", AccessMode::Copy).await.unwrap();
        w.fs.symlink("slow", &long_target).await.unwrap();
        assert!(w.fs.free_blocks() < free0, "slow symlink allocates");
        assert_eq!(w.fs.readlink("slow").await.unwrap(), long_target);
        let via2 = w.fs.open_following("slow").await.unwrap();
        assert_eq!(via2.read(0, 4, AccessMode::Copy).await.unwrap(), b"deep");

        // Symlinks survive remount and fsck.
        w.fs.clone().unmount().await.unwrap();
        let report = fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        let cpu = simkit::Cpu::new(&s);
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.mount_id = 4;
        let fs2 = ufs::Ufs::mount(&s, &cpu, &cache, &w.disk, params, None)
            .await
            .unwrap();
        assert_eq!(fs2.readlink("quick").await.unwrap(), "real.txt");
    });
}

#[test]
fn kind_is_exposed() {
    // Smoke test for the FileKind re-export.
    assert_ne!(FileKind::Regular, FileKind::Directory);
}
