//! Allocator-focused tests: placement policy, accounting invariants, and
//! behavior at the edges the paper's contiguity study depends on.

use clufs::Tuning;
use proptest::prelude::*;
use simkit::Sim;
use ufs::build_test_world;
use vfs::{AccessMode, FileSystem, Vnode};

#[test]
fn two_growing_files_interleave_without_overlap() {
    // Two files extended alternately: the allocator keeps each reasonably
    // contiguous and never double-allocates.
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
        let a = w.fs.create("a").await.unwrap();
        let b = w.fs.create("b").await.unwrap();
        let chunk = vec![1u8; 3 * 8192];
        for i in 0..10u64 {
            a.write(i * chunk.len() as u64, &chunk, AccessMode::Copy)
                .await
                .unwrap();
            b.write(i * chunk.len() as u64, &chunk, AccessMode::Copy)
                .await
                .unwrap();
        }
        a.fsync().await.unwrap();
        b.fsync().await.unwrap();
        let ea = a.extents().await.unwrap();
        let eb = b.extents().await.unwrap();
        // No physical overlap between the two files.
        let mut blocks = std::collections::HashSet::new();
        for (_l, p, n) in ea.iter().chain(eb.iter()) {
            for i in 0..*n as u64 {
                assert!(blocks.insert(p + i), "block {p}+{i} allocated twice");
            }
        }
        // Interleaved growth costs contiguity, but each file should still
        // average multi-block extents (the allocator "thinks ahead").
        let mean =
            |e: &Vec<(u64, u64, u32)>| e.iter().map(|x| x.2 as f64).sum::<f64>() / e.len() as f64;
        assert!(mean(&ea) >= 2.0, "file a fragmented: {ea:?}");
        assert!(mean(&eb) >= 2.0, "file b fragmented: {eb:?}");
        w.fs.clone().unmount().await.unwrap();
        let report = ufs::fsck(&*w.disk).await.unwrap();
        assert!(report.is_clean(), "{:?}", report.errors);
    });
}

#[test]
fn maxbpg_moves_large_files_to_new_groups() {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        // Small maxbpg so the switch is visible on the small disk.
        let mut params = ufs::UfsParams::test(Tuning::config_a());
        params.maxbpg = Some(20);
        let cpu = simkit::Cpu::new(&s);
        let disk: diskmodel::SharedDevice = std::rc::Rc::new(diskmodel::Disk::new(
            &s,
            diskmodel::DiskParams::small_test(),
        ));
        let cache = pagecache::PageCache::new(&s, pagecache::PageCacheParams::small_test());
        let (_d, rx) = pagecache::PageoutDaemon::spawn(
            &s,
            &cache,
            None,
            pagecache::PageoutParams::small_test(),
        );
        std::mem::forget(rx);
        // Several small groups so the maxbpg switch has somewhere to go
        // (the default small_test layout is a single group).
        let opts = ufs::MkfsOptions {
            blocks_per_cg: 256,
            inodes_per_cg: 64,
            ..ufs::MkfsOptions::small_test()
        };
        ufs::mkfs(&s, &*disk, opts).await.unwrap();
        let fs = ufs::Ufs::mount(&s, &cpu, &cache, &disk, params, None)
            .await
            .unwrap();
        let f = fs.create("big").await.unwrap();
        f.write(0, &vec![1u8; 60 * 8192], AccessMode::Copy)
            .await
            .unwrap();
        f.fsync().await.unwrap();
        let extents = f.extents().await.unwrap();
        // 60 blocks with maxbpg=20: at least two allocator moves, so the
        // file spans multiple long runs rather than one.
        assert!(
            extents.len() >= 3,
            "expected group switches to split the file: {extents:?}"
        );
        // Each run before a switch is about maxbpg long.
        assert!(
            extents.iter().any(|e| e.2 >= 15),
            "runs should still be long: {extents:?}"
        );
    });
}

#[test]
fn rotdelay_gap_scales_with_block_time() {
    // The small test disk spins a 32-sector track in 16.7 ms, so one 8 KB
    // block takes ~8.3 ms; a 10 ms rotdelay therefore needs TWO gap
    // blocks (the gap is rounded up to whole block slots).
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let tuning = Tuning {
            rotdelay_ms: 10,
            ..Tuning::config_b()
        };
        let w = build_test_world(&s, tuning).await.unwrap();
        let f = w.fs.create("wide").await.unwrap();
        f.write(0, &vec![1u8; 6 * 8192], AccessMode::Copy)
            .await
            .unwrap();
        let extents = f.extents().await.unwrap();
        for pair in extents.windows(2) {
            let gap = pair[1].1 - (pair[0].1 + pair[0].2 as u64);
            assert_eq!(gap, 2, "10 ms rotdelay → two-block gaps: {extents:?}");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Free-block accounting survives arbitrary create/write/remove churn,
    /// and everything the superblock believes is free really is free
    /// (checked by fsck from the raw image).
    #[test]
    fn accounting_survives_churn(
        sizes in proptest::collection::vec(1u32..400_000, 1..12),
        remove_mask in any::<u16>(),
    ) {
        let sim = Sim::new();
        let s = sim.clone();
        let sizes2 = sizes.clone();
        sim.run_until(async move {
            let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
            let free0 = w.fs.free_blocks();
            for (i, &size) in sizes2.iter().enumerate() {
                let f = w.fs.create(&format!("c{i}")).await.unwrap();
                let data = vec![i as u8; size as usize];
                if f.write(0, &data, AccessMode::Copy).await.is_err() {
                    break; // NoSpace on tiny worlds is fine.
                }
                f.fsync().await.unwrap();
            }
            let mut removed_all = true;
            for i in 0..sizes2.len() {
                if remove_mask & (1 << (i % 16)) != 0 {
                    let _ = w.fs.remove(&format!("c{i}")).await;
                } else if w.fs.open(&format!("c{i}")).await.is_ok() {
                    removed_all = false;
                }
            }
            if removed_all {
                assert_eq!(w.fs.free_blocks(), free0, "all space returned");
            }
            w.fs.clone().unmount().await.unwrap();
            let report = ufs::fsck(&*w.disk).await.unwrap();
            assert!(report.is_clean(), "fsck: {:?}", report.errors);
        });
    }
}
