//! `mkfs`: formats a disk with an empty file system.

use diskmodel::{BlockDevice, BlockDeviceExt};
use simkit::Sim;
use vfs::{FsError, FsResult};

use crate::layout::{
    CgHeader, Dinode, FileKind, Superblock, BLOCK_SIZE, CG_MAGIC, CG_START, DINODE_SIZE,
    INODES_PER_BLOCK, ROOT_INO, SB_BLOCK, SB_MAGIC, SECTORS_PER_BLOCK,
};

/// Formatting options.
#[derive(Clone, Copy, Debug)]
pub struct MkfsOptions {
    /// Blocks per cylinder group (metadata + data).
    pub blocks_per_cg: u32,
    /// Inodes per cylinder group.
    pub inodes_per_cg: u32,
    /// Reserved free space percentage ("usually 10%").
    pub minfree_pct: u8,
    /// Persisted rotdelay tuning, milliseconds.
    pub rotdelay_ms: u8,
    /// Persisted maxcontig tuning, blocks.
    pub maxcontig: u8,
}

impl MkfsOptions {
    /// Defaults for the paper's 400 MB drive: 16 MB groups.
    pub fn sun0424() -> MkfsOptions {
        MkfsOptions {
            blocks_per_cg: 2048,
            inodes_per_cg: 1024,
            minfree_pct: 10,
            rotdelay_ms: 0,
            maxcontig: 7,
        }
    }

    /// Small groups for unit tests (512 blocks = 4 MB per group).
    pub fn small_test() -> MkfsOptions {
        MkfsOptions {
            blocks_per_cg: 512,
            inodes_per_cg: 128,
            minfree_pct: 10,
            rotdelay_ms: 0,
            maxcontig: 7,
        }
    }
}

/// Formats `disk` and returns the superblock that was written.
///
/// Lays down: boot block (untouched), superblock, and per group a header
/// block, a zeroed inode table, and (for group 0) the root directory.
pub async fn mkfs(sim: &Sim, disk: &dyn BlockDevice, opts: MkfsOptions) -> FsResult<Superblock> {
    let _ = sim;
    let total_sectors = disk.total_sectors();
    let total_blocks = total_sectors / SECTORS_PER_BLOCK as u64;
    if total_blocks < CG_START + opts.blocks_per_cg as u64 {
        return Err(FsError::Invalid);
    }
    let ncg = ((total_blocks - CG_START) / opts.blocks_per_cg as u64) as u32;
    assert!(
        opts.inodes_per_cg.is_multiple_of(INODES_PER_BLOCK as u32),
        "inodes_per_cg must fill whole blocks"
    );
    let mut sb = Superblock {
        magic: SB_MAGIC,
        total_blocks,
        blocks_per_cg: opts.blocks_per_cg,
        inodes_per_cg: opts.inodes_per_cg,
        ncg,
        minfree_pct: opts.minfree_pct,
        rotdelay_ms: opts.rotdelay_ms,
        maxcontig: opts.maxcontig,
        clean: true,
        free_blocks: 0,
        free_inodes: 0,
    };
    // Sanity: the cg header must fit in one block.
    let _probe = CgHeader::empty(&sb, 0).encode();

    let mut total_free_blocks = 0u64;
    let mut total_free_inodes = 0u64;
    for cgx in 0..ncg {
        let mut cg = CgHeader::empty(&sb, cgx);
        if cgx == 0 {
            // Inodes 0 and 1 are reserved; 2 is the root directory; the
            // root's single directory block is the first data block.
            cg.set_inode(0);
            cg.set_inode(1);
            cg.set_inode(ROOT_INO);
            cg.set_block(0);
        }
        total_free_blocks += cg.free_blocks as u64;
        total_free_inodes += cg.free_inodes as u64;
        write_block(disk, sb.cg_start(cgx), cg.encode()).await;
        // Zero the inode table.
        let zero = vec![0u8; BLOCK_SIZE];
        for b in 0..sb.inode_blocks_per_cg() {
            write_block(disk, sb.cg_start(cgx) + 1 + b as u64, zero.clone()).await;
        }
    }

    // Root directory: inode + one (empty) directory block.
    let root_block = sb.cg_data_start(0);
    let mut root = Dinode::new(FileKind::Directory);
    root.nlink = 2;
    root.size = BLOCK_SIZE as u64;
    root.blocks = 1;
    root.direct[0] = root_block as u32;
    let (ipbn, idx) = sb.inode_location(ROOT_INO);
    let mut itable = vec![0u8; BLOCK_SIZE];
    itable[idx * DINODE_SIZE..(idx + 1) * DINODE_SIZE].copy_from_slice(&root.encode());
    write_block(disk, ipbn, itable).await;
    write_block(disk, root_block, vec![0u8; BLOCK_SIZE]).await;

    sb.free_blocks = total_free_blocks;
    sb.free_inodes = total_free_inodes;
    write_block(disk, SB_BLOCK, sb.encode()).await;
    debug_assert_eq!(sb.magic, SB_MAGIC);
    debug_assert_eq!(CG_MAGIC, 0x0909_1991);
    Ok(sb)
}

async fn write_block(disk: &dyn BlockDevice, pbn: u64, data: Vec<u8>) {
    disk.write(pbn * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK, data)
        .await;
}
