//! Directories and path lookup.
//!
//! Directory contents are ordinary file blocks holding packed entries:
//! `[ino: u32][namelen: u8][name bytes]`, with a zero `ino`+`namelen` pair
//! marking the end of a block's used region. Entries never cross block
//! boundaries. Directory updates are written **synchronously**, the classic
//! UFS behavior the paper's `B_ORDER` proposal wants to relax: "commands
//! like `rm *` would improve substantially".

use std::rc::Rc;

use vfs::{FsError, FsResult};

use crate::fs::{Incore, Ufs};
use crate::layout::{FileKind, BLOCK_SIZE, NAME_MAX, ROOT_INO};

const ENTRY_FIXED: usize = 5; // ino (4) + namelen (1).

fn entry_size(name: &str) -> usize {
    ENTRY_FIXED + name.len()
}

impl Ufs {
    /// Looks `name` up in directory `dip`.
    ///
    /// Compares name bytes in place rather than materializing every
    /// entry as a `String`: lookups run once per create/remove, so a
    /// directory of N files would otherwise cost O(N²) transient
    /// `String`s across a churn workload. The scan still visits (and
    /// charges for) every block, like the original.
    pub(crate) async fn dir_lookup(&self, dip: &Incore, name: &str) -> FsResult<Option<u32>> {
        if dip.din.borrow().kind != FileKind::Directory {
            return Err(FsError::NotADirectory);
        }
        let nblocks = {
            let din = dip.din.borrow();
            din.size.div_ceil(BLOCK_SIZE as u64)
        };
        let mut found = None;
        for lbn in 0..nblocks {
            self.charge("dir", self.inner.params.costs.dir_block).await;
            let pbn = self.ptr_at(dip, lbn).await?;
            if pbn == 0 {
                continue;
            }
            let block = self.meta_get(pbn as u64).await;
            let data = block.borrow();
            let mut pos = 0usize;
            while pos + ENTRY_FIXED <= BLOCK_SIZE {
                let ino = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                let namelen = data[pos + 4] as usize;
                if ino == 0 && namelen == 0 {
                    break;
                }
                if found.is_none()
                    && ino != 0
                    && &data[pos + ENTRY_FIXED..pos + ENTRY_FIXED + namelen] == name.as_bytes()
                {
                    found = Some(ino);
                }
                pos += ENTRY_FIXED + namelen;
            }
        }
        Ok(found)
    }

    /// Adds `name → ino` to directory `dip` with a synchronous (or ordered)
    /// write of the affected block.
    pub(crate) async fn dir_add(&self, dip: &Rc<Incore>, name: &str, ino: u32) -> FsResult<()> {
        if name.is_empty() || name.len() > NAME_MAX || name.contains('/') {
            return Err(FsError::Invalid);
        }
        let need = entry_size(name);
        let nblocks = {
            let din = dip.din.borrow();
            din.size.div_ceil(BLOCK_SIZE as u64)
        };
        // Try the existing blocks for a tail with room.
        for lbn in 0..nblocks {
            self.charge("dir", self.inner.params.costs.dir_block).await;
            let pbn = self.ptr_at(dip, lbn).await?;
            if pbn == 0 {
                continue;
            }
            let block = self.meta_get(pbn as u64).await;
            let used = Self::block_used(&block.borrow());
            if used + need <= BLOCK_SIZE {
                Self::append_entry(&mut block.borrow_mut(), used, name, ino);
                self.meta_mark_dirty(pbn as u64);
                self.meta_write_through(pbn as u64).await;
                return Ok(());
            }
        }
        // Allocate a fresh directory block.
        let (pbn, fresh) = self.bmap_alloc(dip, nblocks).await?;
        debug_assert!(fresh);
        let cell = Rc::new(std::cell::RefCell::new(vec![0u8; BLOCK_SIZE]));
        Self::append_entry(&mut cell.borrow_mut(), 0, name, ino);
        self.inner.meta.borrow_mut().insert(pbn as u64, cell);
        self.meta_mark_dirty(pbn as u64);
        self.meta_write_through(pbn as u64).await;
        {
            let mut din = dip.din.borrow_mut();
            din.size = (nblocks + 1) * BLOCK_SIZE as u64;
        }
        dip.dirty.set(true);
        self.iflush(dip, true).await;
        Ok(())
    }

    fn block_used(data: &[u8]) -> usize {
        let mut pos = 0usize;
        while pos + ENTRY_FIXED <= BLOCK_SIZE {
            let ino = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let namelen = data[pos + 4] as usize;
            if ino == 0 && namelen == 0 {
                break;
            }
            pos += ENTRY_FIXED + namelen;
        }
        pos
    }

    fn append_entry(data: &mut [u8], at: usize, name: &str, ino: u32) {
        data[at..at + 4].copy_from_slice(&ino.to_le_bytes());
        data[at + 4] = name.len() as u8;
        data[at + ENTRY_FIXED..at + ENTRY_FIXED + name.len()].copy_from_slice(name.as_bytes());
    }

    /// Removes `name` from `dip`, compacting its block. Returns the inode
    /// number the entry pointed at.
    pub(crate) async fn dir_remove(&self, dip: &Rc<Incore>, name: &str) -> FsResult<u32> {
        let nblocks = {
            let din = dip.din.borrow();
            din.size.div_ceil(BLOCK_SIZE as u64)
        };
        for lbn in 0..nblocks {
            self.charge("dir", self.inner.params.costs.dir_block).await;
            let pbn = self.ptr_at(dip, lbn).await?;
            if pbn == 0 {
                continue;
            }
            let block = self.meta_get(pbn as u64).await;
            let mut found: Option<(usize, usize, u32)> = None;
            {
                let data = block.borrow();
                let mut pos = 0usize;
                while pos + ENTRY_FIXED <= BLOCK_SIZE {
                    let ino = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                    let namelen = data[pos + 4] as usize;
                    if ino == 0 && namelen == 0 {
                        break;
                    }
                    let ename = &data[pos + ENTRY_FIXED..pos + ENTRY_FIXED + namelen];
                    if ino != 0 && ename == name.as_bytes() {
                        found = Some((pos, ENTRY_FIXED + namelen, ino));
                        break;
                    }
                    pos += ENTRY_FIXED + namelen;
                }
            }
            if let Some((pos, len, ino)) = found {
                {
                    let mut data = block.borrow_mut();
                    let used = Self::block_used(&data);
                    // Shift the tail left over the removed entry, then zero
                    // the vacated region so the end marker is restored.
                    data.copy_within(pos + len..used, pos);
                    for b in &mut data[used - len..used] {
                        *b = 0;
                    }
                }
                self.meta_mark_dirty(pbn as u64);
                self.meta_write_through(pbn as u64).await;
                return Ok(ino);
            }
        }
        Err(FsError::NotFound)
    }

    /// Resolves a `/`-separated path to `(parent directory, final name,
    /// existing inode if any)`. An empty path or `/` resolves to the root.
    pub(crate) async fn namei(&self, path: &str) -> FsResult<(Rc<Incore>, String, Option<u32>)> {
        let mut parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut dir = self.iget(ROOT_INO).await?;
        if parts.is_empty() {
            return Ok((dir, String::new(), Some(ROOT_INO)));
        }
        let last = parts.pop().unwrap();
        for part in parts {
            let ino = self
                .dir_lookup(&dir, part)
                .await?
                .ok_or(FsError::NotFound)?;
            dir = self.iget(ino).await?;
            if dir.din.borrow().kind != FileKind::Directory {
                return Err(FsError::NotADirectory);
            }
        }
        let existing = self.dir_lookup(&dir, last).await?;
        Ok((dir, last.to_string(), existing))
    }

    /// Creates a symbolic link at `path` pointing to `target`.
    ///
    /// Short targets (≤ 56 bytes) are stored inline in the dinode — the
    /// SunOS "fast symlink" trick the paper cites as precedent for its
    /// data-in-the-inode idea; longer targets get a data block.
    pub async fn symlink(&self, path: &str, target: &str) -> FsResult<()> {
        let (parent, name, existing) = self.namei(path).await?;
        if existing.is_some() {
            return Err(FsError::Exists);
        }
        if name.is_empty() || target.is_empty() {
            return Err(FsError::Invalid);
        }
        let ino = self.alloc_inode(FileKind::Symlink, Some(parent.ino))?;
        let ip = crate::fs::Incore::new(
            ino,
            crate::layout::Dinode::new(FileKind::Symlink),
            &self.inner.sim,
            &self.inner.params.tuning,
            self.vid(ino),
        );
        {
            let mut din = ip.din.borrow_mut();
            din.size = target.len() as u64;
            if target.len() <= crate::layout::INLINE_MAX {
                din.inline = Some(target.as_bytes().to_vec());
            }
        }
        self.inner.inodes.borrow_mut().insert(ino, Rc::clone(&ip));
        if target.len() > crate::layout::INLINE_MAX {
            // Long target: store it in the file body.
            self.rdwr_write(&ip, 0, target.as_bytes(), vfs::AccessMode::Copy)
                .await?;
            ip.din.borrow_mut().size = target.len() as u64;
            self.fsync_inode(&ip).await?;
        }
        self.iflush(&ip, true).await;
        self.dir_add(&parent, &name, ino).await?;
        Ok(())
    }

    /// Reads the target of the symbolic link at `path`.
    pub async fn readlink(&self, path: &str) -> FsResult<String> {
        let (_parent, _name, existing) = self.namei(path).await?;
        let ino = existing.ok_or(FsError::NotFound)?;
        let ip = self.iget(ino).await?;
        if ip.din.borrow().kind != FileKind::Symlink {
            return Err(FsError::Invalid);
        }
        let inline = ip.din.borrow().inline.clone();
        let bytes = match inline {
            Some(data) => data,
            None => {
                let size = ip.din.borrow().size as usize;
                let mut buf = vec![0u8; size];
                let n = self
                    .rdwr_read(&ip, 0, &mut buf, vfs::AccessMode::Copy)
                    .await?;
                buf.truncate(n);
                buf
            }
        };
        String::from_utf8(bytes).map_err(|_| FsError::Corrupt)
    }

    /// Opens a file, following one level of symbolic link if `path` names
    /// one (sufficient for the flat link graphs the tests build; loops are
    /// cut off by the single-level rule).
    pub async fn open_following(&self, path: &str) -> FsResult<crate::vnops::UfsFile> {
        match self.open_file(path).await {
            Err(FsError::NotAFile) => {
                let target = self.readlink(path).await?;
                self.open_file(&target).await
            }
            other => other,
        }
    }

    /// Creates a subdirectory.
    pub async fn mkdir(&self, path: &str) -> FsResult<()> {
        let (parent, name, existing) = self.namei(path).await?;
        if existing.is_some() {
            return Err(FsError::Exists);
        }
        let ino = self.alloc_inode(FileKind::Directory, Some(parent.ino))?;
        let ip = crate::fs::Incore::new(
            ino,
            crate::layout::Dinode::new(FileKind::Directory),
            &self.inner.sim,
            &self.inner.params.tuning,
            self.vid(ino),
        );
        self.inner.inodes.borrow_mut().insert(ino, Rc::clone(&ip));
        self.iflush(&ip, true).await;
        self.dir_add(&parent, &name, ino).await?;
        Ok(())
    }
}
