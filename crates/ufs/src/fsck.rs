//! `fsck`: an independent consistency checker that reads the raw disk.
//!
//! Deliberately shares no code with the mount path (beyond the layout
//! definitions), so it cross-checks what the file system actually wrote:
//! bitmap vs reachability, duplicate claims, pointer validity, link counts,
//! size/blocks agreement, and summary counters.

use std::collections::{HashMap, HashSet, VecDeque};

use diskmodel::{BlockDevice, BlockDeviceExt};
use vfs::{FsError, FsResult};

use crate::layout::{
    CgHeader, Dinode, FileKind, Superblock, BLOCK_SIZE, DINODE_SIZE, NDADDR, PTRS_PER_BLOCK,
    ROOT_INO, SB_BLOCK, SECTORS_PER_BLOCK,
};

/// Outcome of a check.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Human-readable inconsistencies; empty means the file system is
    /// consistent.
    pub errors: Vec<String>,
    /// Regular files found.
    pub files: u32,
    /// Directories found.
    pub dirs: u32,
    /// Data+indirect blocks in use.
    pub used_blocks: u64,
    /// Whether the superblock carried the clean-unmount flag.
    pub was_clean: bool,
}

impl FsckReport {
    /// True when no inconsistencies were found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

async fn read_block(disk: &dyn BlockDevice, pbn: u64) -> Vec<u8> {
    disk.read(pbn * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK)
        .await
}

fn read_ptr(block: &[u8], idx: usize) -> u32 {
    let off = idx * 4;
    u32::from_le_bytes(block[off..off + 4].try_into().unwrap())
}

/// Checks the file system on `disk`.
pub async fn fsck(disk: &dyn BlockDevice) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();
    let raw = read_block(disk, SB_BLOCK).await;
    let sb = Superblock::decode(&raw).ok_or(FsError::Corrupt)?;
    report.was_clean = sb.clean;

    // Group headers.
    let mut cgs = Vec::new();
    for cgx in 0..sb.ncg {
        let raw = read_block(disk, sb.cg_start(cgx)).await;
        match CgHeader::decode(&raw) {
            Some(cg) if cg.cgx == cgx => cgs.push(cg),
            Some(cg) => {
                report
                    .errors
                    .push(format!("cg {cgx}: header claims index {}", cg.cgx));
                cgs.push(cg);
            }
            None => {
                report.errors.push(format!("cg {cgx}: bad magic"));
                cgs.push(CgHeader::empty(&sb, cgx));
            }
        }
    }

    // Pass 1: walk inodes, collect block claims.
    let mut claims: HashMap<u64, u32> = HashMap::new(); // pbn -> first claiming ino
    let mut dinodes: HashMap<u32, Dinode> = HashMap::new();
    let mut claim = |report: &mut FsckReport, ino: u32, pbn: u64| {
        if !sb.is_data_block(pbn) {
            report
                .errors
                .push(format!("ino {ino}: pointer to non-data block {pbn}"));
            return false;
        }
        if let Some(prev) = claims.get(&pbn) {
            report.errors.push(format!(
                "block {pbn} claimed by both ino {prev} and ino {ino}"
            ));
            return false;
        }
        claims.insert(pbn, ino);
        true
    };

    for ino in 0..sb.total_inodes() {
        if ino < 2 {
            continue; // Reserved.
        }
        let (pbn, idx) = sb.inode_location(ino);
        let block = read_block(disk, pbn).await;
        let din = match Dinode::decode(&block[idx * DINODE_SIZE..(idx + 1) * DINODE_SIZE]) {
            Some(d) => d,
            None => {
                report.errors.push(format!("ino {ino}: undecodable dinode"));
                continue;
            }
        };
        let cg = &cgs[(ino / sb.inodes_per_cg) as usize];
        let in_bitmap = cg.inode_allocated(ino % sb.inodes_per_cg);
        match (din.kind, in_bitmap) {
            (FileKind::Free, false) => continue,
            (FileKind::Free, true) => {
                report
                    .errors
                    .push(format!("ino {ino}: allocated in bitmap but dinode is free"));
                continue;
            }
            (_, false) => {
                report
                    .errors
                    .push(format!("ino {ino}: dinode in use but bitmap says free"));
            }
            (_, true) => {}
        }
        match din.kind {
            FileKind::Regular | FileKind::Symlink => report.files += 1,
            FileKind::Directory => report.dirs += 1,
            FileKind::Free => unreachable!(),
        }
        // Walk block pointers.
        let mut counted = 0u32;
        if din.inline.is_none() {
            let nblocks = din.size.div_ceil(BLOCK_SIZE as u64);
            for i in 0..NDADDR.min(nblocks as usize) {
                let p = din.direct[i];
                if p != 0 && claim(&mut report, ino, p as u64) {
                    counted += 1;
                }
            }
            if din.indirect != 0 {
                if claim(&mut report, ino, din.indirect as u64) {
                    counted += 1;
                }
                let ind = read_block(disk, din.indirect as u64).await;
                let covered = nblocks
                    .saturating_sub(NDADDR as u64)
                    .min(PTRS_PER_BLOCK as u64);
                for i in 0..covered as usize {
                    let p = read_ptr(&ind, i);
                    if p != 0 && claim(&mut report, ino, p as u64) {
                        counted += 1;
                    }
                }
            }
            if din.double != 0 {
                if claim(&mut report, ino, din.double as u64) {
                    counted += 1;
                }
                let l1 = read_block(disk, din.double as u64).await;
                for i in 0..PTRS_PER_BLOCK {
                    let mid = read_ptr(&l1, i);
                    if mid == 0 {
                        continue;
                    }
                    if claim(&mut report, ino, mid as u64) {
                        counted += 1;
                    }
                    let l2 = read_block(disk, mid as u64).await;
                    for j in 0..PTRS_PER_BLOCK {
                        let p = read_ptr(&l2, j);
                        if p != 0 && claim(&mut report, ino, p as u64) {
                            counted += 1;
                        }
                    }
                }
            }
            if counted != din.blocks {
                report.errors.push(format!(
                    "ino {ino}: dinode claims {} blocks, found {counted}",
                    din.blocks
                ));
            }
        } else if din.blocks != 0 {
            report.errors.push(format!(
                "ino {ino}: inline data but blocks = {}",
                din.blocks
            ));
        }
        dinodes.insert(ino, din);
    }
    report.used_blocks = claims.len() as u64;

    // Pass 2: directory connectivity and link counts.
    let mut link_refs: HashMap<u32, u16> = HashMap::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut queue = VecDeque::new();
    if dinodes.contains_key(&ROOT_INO) {
        queue.push_back(ROOT_INO);
        visited.insert(ROOT_INO);
    } else {
        report.errors.push("root directory missing".to_string());
    }
    while let Some(dir_ino) = queue.pop_front() {
        let din = dinodes[&dir_ino].clone();
        let nblocks = din.size.div_ceil(BLOCK_SIZE as u64);
        for lbn in 0..nblocks.min(NDADDR as u64) {
            let p = din.direct[lbn as usize];
            if p == 0 {
                continue;
            }
            let data = read_block(disk, p as u64).await;
            let mut pos = 0usize;
            while pos + 5 <= BLOCK_SIZE {
                let ino = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                let namelen = data[pos + 4] as usize;
                if ino == 0 && namelen == 0 {
                    break;
                }
                pos += 5 + namelen;
                if ino == 0 {
                    continue;
                }
                match dinodes.get(&ino) {
                    None => report.errors.push(format!(
                        "dir {dir_ino}: entry references unallocated ino {ino}"
                    )),
                    Some(d) => {
                        *link_refs.entry(ino).or_insert(0) += 1;
                        if d.kind == FileKind::Directory && visited.insert(ino) {
                            queue.push_back(ino);
                        }
                    }
                }
            }
        }
    }
    for (&ino, din) in &dinodes {
        if ino == ROOT_INO {
            continue;
        }
        let refs = link_refs.get(&ino).copied().unwrap_or(0);
        if refs == 0 {
            report
                .errors
                .push(format!("ino {ino}: allocated but unreachable (orphan)"));
        } else if din.kind == FileKind::Regular && refs != din.nlink {
            report.errors.push(format!(
                "ino {ino}: nlink {} but {} directory references",
                din.nlink, refs
            ));
        }
    }

    // Pass 3: bitmap vs claims, and summary counters.
    let mut free_blocks_maps = 0u64;
    let mut free_inodes_maps = 0u64;
    for (cgx, cg) in cgs.iter().enumerate() {
        let mut cg_used = 0u32;
        for i in 0..sb.data_blocks_per_cg() {
            let pbn = sb.cg_data_start(cgx as u32) + i as u64;
            let bit = cg.block_allocated(i);
            let claimed = claims.contains_key(&pbn) || (cgx == 0 && i == 0);
            // (cg 0 data block 0 is the root directory block, claimed via
            // the root dinode walk above — it IS in claims; the extra
            // clause keeps mkfs-only images clean.)
            if bit && !claimed && !(cgx == 0 && i == 0) {
                report
                    .errors
                    .push(format!("block {pbn}: allocated in bitmap but unclaimed"));
            }
            if !bit && claims.contains_key(&pbn) {
                report
                    .errors
                    .push(format!("block {pbn}: claimed but free in bitmap"));
            }
            if bit {
                cg_used += 1;
            }
        }
        let expect_free = sb.data_blocks_per_cg() - cg_used;
        if cg.free_blocks != expect_free {
            report.errors.push(format!(
                "cg {cgx}: free_blocks {} but bitmap shows {expect_free}",
                cg.free_blocks
            ));
        }
        free_blocks_maps += cg.free_blocks as u64;
        free_inodes_maps += cg.free_inodes as u64;
    }
    if sb.free_blocks != free_blocks_maps {
        report.errors.push(format!(
            "superblock free_blocks {} != cg total {free_blocks_maps}",
            sb.free_blocks
        ));
    }
    if sb.free_inodes != free_inodes_maps {
        report.errors.push(format!(
            "superblock free_inodes {} != cg total {free_inodes_maps}",
            sb.free_inodes
        ));
    }
    Ok(report)
}
