//! `fsck`: an independent consistency checker that reads the raw disk.
//!
//! Deliberately shares no code with the mount path (beyond the layout
//! definitions), so it cross-checks what the file system actually wrote:
//! bitmap vs reachability, duplicate claims, pointer validity, link counts,
//! size/blocks agreement, and summary counters.

use std::collections::{HashMap, HashSet, VecDeque};

use diskmodel::{BlockDevice, BlockDeviceExt};
use vfs::FsResult;

use crate::layout::{
    CgHeader, Dinode, FileKind, Superblock, BLOCK_SIZE, DINODE_SIZE, NDADDR, PTRS_PER_BLOCK,
    ROOT_INO, SB_BLOCK, SECTORS_PER_BLOCK,
};

/// Outcome of a check or repair.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Human-readable inconsistencies; empty means the file system is
    /// consistent.
    pub errors: Vec<String>,
    /// Objects examined: cylinder groups, inode slots, and data blocks
    /// cross-checked against the bitmaps.
    pub checked: u64,
    /// Repairs applied ([`fsck_repair`] only; plain [`fsck`] never writes).
    pub repaired: Vec<String>,
    /// Damage found that cannot be repaired from on-disk state alone
    /// (restore from backup territory, e.g. an unreadable superblock).
    pub unfixable: Vec<String>,
    /// Regular files found.
    pub files: u32,
    /// Directories found.
    pub dirs: u32,
    /// Data+indirect blocks in use.
    pub used_blocks: u64,
    /// Whether the superblock carried the clean-unmount flag.
    pub was_clean: bool,
}

impl FsckReport {
    /// True when no inconsistencies were found (repairs already applied do
    /// not count against cleanliness; unrepairable damage does).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.unfixable.is_empty()
    }
}

async fn read_block(disk: &dyn BlockDevice, pbn: u64) -> Vec<u8> {
    disk.read(pbn * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK)
        .await
}

fn read_ptr(block: &[u8], idx: usize) -> u32 {
    let off = idx * 4;
    u32::from_le_bytes(block[off..off + 4].try_into().unwrap())
}

/// Checks the file system on `disk`. Damage is reported, never repaired;
/// an undecodable superblock comes back as an `unfixable` finding rather
/// than an error return, so callers can print one structured report for
/// any state of the disk.
pub async fn fsck(disk: &dyn BlockDevice) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();
    let raw = read_block(disk, SB_BLOCK).await;
    let Some(sb) = Superblock::decode(&raw) else {
        report
            .unfixable
            .push("superblock: bad magic; restore from backup".to_string());
        return Ok(report);
    };
    report.was_clean = sb.clean;

    // Group headers.
    let mut cgs = Vec::new();
    for cgx in 0..sb.ncg {
        report.checked += 1;
        let raw = read_block(disk, sb.cg_start(cgx)).await;
        match CgHeader::decode(&raw) {
            Some(cg) if cg.cgx == cgx => cgs.push(cg),
            Some(cg) => {
                report
                    .errors
                    .push(format!("cg {cgx}: header claims index {}", cg.cgx));
                cgs.push(cg);
            }
            None => {
                report.errors.push(format!("cg {cgx}: bad magic"));
                cgs.push(CgHeader::empty(&sb, cgx));
            }
        }
    }

    // Pass 1: walk inodes, collect block claims.
    let mut claims: HashMap<u64, u32> = HashMap::new(); // pbn -> first claiming ino
    let mut dinodes: HashMap<u32, Dinode> = HashMap::new();
    let mut claim = |report: &mut FsckReport, ino: u32, pbn: u64| {
        if !sb.is_data_block(pbn) {
            report
                .errors
                .push(format!("ino {ino}: pointer to non-data block {pbn}"));
            return false;
        }
        if let Some(prev) = claims.get(&pbn) {
            report.errors.push(format!(
                "block {pbn} claimed by both ino {prev} and ino {ino}"
            ));
            return false;
        }
        claims.insert(pbn, ino);
        true
    };

    for ino in 0..sb.total_inodes() {
        if ino < 2 {
            continue; // Reserved.
        }
        report.checked += 1;
        let (pbn, idx) = sb.inode_location(ino);
        let block = read_block(disk, pbn).await;
        let din = match Dinode::decode(&block[idx * DINODE_SIZE..(idx + 1) * DINODE_SIZE]) {
            Some(d) => d,
            None => {
                report.errors.push(format!("ino {ino}: undecodable dinode"));
                continue;
            }
        };
        let cg = &cgs[(ino / sb.inodes_per_cg) as usize];
        let in_bitmap = cg.inode_allocated(ino % sb.inodes_per_cg);
        match (din.kind, in_bitmap) {
            (FileKind::Free, false) => continue,
            (FileKind::Free, true) => {
                report
                    .errors
                    .push(format!("ino {ino}: allocated in bitmap but dinode is free"));
                continue;
            }
            (_, false) => {
                report
                    .errors
                    .push(format!("ino {ino}: dinode in use but bitmap says free"));
            }
            (_, true) => {}
        }
        match din.kind {
            FileKind::Regular | FileKind::Symlink => report.files += 1,
            FileKind::Directory => report.dirs += 1,
            FileKind::Free => unreachable!(),
        }
        // Walk block pointers.
        let mut counted = 0u32;
        if din.inline.is_none() {
            let nblocks = din.size.div_ceil(BLOCK_SIZE as u64);
            for i in 0..NDADDR.min(nblocks as usize) {
                let p = din.direct[i];
                if p != 0 && claim(&mut report, ino, p as u64) {
                    counted += 1;
                }
            }
            if din.indirect != 0 {
                if claim(&mut report, ino, din.indirect as u64) {
                    counted += 1;
                }
                let ind = read_block(disk, din.indirect as u64).await;
                let covered = nblocks
                    .saturating_sub(NDADDR as u64)
                    .min(PTRS_PER_BLOCK as u64);
                for i in 0..covered as usize {
                    let p = read_ptr(&ind, i);
                    if p != 0 && claim(&mut report, ino, p as u64) {
                        counted += 1;
                    }
                }
            }
            if din.double != 0 {
                if claim(&mut report, ino, din.double as u64) {
                    counted += 1;
                }
                let l1 = read_block(disk, din.double as u64).await;
                for i in 0..PTRS_PER_BLOCK {
                    let mid = read_ptr(&l1, i);
                    if mid == 0 {
                        continue;
                    }
                    if claim(&mut report, ino, mid as u64) {
                        counted += 1;
                    }
                    let l2 = read_block(disk, mid as u64).await;
                    for j in 0..PTRS_PER_BLOCK {
                        let p = read_ptr(&l2, j);
                        if p != 0 && claim(&mut report, ino, p as u64) {
                            counted += 1;
                        }
                    }
                }
            }
            if counted != din.blocks {
                report.errors.push(format!(
                    "ino {ino}: dinode claims {} blocks, found {counted}",
                    din.blocks
                ));
            }
        } else if din.blocks != 0 {
            report.errors.push(format!(
                "ino {ino}: inline data but blocks = {}",
                din.blocks
            ));
        }
        dinodes.insert(ino, din);
    }
    report.used_blocks = claims.len() as u64;

    // Pass 2: directory connectivity and link counts.
    let mut link_refs: HashMap<u32, u16> = HashMap::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut queue = VecDeque::new();
    if dinodes.contains_key(&ROOT_INO) {
        queue.push_back(ROOT_INO);
        visited.insert(ROOT_INO);
    } else {
        report.errors.push("root directory missing".to_string());
    }
    while let Some(dir_ino) = queue.pop_front() {
        let din = dinodes[&dir_ino].clone();
        let nblocks = din.size.div_ceil(BLOCK_SIZE as u64);
        for lbn in 0..nblocks.min(NDADDR as u64) {
            let p = din.direct[lbn as usize];
            if p == 0 {
                continue;
            }
            let data = read_block(disk, p as u64).await;
            let mut pos = 0usize;
            while pos + 5 <= BLOCK_SIZE {
                let ino = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                let namelen = data[pos + 4] as usize;
                if ino == 0 && namelen == 0 {
                    break;
                }
                pos += 5 + namelen;
                if ino == 0 {
                    continue;
                }
                match dinodes.get(&ino) {
                    None => report.errors.push(format!(
                        "dir {dir_ino}: entry references unallocated ino {ino}"
                    )),
                    Some(d) => {
                        *link_refs.entry(ino).or_insert(0) += 1;
                        if d.kind == FileKind::Directory && visited.insert(ino) {
                            queue.push_back(ino);
                        }
                    }
                }
            }
        }
    }
    for (&ino, din) in &dinodes {
        if ino == ROOT_INO {
            continue;
        }
        let refs = link_refs.get(&ino).copied().unwrap_or(0);
        if refs == 0 {
            report
                .errors
                .push(format!("ino {ino}: allocated but unreachable (orphan)"));
        } else if din.kind == FileKind::Regular && refs != din.nlink {
            report.errors.push(format!(
                "ino {ino}: nlink {} but {} directory references",
                din.nlink, refs
            ));
        }
    }

    // Pass 3: bitmap vs claims, and summary counters.
    let mut free_blocks_maps = 0u64;
    let mut free_inodes_maps = 0u64;
    for (cgx, cg) in cgs.iter().enumerate() {
        let mut cg_used = 0u32;
        for i in 0..sb.data_blocks_per_cg() {
            report.checked += 1;
            let pbn = sb.cg_data_start(cgx as u32) + i as u64;
            let bit = cg.block_allocated(i);
            let claimed = claims.contains_key(&pbn) || (cgx == 0 && i == 0);
            // (cg 0 data block 0 is the root directory block, claimed via
            // the root dinode walk above — it IS in claims; the extra
            // clause keeps mkfs-only images clean.)
            if bit && !claimed && !(cgx == 0 && i == 0) {
                report
                    .errors
                    .push(format!("block {pbn}: allocated in bitmap but unclaimed"));
            }
            if !bit && claims.contains_key(&pbn) {
                report
                    .errors
                    .push(format!("block {pbn}: claimed but free in bitmap"));
            }
            if bit {
                cg_used += 1;
            }
        }
        let expect_free = sb.data_blocks_per_cg() - cg_used;
        if cg.free_blocks != expect_free {
            report.errors.push(format!(
                "cg {cgx}: free_blocks {} but bitmap shows {expect_free}",
                cg.free_blocks
            ));
        }
        free_blocks_maps += cg.free_blocks as u64;
        free_inodes_maps += cg.free_inodes as u64;
    }
    if sb.free_blocks != free_blocks_maps {
        report.errors.push(format!(
            "superblock free_blocks {} != cg total {free_blocks_maps}",
            sb.free_blocks
        ));
    }
    if sb.free_inodes != free_inodes_maps {
        report.errors.push(format!(
            "superblock free_inodes {} != cg total {free_inodes_maps}",
            sb.free_inodes
        ));
    }
    Ok(report)
}

async fn write_block(disk: &dyn BlockDevice, pbn: u64, data: Vec<u8>) {
    disk.write(pbn * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK, data)
        .await;
}

/// Repairs the file system on `disk` by rebuilding the maps from what the
/// inodes and directories actually reference — the classic fsck recipe,
/// in the order the passes depend on each other:
///
/// 1. Walk every dinode, dropping invalid block pointers (out of range, or
///    already claimed by an earlier inode — first claimant wins) and
///    recomputing each inode's block count.
/// 2. Walk the directory tree from the root: zero entries that point at
///    unallocated inodes, free inodes no directory references (orphans),
///    and reset regular files' link counts to the observed reference
///    count.
/// 3. Rebuild every cylinder group's bitmaps and free counters from the
///    surviving claims, recompute the superblock summaries, and set the
///    clean flag.
///
/// Every change lands in `report.repaired`. Damage with no on-disk
/// recovery (an undecodable superblock) is reported `unfixable` and the
/// disk is left untouched. A [`fsck`] run after a successful repair
/// reports clean.
pub async fn fsck_repair(disk: &dyn BlockDevice) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();
    let raw = read_block(disk, SB_BLOCK).await;
    let Some(mut sb) = Superblock::decode(&raw) else {
        report
            .unfixable
            .push("superblock: bad magic; restore from backup".to_string());
        return Ok(report);
    };
    report.was_clean = sb.clean;

    // Group headers; an undecodable header is rebuilt from scratch (its
    // bitmaps are fully reconstructed in pass 3 anyway).
    let mut cgs = Vec::new();
    for cgx in 0..sb.ncg {
        report.checked += 1;
        let raw = read_block(disk, sb.cg_start(cgx)).await;
        match CgHeader::decode(&raw) {
            Some(mut cg) => {
                if cg.cgx != cgx {
                    report
                        .repaired
                        .push(format!("cg {cgx}: corrected header index {}", cg.cgx));
                    cg.cgx = cgx;
                }
                cgs.push(cg);
            }
            None => {
                report
                    .repaired
                    .push(format!("cg {cgx}: rebuilt undecodable header"));
                cgs.push(CgHeader::empty(&sb, cgx));
            }
        }
    }

    // Pass 1: walk inodes; sanitize pointers; collect claims.
    let mut claims: HashMap<u64, u32> = HashMap::new(); // pbn -> claiming ino
    let mut dinodes: HashMap<u32, Dinode> = HashMap::new();
    let mut dirty_inos: HashSet<u32> = HashSet::new();
    // Indirect blocks whose pointer arrays were sanitized, by pbn.
    let mut dirty_indirects: HashMap<u64, Vec<u8>> = HashMap::new();

    for ino in 2..sb.total_inodes() {
        report.checked += 1;
        let (pbn, idx) = sb.inode_location(ino);
        let block = read_block(disk, pbn).await;
        let cgx = (ino / sb.inodes_per_cg) as usize;
        let bit = ino % sb.inodes_per_cg;
        let mut din = match Dinode::decode(&block[idx * DINODE_SIZE..(idx + 1) * DINODE_SIZE]) {
            Some(d) => d,
            None => {
                // Nothing recoverable in the slot: free it.
                report
                    .repaired
                    .push(format!("ino {ino}: cleared undecodable dinode"));
                if cgs[cgx].clear_inode(bit) {
                    cgs[cgx].free_inodes += 1;
                }
                dinodes.insert(ino, Dinode::free());
                dirty_inos.insert(ino);
                continue;
            }
        };
        if din.kind == FileKind::Free {
            if cgs[cgx].clear_inode(bit) {
                report
                    .repaired
                    .push(format!("ino {ino}: freed in bitmap to match free dinode"));
                cgs[cgx].free_inodes += 1;
            }
            continue;
        }
        if cgs[cgx].set_inode(bit) {
            report
                .repaired
                .push(format!("ino {ino}: marked allocated in bitmap"));
            cgs[cgx].free_inodes = cgs[cgx].free_inodes.saturating_sub(1);
        }
        match din.kind {
            FileKind::Regular | FileKind::Symlink => report.files += 1,
            FileKind::Directory => report.dirs += 1,
            FileKind::Free => unreachable!(),
        }
        if din.inline.is_some() {
            if din.blocks != 0 {
                report
                    .repaired
                    .push(format!("ino {ino}: zeroed block count of inline file"));
                din.blocks = 0;
                dirty_inos.insert(ino);
            }
            dinodes.insert(ino, din);
            continue;
        }
        // Sanitize a pointer slot in place: invalid or double-claimed
        // pointers are zeroed (first claimant keeps the block).
        let mut claim = |report: &mut FsckReport, p: &mut u32, what: &str| -> bool {
            if *p == 0 {
                return false;
            }
            let pbn = *p as u64;
            if !sb.is_data_block(pbn) {
                report.repaired.push(format!(
                    "ino {ino}: dropped {what} pointer to invalid block {pbn}"
                ));
                *p = 0;
                return false;
            }
            if let Some(&prev) = claims.get(&pbn) {
                report.repaired.push(format!(
                    "ino {ino}: dropped {what} pointer to block {pbn} (kept by ino {prev})"
                ));
                *p = 0;
                return false;
            }
            claims.insert(pbn, ino);
            true
        };
        let mut counted = 0u32;
        let nblocks = din.size.div_ceil(BLOCK_SIZE as u64);
        let mut direct = din.direct;
        for (i, p) in direct
            .iter_mut()
            .enumerate()
            .take(NDADDR.min(nblocks as usize))
        {
            let _ = i;
            if claim(&mut report, p, "direct") {
                counted += 1;
            }
        }
        if direct != din.direct {
            din.direct = direct;
            dirty_inos.insert(ino);
        }
        let mut indirect = din.indirect;
        if claim(&mut report, &mut indirect, "indirect") {
            counted += 1;
            let mut ind = read_block(disk, indirect as u64).await;
            let covered = nblocks
                .saturating_sub(NDADDR as u64)
                .min(PTRS_PER_BLOCK as u64);
            let mut changed = false;
            for i in 0..covered as usize {
                let mut p = read_ptr(&ind, i);
                if claim(&mut report, &mut p, "indirect data") {
                    counted += 1;
                } else if read_ptr(&ind, i) != 0 {
                    ind[i * 4..i * 4 + 4].copy_from_slice(&0u32.to_le_bytes());
                    changed = true;
                }
            }
            if changed {
                dirty_indirects.insert(indirect as u64, ind);
            }
        }
        if indirect != din.indirect {
            din.indirect = indirect;
            dirty_inos.insert(ino);
        }
        let mut double = din.double;
        if claim(&mut report, &mut double, "double-indirect") {
            counted += 1;
            let mut l1 = read_block(disk, double as u64).await;
            let mut l1_changed = false;
            for i in 0..PTRS_PER_BLOCK {
                let mut mid = read_ptr(&l1, i);
                if mid == 0 {
                    continue;
                }
                if claim(&mut report, &mut mid, "double-indirect map") {
                    counted += 1;
                    let mut l2 = read_block(disk, mid as u64).await;
                    let mut l2_changed = false;
                    for j in 0..PTRS_PER_BLOCK {
                        let mut p = read_ptr(&l2, j);
                        if p == 0 {
                            continue;
                        }
                        if claim(&mut report, &mut p, "double-indirect data") {
                            counted += 1;
                        } else {
                            l2[j * 4..j * 4 + 4].copy_from_slice(&0u32.to_le_bytes());
                            l2_changed = true;
                        }
                    }
                    if l2_changed {
                        dirty_indirects.insert(mid as u64, l2);
                    }
                } else {
                    l1[i * 4..i * 4 + 4].copy_from_slice(&0u32.to_le_bytes());
                    l1_changed = true;
                }
            }
            if l1_changed {
                dirty_indirects.insert(double as u64, l1);
            }
        }
        if double != din.double {
            din.double = double;
            dirty_inos.insert(ino);
        }
        if counted != din.blocks {
            report.repaired.push(format!(
                "ino {ino}: corrected block count {} -> {counted}",
                din.blocks
            ));
            din.blocks = counted;
            dirty_inos.insert(ino);
        }
        dinodes.insert(ino, din);
    }

    // Pass 2: reachability from the root. Directory blocks with entries
    // pointing at unallocated inodes are rewritten with those entries
    // zeroed; everything never reached is an orphan and gets freed.
    let mut link_refs: HashMap<u32, u16> = HashMap::new();
    let mut visited: HashSet<u32> = HashSet::new();
    let mut queue = VecDeque::new();
    match dinodes.get(&ROOT_INO) {
        Some(d) if d.kind == FileKind::Directory => {
            queue.push_back(ROOT_INO);
            visited.insert(ROOT_INO);
        }
        _ => {
            report
                .unfixable
                .push("root directory missing or not a directory".to_string());
            return Ok(report);
        }
    }
    while let Some(dir_ino) = queue.pop_front() {
        let din = dinodes[&dir_ino].clone();
        let nblocks = din.size.div_ceil(BLOCK_SIZE as u64);
        for lbn in 0..nblocks.min(NDADDR as u64) {
            let p = din.direct[lbn as usize];
            if p == 0 {
                continue;
            }
            let mut data = read_block(disk, p as u64).await;
            let mut changed = false;
            let mut pos = 0usize;
            while pos + 5 <= BLOCK_SIZE {
                let ino = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
                let namelen = data[pos + 4] as usize;
                if ino == 0 && namelen == 0 {
                    break;
                }
                let entry = pos;
                pos += 5 + namelen;
                if ino == 0 {
                    continue;
                }
                match dinodes.get(&ino) {
                    None
                    | Some(Dinode {
                        kind: FileKind::Free,
                        ..
                    }) => {
                        report.repaired.push(format!(
                            "dir {dir_ino}: zeroed entry referencing unallocated ino {ino}"
                        ));
                        data[entry..entry + 4].copy_from_slice(&0u32.to_le_bytes());
                        changed = true;
                    }
                    Some(d) => {
                        *link_refs.entry(ino).or_insert(0) += 1;
                        if d.kind == FileKind::Directory && visited.insert(ino) {
                            queue.push_back(ino);
                        }
                    }
                }
            }
            if changed {
                write_block(disk, p as u64, data).await;
            }
        }
    }
    let inos: Vec<u32> = {
        let mut v: Vec<u32> = dinodes.keys().copied().collect();
        v.sort_unstable();
        v
    };
    for ino in inos {
        if ino == ROOT_INO || dinodes[&ino].kind == FileKind::Free {
            continue;
        }
        let refs = link_refs.get(&ino).copied().unwrap_or(0);
        if refs == 0 {
            // Orphan: free the inode and release its blocks.
            report
                .repaired
                .push(format!("ino {ino}: cleared unreachable inode"));
            claims.retain(|_, &mut owner| owner != ino);
            let cgx = (ino / sb.inodes_per_cg) as usize;
            if cgs[cgx].clear_inode(ino % sb.inodes_per_cg) {
                cgs[cgx].free_inodes += 1;
            }
            match dinodes[&ino].kind {
                FileKind::Directory => report.dirs -= 1,
                _ => report.files -= 1,
            }
            dinodes.insert(ino, Dinode::free());
            dirty_inos.insert(ino);
        } else {
            let din = dinodes.get_mut(&ino).unwrap();
            if din.kind == FileKind::Regular && refs != din.nlink {
                report.repaired.push(format!(
                    "ino {ino}: corrected nlink {} -> {refs}",
                    din.nlink
                ));
                din.nlink = refs;
                dirty_inos.insert(ino);
            }
        }
    }
    report.used_blocks = claims.len() as u64;

    // Pass 3: rebuild the block bitmaps and free counters from the claims
    // that survived, and refresh the superblock summaries.
    let mut free_blocks_total = 0u64;
    let mut free_inodes_total = 0u64;
    for (cgx, cg) in cgs.iter_mut().enumerate() {
        let mut flipped = 0u32;
        let mut used = 0u32;
        for i in 0..sb.data_blocks_per_cg() {
            report.checked += 1;
            let pbn = sb.cg_data_start(cgx as u32) + i as u64;
            // cg 0 data block 0 is the root directory's block even on a
            // freshly formatted image.
            let should = claims.contains_key(&pbn) || (cgx == 0 && i == 0);
            let changed = if should {
                cg.set_block(i)
            } else {
                cg.clear_block(i)
            };
            if changed {
                flipped += 1;
            }
            if should {
                used += 1;
            }
        }
        if flipped > 0 {
            report
                .repaired
                .push(format!("cg {cgx}: rebuilt block bitmap ({flipped} bits)"));
        }
        let expect_free = sb.data_blocks_per_cg() - used;
        if cg.free_blocks != expect_free {
            report.repaired.push(format!(
                "cg {cgx}: corrected free_blocks {} -> {expect_free}",
                cg.free_blocks
            ));
            cg.free_blocks = expect_free;
        }
        free_blocks_total += cg.free_blocks as u64;
        free_inodes_total += cg.free_inodes as u64;
    }
    if sb.free_blocks != free_blocks_total {
        report.repaired.push(format!(
            "superblock: corrected free_blocks {} -> {free_blocks_total}",
            sb.free_blocks
        ));
        sb.free_blocks = free_blocks_total;
    }
    if sb.free_inodes != free_inodes_total {
        report.repaired.push(format!(
            "superblock: corrected free_inodes {} -> {free_inodes_total}",
            sb.free_inodes
        ));
        sb.free_inodes = free_inodes_total;
    }
    if !sb.clean {
        report
            .repaired
            .push("superblock: set clean after repair".to_string());
        sb.clean = true;
    }

    // Write back everything that changed: sanitized indirect blocks,
    // dirty dinodes (grouped per inode-table block), every group header,
    // and the superblock last.
    for (pbn, data) in dirty_indirects {
        write_block(disk, pbn, data).await;
    }
    let mut by_block: HashMap<u64, Vec<u32>> = HashMap::new();
    for &ino in &dirty_inos {
        by_block
            .entry(sb.inode_location(ino).0)
            .or_default()
            .push(ino);
    }
    let mut blocks: Vec<u64> = by_block.keys().copied().collect();
    blocks.sort_unstable();
    for pbn in blocks {
        let mut data = read_block(disk, pbn).await;
        for &ino in &by_block[&pbn] {
            let idx = sb.inode_location(ino).1;
            data[idx * DINODE_SIZE..(idx + 1) * DINODE_SIZE]
                .copy_from_slice(&dinodes[&ino].encode());
        }
        write_block(disk, pbn, data).await;
    }
    for (cgx, cg) in cgs.iter().enumerate() {
        write_block(disk, sb.cg_start(cgx as u32), cg.encode()).await;
    }
    write_block(disk, SB_BLOCK, sb.encode()).await;
    Ok(report)
}
