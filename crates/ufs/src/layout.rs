//! The on-disk format: superblock, cylinder groups, dinodes.
//!
//! The format is FFS-shaped: the disk is divided into cylinder groups, each
//! with its own free-block bitmap, inode bitmap and inode table, so related
//! data can be placed together and the allocator has per-region free
//! accounting. Keeping this format **fixed** is the paper's core constraint:
//! every clustering change must work on top of it.
//!
//! Differences from historical FFS are deliberate simplifications that do
//! not affect the paper's experiments (documented in DESIGN.md): block
//! pointers are in 8 KB block units (no 1 KB fragments), there is one
//! superblock (no rotating replicas), and directory blocks use a simple
//! packed entry format.

/// Bytes per file system block.
pub const BLOCK_SIZE: usize = 8192;
/// Bytes per disk sector.
pub const SECTOR_SIZE: usize = 512;
/// Sectors per file system block.
pub const SECTORS_PER_BLOCK: u32 = (BLOCK_SIZE / SECTOR_SIZE) as u32;
/// Direct block pointers per dinode.
pub const NDADDR: usize = 12;
/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 4;
/// Bytes per on-disk inode.
pub const DINODE_SIZE: usize = 128;
/// Dinodes per file system block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / DINODE_SIZE;
/// Maximum bytes of inline ("data in the inode") file content, stored in
/// the block-pointer area like SunOS fast symlinks.
pub const INLINE_MAX: usize = NDADDR * 4 + 8; // 56 bytes.
/// Maximum file name length.
pub const NAME_MAX: usize = 255;
/// Superblock magic ("McKusick's number" stand-in).
pub const SB_MAGIC: u32 = 0x0119_9101;
/// Cylinder group magic.
pub const CG_MAGIC: u32 = 0x0909_1991;
/// The root directory's inode number.
pub const ROOT_INO: u32 = 2;
/// Physical block of the superblock (block 0 is the boot block).
pub const SB_BLOCK: u64 = 1;
/// First block of the first cylinder group.
pub const CG_START: u64 = 2;

/// Largest representable file, in blocks.
pub fn max_file_blocks() -> u64 {
    NDADDR as u64 + PTRS_PER_BLOCK as u64 + (PTRS_PER_BLOCK as u64) * (PTRS_PER_BLOCK as u64)
}

/// The superblock: global geometry and tuning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Identifies a valid file system.
    pub magic: u32,
    /// Total file system blocks on the device.
    pub total_blocks: u64,
    /// Data+metadata blocks per cylinder group.
    pub blocks_per_cg: u32,
    /// Inodes per cylinder group.
    pub inodes_per_cg: u32,
    /// Number of cylinder groups.
    pub ncg: u32,
    /// Reserved free-space percentage (the allocator's slack; "usually
    /// 10%").
    pub minfree_pct: u8,
    /// Persisted tuning: placement gap in milliseconds.
    pub rotdelay_ms: u8,
    /// Persisted tuning: desired cluster size in blocks.
    pub maxcontig: u8,
    /// Set when the file system was cleanly unmounted.
    pub clean: bool,
    /// Free data blocks (summary; authoritative copies in the cgs).
    pub free_blocks: u64,
    /// Free inodes (summary).
    pub free_inodes: u64,
}

impl Superblock {
    /// Serializes to one sector's worth of bytes (padded).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        let mut w = Writer::new(&mut buf);
        w.u32(self.magic);
        w.u64(self.total_blocks);
        w.u32(self.blocks_per_cg);
        w.u32(self.inodes_per_cg);
        w.u32(self.ncg);
        w.u8(self.minfree_pct);
        w.u8(self.rotdelay_ms);
        w.u8(self.maxcontig);
        w.u8(self.clean as u8);
        w.u64(self.free_blocks);
        w.u64(self.free_inodes);
        buf
    }

    /// Parses a superblock; `None` if the magic is wrong.
    pub fn decode(buf: &[u8]) -> Option<Superblock> {
        let mut r = Reader::new(buf);
        let magic = r.u32()?;
        if magic != SB_MAGIC {
            return None;
        }
        Some(Superblock {
            magic,
            total_blocks: r.u64()?,
            blocks_per_cg: r.u32()?,
            inodes_per_cg: r.u32()?,
            ncg: r.u32()?,
            minfree_pct: r.u8()?,
            rotdelay_ms: r.u8()?,
            maxcontig: r.u8()?,
            clean: r.u8()? != 0,
            free_blocks: r.u64()?,
            free_inodes: r.u64()?,
        })
    }

    /// Blocks the inode table occupies in each cylinder group.
    pub fn inode_blocks_per_cg(&self) -> u32 {
        self.inodes_per_cg.div_ceil(INODES_PER_BLOCK as u32)
    }

    /// Metadata blocks at the head of each cg (header + inode table).
    pub fn cg_meta_blocks(&self) -> u32 {
        1 + self.inode_blocks_per_cg()
    }

    /// Data blocks per cylinder group.
    pub fn data_blocks_per_cg(&self) -> u32 {
        self.blocks_per_cg - self.cg_meta_blocks()
    }

    /// First physical block of cylinder group `cgx`.
    pub fn cg_start(&self, cgx: u32) -> u64 {
        CG_START + cgx as u64 * self.blocks_per_cg as u64
    }

    /// First data block of cylinder group `cgx`.
    pub fn cg_data_start(&self, cgx: u32) -> u64 {
        self.cg_start(cgx) + self.cg_meta_blocks() as u64
    }

    /// The cylinder group containing physical block `pbn`, if it is a data
    /// block.
    pub fn cg_of_block(&self, pbn: u64) -> Option<u32> {
        if pbn < CG_START {
            return None;
        }
        let cgx = ((pbn - CG_START) / self.blocks_per_cg as u64) as u32;
        if cgx < self.ncg {
            Some(cgx)
        } else {
            None
        }
    }

    /// Whether `pbn` is a data block (not boot/superblock/cg metadata).
    pub fn is_data_block(&self, pbn: u64) -> bool {
        match self.cg_of_block(pbn) {
            Some(cgx) => pbn >= self.cg_data_start(cgx),
            None => false,
        }
    }

    /// Total data-block capacity.
    pub fn total_data_blocks(&self) -> u64 {
        self.ncg as u64 * self.data_blocks_per_cg() as u64
    }

    /// Data blocks held back by the minfree reserve.
    pub fn minfree_blocks(&self) -> u64 {
        self.total_data_blocks() * self.minfree_pct as u64 / 100
    }

    /// Physical block holding dinode `ino`, plus its index within that
    /// block.
    pub fn inode_location(&self, ino: u32) -> (u64, usize) {
        let cgx = ino / self.inodes_per_cg;
        let idx = (ino % self.inodes_per_cg) as usize;
        let block = self.cg_start(cgx) + 1 + (idx / INODES_PER_BLOCK) as u64;
        (block, idx % INODES_PER_BLOCK)
    }

    /// Total inodes.
    pub fn total_inodes(&self) -> u32 {
        self.ncg * self.inodes_per_cg
    }
}

/// Per-cylinder-group header: free bitmaps and counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CgHeader {
    /// Identifies a valid group.
    pub magic: u32,
    /// Group index.
    pub cgx: u32,
    /// Free data blocks in this group.
    pub free_blocks: u32,
    /// Free inodes in this group.
    pub free_inodes: u32,
    /// One bit per data block: set = allocated.
    pub block_bitmap: Vec<u8>,
    /// One bit per inode: set = allocated.
    pub inode_bitmap: Vec<u8>,
}

impl CgHeader {
    /// A fresh group with everything free.
    pub fn empty(sb: &Superblock, cgx: u32) -> CgHeader {
        CgHeader {
            magic: CG_MAGIC,
            cgx,
            free_blocks: sb.data_blocks_per_cg(),
            free_inodes: sb.inodes_per_cg,
            block_bitmap: vec![0u8; (sb.data_blocks_per_cg() as usize).div_ceil(8)],
            inode_bitmap: vec![0u8; (sb.inodes_per_cg as usize).div_ceil(8)],
        }
    }

    /// Serializes to one block.
    ///
    /// # Panics
    ///
    /// Panics if the bitmaps do not fit in one block (mkfs sizes them).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        let need = 4 + 4 + 4 + 4 + 4 + self.block_bitmap.len() + 4 + self.inode_bitmap.len();
        assert!(need <= BLOCK_SIZE, "cg header does not fit in a block");
        let mut w = Writer::new(&mut buf);
        w.u32(self.magic);
        w.u32(self.cgx);
        w.u32(self.free_blocks);
        w.u32(self.free_inodes);
        w.u32(self.block_bitmap.len() as u32);
        w.bytes(&self.block_bitmap);
        w.u32(self.inode_bitmap.len() as u32);
        w.bytes(&self.inode_bitmap);
        buf
    }

    /// Parses a group header; `None` on bad magic or malformed lengths.
    pub fn decode(buf: &[u8]) -> Option<CgHeader> {
        let mut r = Reader::new(buf);
        let magic = r.u32()?;
        if magic != CG_MAGIC {
            return None;
        }
        let cgx = r.u32()?;
        let free_blocks = r.u32()?;
        let free_inodes = r.u32()?;
        let bb_len = r.u32()? as usize;
        let block_bitmap = r.take(bb_len)?;
        let ib_len = r.u32()? as usize;
        let inode_bitmap = r.take(ib_len)?;
        Some(CgHeader {
            magic,
            cgx,
            free_blocks,
            free_inodes,
            block_bitmap,
            inode_bitmap,
        })
    }

    /// Whether data block `i` (group-relative) is allocated.
    pub fn block_allocated(&self, i: u32) -> bool {
        self.block_bitmap[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Marks data block `i` allocated; returns false if it already was.
    pub fn set_block(&mut self, i: u32) -> bool {
        let byte = &mut self.block_bitmap[(i / 8) as usize];
        let bit = 1u8 << (i % 8);
        if *byte & bit != 0 {
            return false;
        }
        *byte |= bit;
        self.free_blocks -= 1;
        true
    }

    /// Marks data block `i` free; returns false if it already was free.
    pub fn clear_block(&mut self, i: u32) -> bool {
        let byte = &mut self.block_bitmap[(i / 8) as usize];
        let bit = 1u8 << (i % 8);
        if *byte & bit == 0 {
            return false;
        }
        *byte &= !bit;
        self.free_blocks += 1;
        true
    }

    /// Whether inode slot `i` is allocated.
    pub fn inode_allocated(&self, i: u32) -> bool {
        self.inode_bitmap[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Marks inode slot `i` allocated; returns false if it already was.
    pub fn set_inode(&mut self, i: u32) -> bool {
        let byte = &mut self.inode_bitmap[(i / 8) as usize];
        let bit = 1u8 << (i % 8);
        if *byte & bit != 0 {
            return false;
        }
        *byte |= bit;
        self.free_inodes -= 1;
        true
    }

    /// Marks inode slot `i` free; returns false if it already was free.
    pub fn clear_inode(&mut self, i: u32) -> bool {
        let byte = &mut self.inode_bitmap[(i / 8) as usize];
        let bit = 1u8 << (i % 8);
        if *byte & bit == 0 {
            return false;
        }
        *byte &= !bit;
        self.free_inodes += 1;
        true
    }

    /// First free data block at or after `from`, wrapping within the
    /// group's `nbits` valid slots. Picks the same block a bit-by-bit
    /// probe of `block_allocated` would, but skips fully-allocated bytes
    /// whole — on a mostly-full group that is the difference between one
    /// probe per slot and one per eight.
    pub fn first_free_block(&self, from: u32, nbits: u32) -> Option<u32> {
        first_zero_bit(&self.block_bitmap, from, nbits)
            .or_else(|| first_zero_bit(&self.block_bitmap, 0, from))
    }

    /// First free inode slot among the group's `nbits` slots.
    pub fn first_free_inode(&self, nbits: u32) -> Option<u32> {
        first_zero_bit(&self.inode_bitmap, 0, nbits)
    }
}

/// Index of the first zero bit in `[lo, hi)`, byte at a time.
fn first_zero_bit(bitmap: &[u8], lo: u32, hi: u32) -> Option<u32> {
    if lo >= hi {
        return None;
    }
    let first = (lo / 8) as usize;
    let last = ((hi - 1) / 8) as usize;
    for (byte, &bits) in bitmap.iter().enumerate().take(last + 1).skip(first) {
        let mut free = !bits;
        if byte == first {
            free &= 0xFFu8 << (lo % 8);
        }
        let valid = hi - byte as u32 * 8; // Bits of this byte below `hi`.
        if valid < 8 {
            free &= (1u8 << valid) - 1;
        }
        if free != 0 {
            return Some(byte as u32 * 8 + free.trailing_zeros());
        }
    }
    None
}

/// File kind stored in the dinode mode field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Unallocated dinode slot.
    Free,
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link (target stored inline when short).
    Symlink,
}

impl FileKind {
    fn to_u16(self) -> u16 {
        match self {
            FileKind::Free => 0,
            FileKind::Regular => 1,
            FileKind::Directory => 2,
            FileKind::Symlink => 3,
        }
    }

    fn from_u16(v: u16) -> Option<FileKind> {
        Some(match v {
            0 => FileKind::Free,
            1 => FileKind::Regular,
            2 => FileKind::Directory,
            3 => FileKind::Symlink,
            _ => return None,
        })
    }
}

/// The on-disk inode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dinode {
    /// File kind.
    pub kind: FileKind,
    /// Hard link count.
    pub nlink: u16,
    /// File size in bytes.
    pub size: u64,
    /// Data blocks allocated (including indirect blocks), for `du`-style
    /// accounting and fsck cross-checks.
    pub blocks: u32,
    /// Direct block pointers (0 = hole/unallocated).
    pub direct: [u32; NDADDR],
    /// Single-indirect block pointer.
    pub indirect: u32,
    /// Double-indirect block pointer.
    pub double: u32,
    /// Inline file content ("data in the inode" / fast symlink). When
    /// `Some`, the pointer fields are unused and the content lives here.
    pub inline: Option<Vec<u8>>,
}

impl Dinode {
    /// An unallocated slot.
    pub fn free() -> Dinode {
        Dinode {
            kind: FileKind::Free,
            nlink: 0,
            size: 0,
            blocks: 0,
            direct: [0; NDADDR],
            indirect: 0,
            double: 0,
            inline: None,
        }
    }

    /// A fresh empty file/directory/symlink inode.
    pub fn new(kind: FileKind) -> Dinode {
        Dinode {
            kind,
            nlink: 1,
            ..Dinode::free()
        }
    }

    /// Serializes into exactly [`DINODE_SIZE`] bytes.
    pub fn encode(&self) -> [u8; DINODE_SIZE] {
        let mut buf = [0u8; DINODE_SIZE];
        let inline_len = self.inline.as_ref().map(|d| d.len()).unwrap_or(0);
        assert!(inline_len <= INLINE_MAX, "inline data too large");
        {
            let mut w = Writer::new(&mut buf);
            w.u16(self.kind.to_u16());
            w.u16(self.nlink);
            w.u64(self.size);
            w.u32(self.blocks);
            // Flag byte: 1 = pointer area holds inline data.
            w.u8(self.inline.is_some() as u8);
            w.u8(inline_len as u8);
            match &self.inline {
                Some(data) => {
                    w.bytes(data);
                }
                None => {
                    for d in self.direct {
                        w.u32(d);
                    }
                    w.u32(self.indirect);
                    w.u32(self.double);
                }
            }
        }
        buf
    }

    /// Parses [`DINODE_SIZE`] bytes; `None` on a malformed kind.
    pub fn decode(buf: &[u8]) -> Option<Dinode> {
        let mut r = Reader::new(buf);
        let kind = FileKind::from_u16(r.u16()?)?;
        let nlink = r.u16()?;
        let size = r.u64()?;
        let blocks = r.u32()?;
        let has_inline = r.u8()? != 0;
        let inline_len = r.u8()? as usize;
        let mut dinode = Dinode {
            kind,
            nlink,
            size,
            blocks,
            direct: [0; NDADDR],
            indirect: 0,
            double: 0,
            inline: None,
        };
        if has_inline {
            if inline_len > INLINE_MAX {
                return None;
            }
            dinode.inline = Some(r.take(inline_len)?);
        } else {
            for d in dinode.direct.iter_mut() {
                *d = r.u32()?;
            }
            dinode.indirect = r.u32()?;
            dinode.double = r.u32()?;
        }
        Some(dinode)
    }
}

// ---- little-endian packing helpers ----

struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    fn new(buf: &'a mut [u8]) -> Self {
        Writer { buf, pos: 0 }
    }

    fn u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf[self.pos..self.pos + v.len()].copy_from_slice(v);
        self.pos += v.len();
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take_arr()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take_arr()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take_arr()?))
    }

    fn take_arr<const N: usize>(&mut self) -> Option<[u8; N]> {
        let slice = self.buf.get(self.pos..self.pos + N)?;
        self.pos += N;
        Some(slice.try_into().unwrap())
    }

    fn take(&mut self, n: usize) -> Option<Vec<u8>> {
        let slice = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sb() -> Superblock {
        Superblock {
            magic: SB_MAGIC,
            total_blocks: 2 + 4 * 512,
            blocks_per_cg: 512,
            inodes_per_cg: 128,
            ncg: 4,
            minfree_pct: 10,
            rotdelay_ms: 4,
            maxcontig: 7,
            clean: true,
            free_blocks: 2000,
            free_inodes: 500,
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = sample_sb();
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf), Some(sb));
    }

    #[test]
    fn superblock_bad_magic_rejected() {
        let mut buf = sample_sb().encode();
        buf[0] ^= 0xff;
        assert_eq!(Superblock::decode(&buf), None);
    }

    #[test]
    fn superblock_geometry_helpers() {
        let sb = sample_sb();
        // 128 inodes / 64 per block = 2 inode blocks; +1 header = 3 meta.
        assert_eq!(sb.inode_blocks_per_cg(), 2);
        assert_eq!(sb.cg_meta_blocks(), 3);
        assert_eq!(sb.data_blocks_per_cg(), 509);
        assert_eq!(sb.cg_start(0), 2);
        assert_eq!(sb.cg_start(1), 2 + 512);
        assert_eq!(sb.cg_data_start(0), 5);
        assert!(!sb.is_data_block(0));
        assert!(!sb.is_data_block(2)); // cg header
        assert!(!sb.is_data_block(4)); // inode table
        assert!(sb.is_data_block(5));
        assert_eq!(sb.cg_of_block(5), Some(0));
        assert_eq!(sb.cg_of_block(2 + 512), Some(1));
        assert_eq!(sb.total_data_blocks(), 4 * 509);
        assert_eq!(sb.minfree_blocks(), 4 * 509 / 10);
    }

    #[test]
    fn inode_location() {
        let sb = sample_sb();
        // ino 0..63 in block cg_start+1; 64..127 in cg_start+2.
        assert_eq!(sb.inode_location(0), (3, 0));
        assert_eq!(sb.inode_location(63), (3, 63));
        assert_eq!(sb.inode_location(64), (4, 0));
        // Second group.
        assert_eq!(sb.inode_location(128), (2 + 512 + 1, 0));
    }

    #[test]
    fn cg_header_roundtrip_and_bitmaps() {
        let sb = sample_sb();
        let mut cg = CgHeader::empty(&sb, 1);
        assert!(cg.set_block(0));
        assert!(cg.set_block(100));
        assert!(!cg.set_block(100), "double alloc detected");
        assert!(cg.set_inode(5));
        assert_eq!(cg.free_blocks, sb.data_blocks_per_cg() - 2);
        assert_eq!(cg.free_inodes, 127);
        let buf = cg.encode();
        let back = CgHeader::decode(&buf).unwrap();
        assert_eq!(back, cg);
        assert!(back.block_allocated(100));
        assert!(!back.block_allocated(99));
        assert!(back.inode_allocated(5));
    }

    #[test]
    fn cg_clear_tracks_counts() {
        let sb = sample_sb();
        let mut cg = CgHeader::empty(&sb, 0);
        cg.set_block(7);
        assert!(cg.clear_block(7));
        assert!(!cg.clear_block(7), "double free detected");
        assert_eq!(cg.free_blocks, sb.data_blocks_per_cg());
    }

    #[test]
    fn dinode_roundtrip_pointers() {
        let mut d = Dinode::new(FileKind::Regular);
        d.size = 123456;
        d.blocks = 16;
        d.direct[0] = 100;
        d.direct[11] = 111;
        d.indirect = 200;
        d.double = 300;
        let buf = d.encode();
        assert_eq!(Dinode::decode(&buf), Some(d));
    }

    #[test]
    fn dinode_roundtrip_inline() {
        let mut d = Dinode::new(FileKind::Symlink);
        let target = b"/usr/lib/libc.so".to_vec();
        d.size = target.len() as u64;
        d.inline = Some(target);
        let buf = d.encode();
        assert_eq!(Dinode::decode(&buf), Some(d));
    }

    #[test]
    fn dinode_inline_max_fits() {
        let mut d = Dinode::new(FileKind::Regular);
        d.inline = Some(vec![0xab; INLINE_MAX]);
        d.size = INLINE_MAX as u64;
        let buf = d.encode();
        let back = Dinode::decode(&buf).unwrap();
        assert_eq!(back.inline.as_ref().unwrap().len(), INLINE_MAX);
    }

    #[test]
    fn free_dinode_is_all_zero_kind() {
        let d = Dinode::free();
        let buf = d.encode();
        let back = Dinode::decode(&buf).unwrap();
        assert_eq!(back.kind, FileKind::Free);
    }

    #[test]
    fn max_file_size_is_large() {
        // 12 + 2048 + 2048^2 blocks ≈ 32 GB at 8 KB blocks.
        assert!(max_file_blocks() * BLOCK_SIZE as u64 > 30 << 30);
    }
}
