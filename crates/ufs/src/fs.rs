//! Mount state: the in-core superblock, cylinder groups, inode cache,
//! metadata buffer cache, and the dirty-page cleaner.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use clufs::{BmapCache, DelayedWrite, FreeBehindPolicy, PrefetchPolicy, Tuning};
use diskmodel::{BlockDeviceExt, DiskOp, DiskRequest, SharedDevice};
use pagecache::{CleanRequest, PageCache, VnodeId};
use simkit::stats::{Counter, Histogram};
use simkit::{Cpu, Notify, Receiver, Sim, SimDuration};
use vfs::iopath::{FileStream, IoCosts, IoPath};
use vfs::{FsError, FsResult};

use crate::costs::CpuCosts;
use crate::layout::{CgHeader, Dinode, FileKind, Superblock, BLOCK_SIZE, SECTORS_PER_BLOCK};

/// Mount-time parameters.
#[derive(Clone)]
pub struct UfsParams {
    /// Policy switches and cluster sizing (Figure 9 presets live here).
    pub tuning: Tuning,
    /// CPU cost model.
    pub costs: CpuCosts,
    /// Free-behind thresholds.
    pub free_behind: FreeBehindPolicy,
    /// Further Work `B_ORDER`: metadata updates are issued asynchronously
    /// with ordering barriers instead of synchronously.
    pub ordered_metadata: bool,
    /// Blocks a file may allocate in one cylinder group before the
    /// allocator moves it to the next group (`fs_maxbpg`); `None` derives
    /// a quarter of the group size.
    pub maxbpg: Option<u32>,
    /// Further Work "data in the inode": keep files ≤ 56 bytes inline in
    /// the inode (like fast symlinks), served from the inode cache.
    pub inline_small: bool,
    /// Distinguishes page cache identities when several mounts share one
    /// cache.
    pub mount_id: u64,
}

impl UfsParams {
    /// Parameters for a given tuning with SPARCstation costs.
    pub fn with_tuning(tuning: Tuning) -> UfsParams {
        UfsParams {
            tuning,
            costs: CpuCosts::sparcstation_1(),
            free_behind: FreeBehindPolicy::sunos_411(tuning.free_behind),
            ordered_metadata: false,
            maxbpg: None,
            inline_small: false,
            mount_id: 1,
        }
    }

    /// Zero-CPU-cost parameters for logic tests.
    pub fn test(tuning: Tuning) -> UfsParams {
        UfsParams {
            costs: CpuCosts::free(),
            ..Self::with_tuning(tuning)
        }
    }
}

/// Mount-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct UfsStats {
    /// `getpage` invocations.
    pub getpage_calls: u64,
    /// `getpage` calls satisfied from the page cache.
    pub getpage_hits: u64,
    /// `bmap` translations performed (excluding bmap-cache hits).
    pub bmap_calls: u64,
    /// Translations served by the Further Work bmap cache.
    pub bmap_cache_hits: u64,
    /// `bmap` calls skipped by the `UFS_HOLE` optimization.
    pub bmap_skipped_hole_opt: u64,
    /// Synchronous cluster reads issued.
    pub sync_reads: u64,
    /// Read-ahead cluster reads issued.
    pub readaheads: u64,
    /// Blocks moved by all reads.
    pub blocks_read: u64,
    /// Cluster writes issued.
    pub cluster_writes: u64,
    /// Blocks moved by all writes.
    pub blocks_written: u64,
    /// Pages freed by free-behind.
    pub free_behinds: u64,
    /// Synchronous metadata writes (directory/inode updates).
    pub sync_meta_writes: u64,
    /// Ordered (B_ORDER) asynchronous metadata writes.
    pub ordered_meta_writes: u64,
    /// Pages written on behalf of the pageout daemon's cleaner.
    pub cleaner_pages: u64,
}

/// Registry handles mirroring [`UfsStats`] (and the policy observations the
/// paper's tables are built from) into `sim.stats()` under the `ufs.*` and
/// `core.*` namespaces. `ufs.free_behind_pages` is the I/O-bound-process
/// half of the free-behind comparison (`pageout.freed` is the daemon's).
pub(crate) struct UfsMetrics {
    pub(crate) getpage_calls: Counter,
    pub(crate) getpage_hits: Counter,
    pub(crate) bmap_calls: Counter,
    pub(crate) bmap_cache_hits: Counter,
    pub(crate) sync_reads: Counter,
    pub(crate) readaheads: Counter,
    /// Pages created by the read-ahead path.
    pub(crate) readahead_blocks: Counter,
    /// Read-ahead pages later returned by `getpage` (prefetch accuracy =
    /// used / issued blocks).
    pub(crate) readahead_used: Counter,
    pub(crate) blocks_read: Counter,
    pub(crate) cluster_writes: Counter,
    pub(crate) blocks_written: Counter,
    pub(crate) free_behind_pages: Counter,
    /// Blocks per cluster read, as issued to the disk.
    pub(crate) cluster_read_blocks: Histogram,
    /// Blocks per cluster write, as issued to the disk.
    pub(crate) cluster_write_blocks: Histogram,
    /// Contiguous extent length computed by `bmap` (capped at the I/O
    /// cluster size) — the allocator's achieved contiguity.
    pub(crate) extent_len_blocks: Histogram,
}

impl UfsMetrics {
    /// Cluster and extent lengths in blocks; maxcontig presets are 1, 7
    /// and 15 blocks, so power-of-two buckets up to 64 cover them.
    const LEN_EDGES: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

    fn new(sim: &Sim) -> UfsMetrics {
        let s = sim.stats();
        UfsMetrics {
            getpage_calls: s.counter("ufs.getpage_calls"),
            getpage_hits: s.counter("ufs.getpage_hits"),
            bmap_calls: s.counter("ufs.bmap_calls"),
            bmap_cache_hits: s.counter("ufs.bmap_cache_hits"),
            sync_reads: s.counter("ufs.sync_reads"),
            readaheads: s.counter("ufs.readaheads"),
            readahead_blocks: s.counter("ufs.readahead_blocks"),
            readahead_used: s.counter("ufs.readahead_used"),
            blocks_read: s.counter("ufs.blocks_read"),
            cluster_writes: s.counter("ufs.cluster_writes"),
            blocks_written: s.counter("ufs.blocks_written"),
            free_behind_pages: s.counter("ufs.free_behind_pages"),
            cluster_read_blocks: s.histogram("core.cluster_read_blocks", &Self::LEN_EDGES),
            cluster_write_blocks: s.histogram("core.cluster_write_blocks", &Self::LEN_EDGES),
            extent_len_blocks: s.histogram("ufs.extent_len_blocks", &Self::LEN_EDGES),
        }
    }
}

/// The in-core inode: dinode fields plus the paper's policy state.
pub struct Incore {
    /// Inode number.
    pub ino: u32,
    /// On-disk fields (authoritative while active).
    pub din: RefCell<Dinode>,
    /// Needs writing back.
    pub dirty: Cell<bool>,
    /// Delayed-write accumulator (`delayoff`/`delaylen`), in page units.
    pub dw: RefCell<DelayedWrite>,
    /// Per-open-file I/O identity: the stream label every request this
    /// file issues carries, the paper's write throttle, and the
    /// pending-write count used to quiesce before truncate/remove.
    pub io: Rc<FileStream>,
    /// Further Work extent-tuple cache.
    pub bmap_cache: RefCell<BmapCache>,
    /// Conservative "may have holes" flag for the UFS_HOLE optimization.
    pub may_have_holes: Cell<bool>,
    /// End offset of the last read, for sequential-mode detection in rdwr.
    pub last_read_end: Cell<u64>,
    /// Whether rdwr currently sees a sequential read pattern.
    pub seq_mode: Cell<bool>,
    /// Blocks allocated in the current cylinder group since the last
    /// allocator move (for `maxbpg`).
    pub alloc_run: Cell<u32>,
    /// Cylinder group the allocator is currently filling for this file.
    pub alloc_cg: Cell<u32>,
}

impl Incore {
    pub(crate) fn new(
        ino: u32,
        din: Dinode,
        sim: &Sim,
        tuning: &Tuning,
        vid: VnodeId,
    ) -> Rc<Incore> {
        Rc::new(Incore {
            ino,
            din: RefCell::new(din),
            dirty: Cell::new(false),
            dw: RefCell::new(DelayedWrite::new()),
            io: FileStream::new(sim, vid, tuning.write_limit),
            bmap_cache: RefCell::new(BmapCache::new(8)),
            may_have_holes: Cell::new(true),
            last_read_end: Cell::new(0),
            seq_mode: Cell::new(false),
            alloc_run: Cell::new(0),
            alloc_cg: Cell::new(u32::MAX),
        })
    }
}

pub(crate) struct UfsInner {
    pub(crate) sim: Sim,
    pub(crate) cpu: Cpu,
    pub(crate) disk: SharedDevice,
    pub(crate) cache: PageCache,
    pub(crate) params: UfsParams,
    pub(crate) sb: RefCell<Superblock>,
    pub(crate) cgs: RefCell<Vec<CgHeader>>,
    pub(crate) cgs_dirty: RefCell<Vec<bool>>,
    pub(crate) sb_dirty: Cell<bool>,
    /// Write-back cache of metadata blocks (inode table blocks, indirect
    /// blocks, directory blocks), keyed by physical block.
    pub(crate) meta: RefCell<HashMap<u64, Rc<RefCell<Vec<u8>>>>>,
    pub(crate) meta_dirty: RefCell<std::collections::BTreeSet<u64>>,
    pub(crate) inodes: RefCell<HashMap<u32, Rc<Incore>>>,
    pub(crate) stats: RefCell<UfsStats>,
    pub(crate) metrics: UfsMetrics,
    /// Shared I/O executor: resolves `IoIntent`s against the cache and
    /// disk, and tracks readahead-pending pages for prefetch accuracy.
    pub(crate) iopath: IoPath,
    /// Round-robin start for directory placement.
    pub(crate) next_dir_cg: Cell<u32>,
    /// Outstanding ordered metadata writes (B_ORDER mode).
    pub(crate) pending_meta_io: Cell<u32>,
    pub(crate) meta_quiesce: Notify,
}

/// A mounted UFS instance. Clones share the mount.
#[derive(Clone)]
pub struct Ufs {
    pub(crate) inner: Rc<UfsInner>,
}

impl Ufs {
    /// Mounts the file system on `disk`, reading the superblock and group
    /// headers. If `cleaner` is given (the pageout daemon's victim queue),
    /// a cleaner task is spawned that writes dirty victims via the
    /// clustered `putpage` path and frees them.
    pub async fn mount(
        sim: &Sim,
        cpu: &Cpu,
        cache: &PageCache,
        disk: &SharedDevice,
        params: UfsParams,
        cleaner: Option<Receiver<CleanRequest>>,
    ) -> FsResult<Ufs> {
        assert_eq!(
            cache.page_size(),
            BLOCK_SIZE,
            "this reproduction equates one page with one fs block"
        );
        let raw = disk
            .read(
                crate::layout::SB_BLOCK * SECTORS_PER_BLOCK as u64,
                SECTORS_PER_BLOCK,
            )
            .await;
        let mut sb = Superblock::decode(&raw).ok_or(FsError::Corrupt)?;
        let mut cgs = Vec::with_capacity(sb.ncg as usize);
        for cgx in 0..sb.ncg {
            let raw = disk
                .read(
                    sb.cg_start(cgx) * SECTORS_PER_BLOCK as u64,
                    SECTORS_PER_BLOCK,
                )
                .await;
            let cg = CgHeader::decode(&raw).ok_or(FsError::Corrupt)?;
            if cg.cgx != cgx {
                return Err(FsError::Corrupt);
            }
            cgs.push(cg);
        }
        sb.clean = false;
        let ncg = sb.ncg as usize;
        let iopath = IoPath::new(
            sim,
            cpu,
            disk,
            cache,
            IoCosts {
                io_setup: params.costs.io_setup,
                io_intr: params.costs.io_intr,
            },
        );
        iopath.set_retry(
            params.tuning.io_retry_max,
            params.tuning.io_retry_backoff_ms,
        );
        // The per-stream prefetch engines live in the executor; the
        // `readahead` ablation switch overrides the policy to Off.
        iopath.set_prefetch(
            if params.tuning.readahead {
                params.tuning.prefetch
            } else {
                PrefetchPolicy::Off
            },
            params.tuning.io_cluster_blocks(),
        );
        let ufs = Ufs {
            inner: Rc::new(UfsInner {
                sim: sim.clone(),
                cpu: cpu.clone(),
                disk: disk.clone(),
                cache: cache.clone(),
                params,
                sb: RefCell::new(sb),
                cgs: RefCell::new(cgs),
                cgs_dirty: RefCell::new(vec![false; ncg]),
                sb_dirty: Cell::new(true),
                meta: RefCell::new(HashMap::new()),
                meta_dirty: RefCell::new(std::collections::BTreeSet::new()),
                inodes: RefCell::new(HashMap::new()),
                stats: RefCell::new(UfsStats::default()),
                metrics: UfsMetrics::new(sim),
                iopath,
                next_dir_cg: Cell::new(0),
                pending_meta_io: Cell::new(0),
                meta_quiesce: Notify::new(),
            }),
        };
        // Persist the cleared clean-flag immediately, like a real mount:
        // a crash from here on must be visible to fsck.
        ufs.flush_maps(false).await;
        if let Some(rx) = cleaner {
            let fs = ufs.clone();
            sim.spawn(async move { fs.cleaner_loop(rx).await });
        }
        Ok(ufs)
    }

    /// The virtual clock.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Mount statistics snapshot.
    pub fn stats(&self) -> UfsStats {
        *self.inner.stats.borrow()
    }

    /// Resets mount statistics.
    pub fn reset_stats(&self) {
        *self.inner.stats.borrow_mut() = UfsStats::default();
    }

    /// The active tuning.
    pub fn tuning(&self) -> Tuning {
        self.inner.params.tuning
    }

    /// Free data blocks (file system wide).
    pub fn free_blocks(&self) -> u64 {
        self.inner.sb.borrow().free_blocks
    }

    /// Total data-block capacity.
    pub fn capacity_blocks(&self) -> u64 {
        self.inner.sb.borrow().total_data_blocks()
    }

    /// One block's media transfer time in milliseconds (for rotdelay →
    /// blocks conversion).
    pub(crate) fn block_time_ms(&self) -> f64 {
        (SECTORS_PER_BLOCK as u64 * self.inner.disk.sector_time_ns()) as f64 / 1e6
    }

    /// Placement gap in blocks derived from the tuning's rotdelay.
    pub(crate) fn gap_blocks(&self) -> u32 {
        self.inner
            .params
            .tuning
            .rotdelay_blocks(self.block_time_ms())
    }

    /// Page-cache identity for an inode.
    pub(crate) fn vid(&self, ino: u32) -> VnodeId {
        (self.inner.params.mount_id << 32) | ino as u64
    }

    pub(crate) async fn charge(&self, tag: &'static str, d: SimDuration) {
        self.inner.cpu.charge(tag, d).await;
    }

    // ---- raw block I/O ----

    pub(crate) async fn read_block_raw(&self, pbn: u64) -> Vec<u8> {
        self.charge("io_setup", self.inner.params.costs.io_setup)
            .await;
        let data = self
            .inner
            .disk
            .read(pbn * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK)
            .await;
        self.charge("io_intr", self.inner.params.costs.io_intr)
            .await;
        data
    }

    pub(crate) async fn write_block_raw(&self, pbn: u64, data: Vec<u8>) {
        self.charge("io_setup", self.inner.params.costs.io_setup)
            .await;
        self.inner
            .disk
            .write(pbn * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK, data)
            .await;
        self.charge("io_intr", self.inner.params.costs.io_intr)
            .await;
    }

    // ---- metadata buffer cache ----

    /// Fetches a metadata block through the write-back cache.
    pub(crate) async fn meta_get(&self, pbn: u64) -> Rc<RefCell<Vec<u8>>> {
        let hit = self.inner.meta.borrow().get(&pbn).cloned();
        match hit {
            Some(b) => b,
            None => {
                let data = self.read_block_raw(pbn).await;
                let cell = Rc::new(RefCell::new(data));
                self.inner.meta.borrow_mut().insert(pbn, Rc::clone(&cell));
                cell
            }
        }
    }

    /// Marks a cached metadata block dirty (flushed on `sync`).
    pub(crate) fn meta_mark_dirty(&self, pbn: u64) {
        debug_assert!(self.inner.meta.borrow().contains_key(&pbn));
        self.inner.meta_dirty.borrow_mut().insert(pbn);
    }

    /// Writes a metadata block through: synchronously (classic UFS) or as
    /// an ordered asynchronous request (the B_ORDER Further Work mode).
    pub(crate) async fn meta_write_through(&self, pbn: u64) {
        let cell = self
            .inner
            .meta
            .borrow()
            .get(&pbn)
            .cloned()
            .expect("write-through of uncached block");
        let data = cell.borrow().clone();
        self.inner.meta_dirty.borrow_mut().remove(&pbn);
        if self.inner.params.ordered_metadata {
            self.inner.stats.borrow_mut().ordered_meta_writes += 1;
            self.charge("io_setup", self.inner.params.costs.io_setup)
                .await;
            let handle = self.inner.disk.submit(DiskRequest {
                op: DiskOp::Write,
                lba: pbn * SECTORS_PER_BLOCK as u64,
                nsect: SECTORS_PER_BLOCK,
                data: Some(data),
                ordered: true,
                stream: 0,
                span: simkit::SpanId::NONE,
            });
            let fs = self.clone();
            self.inner
                .pending_meta_io
                .set(self.inner.pending_meta_io.get() + 1);
            self.inner.sim.spawn(async move {
                handle.wait().await;
                fs.charge("io_intr", fs.inner.params.costs.io_intr).await;
                let n = fs.inner.pending_meta_io.get();
                fs.inner.pending_meta_io.set(n - 1);
                if n == 1 {
                    fs.inner.meta_quiesce.notify_all();
                }
            });
        } else {
            self.inner.stats.borrow_mut().sync_meta_writes += 1;
            self.write_block_raw(pbn, data).await;
        }
    }

    // ---- dinode I/O ----

    /// Loads (or returns the active) in-core inode.
    pub(crate) async fn iget(&self, ino: u32) -> FsResult<Rc<Incore>> {
        if let Some(ip) = self.inner.inodes.borrow().get(&ino) {
            return Ok(Rc::clone(ip));
        }
        let (pbn, idx) = self.inner.sb.borrow().inode_location(ino);
        let block = self.meta_get(pbn).await;
        let din = {
            let b = block.borrow();
            Dinode::decode(&b[idx * crate::layout::DINODE_SIZE..]).ok_or(FsError::Corrupt)?
        };
        if din.kind == FileKind::Free {
            return Err(FsError::NotFound);
        }
        let ip = Incore::new(
            ino,
            din,
            &self.inner.sim,
            &self.inner.params.tuning,
            self.vid(ino),
        );
        self.inner.inodes.borrow_mut().insert(ino, Rc::clone(&ip));
        Ok(ip)
    }

    /// Serializes the in-core inode into its metadata block; `through`
    /// forces the block to disk (sync or ordered).
    pub(crate) async fn iflush(&self, ip: &Incore, through: bool) {
        let (pbn, idx) = self.inner.sb.borrow().inode_location(ip.ino);
        let block = self.meta_get(pbn).await;
        {
            let mut b = block.borrow_mut();
            let bytes = ip.din.borrow().encode();
            let off = idx * crate::layout::DINODE_SIZE;
            b[off..off + crate::layout::DINODE_SIZE].copy_from_slice(&bytes);
        }
        ip.dirty.set(false);
        self.meta_mark_dirty(pbn);
        if through {
            self.meta_write_through(pbn).await;
        }
    }

    /// Drops an inode from the in-core table (after remove, or for cache
    /// shootdown in tests). Pending I/O must be quiesced by the caller.
    pub(crate) fn iforget(&self, ino: u32) {
        self.inner.inodes.borrow_mut().remove(&ino);
    }

    // ---- mount-wide flush ----

    /// Flushes every dirty page, delayed write, inode, metadata block, and
    /// the allocation maps; waits for all I/O to settle.
    pub async fn sync_all(&self) -> FsResult<()> {
        // 1. Per-inode: flush delayed writes and any remaining dirty pages.
        let ips: Vec<Rc<Incore>> = self.inner.inodes.borrow().values().cloned().collect();
        for ip in &ips {
            self.fsync_inode(ip).await?;
        }
        // 2. Metadata blocks.
        let dirty: Vec<u64> = self.inner.meta_dirty.borrow().iter().copied().collect();
        for pbn in dirty {
            self.meta_write_through(pbn).await;
        }
        // 3. Cylinder groups and superblock.
        self.flush_maps(false).await;
        // 4. Wait for ordered metadata writes to land.
        while self.inner.pending_meta_io.get() > 0 {
            self.inner.meta_quiesce.wait().await;
        }
        Ok(())
    }

    /// Writes the cg headers and superblock. With `mark_clean`, sets the
    /// clean-unmount flag first. Public so tools and tests can checkpoint
    /// the allocation maps without a full unmount.
    pub async fn flush_maps(&self, mark_clean: bool) {
        if mark_clean {
            self.inner.sb.borrow_mut().clean = true;
            self.inner.sb_dirty.set(true);
        }
        let ncg = self.inner.sb.borrow().ncg;
        for cgx in 0..ncg {
            let dirty = self.inner.cgs_dirty.borrow()[cgx as usize];
            if dirty {
                let data = self.inner.cgs.borrow()[cgx as usize].encode();
                let start = self.inner.sb.borrow().cg_start(cgx);
                self.write_block_raw(start, data).await;
                self.inner.cgs_dirty.borrow_mut()[cgx as usize] = false;
            }
        }
        if self.inner.sb_dirty.get() {
            let data = self.inner.sb.borrow().encode();
            self.write_block_raw(crate::layout::SB_BLOCK, data).await;
            self.inner.sb_dirty.set(false);
        }
    }

    /// Cleanly unmounts: sync everything and mark the superblock clean.
    pub async fn unmount(self) -> FsResult<()> {
        self.sync_all().await?;
        self.flush_maps(true).await;
        Ok(())
    }

    // ---- the pageout cleaner ----

    /// Services dirty victims chosen by the pageout daemon: each is written
    /// through the (possibly clustering) putpage path and then freed.
    async fn cleaner_loop(&self, mut rx: Receiver<CleanRequest>) {
        while let Some(req) = rx.recv().await {
            let ino = (req.key.vnode & 0xffff_ffff) as u32;
            let mount = req.key.vnode >> 32;
            if mount != self.inner.params.mount_id {
                continue;
            }
            let ip = match self.inner.inodes.borrow().get(&ino) {
                Some(ip) => Rc::clone(ip),
                None => continue, // Inode gone; page will be invalidated.
            };
            let page = req.key.offset / BLOCK_SIZE as u64;
            // The victim may have been cleaned or freed since it was chosen.
            let key = req.key;
            let still_dirty = self
                .inner
                .cache
                .lookup(key)
                .map(|id| self.inner.cache.is_dirty(id))
                .unwrap_or(false);
            if !still_dirty {
                continue;
            }
            self.inner.stats.borrow_mut().cleaner_pages += 1;
            // Cluster around the victim: the whole delayed run if the
            // victim falls inside it, else just the page run.
            let flush = {
                let mut dw = ip.dw.borrow_mut();
                match dw.pending() {
                    Some(r) if r.contains(&page) => {
                        dw.flush();
                        r
                    }
                    _ => page..page + 1,
                }
            };
            let _ = self
                .flush_page_range(&ip, flush, vfs::iopath::WriteReason::Cleaner, true)
                .await;
        }
    }
}
