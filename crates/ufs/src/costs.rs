//! The CPU cost model: what each traversal of the file system code costs.
//!
//! "Measuring the existing UFS showed that about half of a 12MIPS CPU was
//! used to get half of the disk bandwidth of a 1.5MB/second disk." The
//! clustering argument is that these per-call costs are amortized over
//! clusters instead of blocks. The constants below are calibrated so that
//! the block-at-a-time configuration reproduces that measurement (roughly
//! 5 ms of CPU per 8 KB block moved through `read(2)`, dominated by the
//! copy), and so Figure 12's mmap comparison lands near the paper's 25%
//! CPU saving.

use simkit::SimDuration;

/// Per-operation CPU charges for the simulated kernel.
#[derive(Clone, Copy, Debug)]
pub struct CpuCosts {
    /// Entering and exiting `read(2)`/`write(2)` (per call).
    pub syscall: SimDuration,
    /// A page fault resolved through the object chain into `getpage`
    /// (address space → segment → vnode), when the page must be found or
    /// created.
    pub fault: SimDuration,
    /// A `getpage` that finds the page in the cache with a valid
    /// translation (the cheap revisit path).
    pub page_hit: SimDuration,
    /// One `bmap` translation using the inode's direct pointers.
    pub bmap: SimDuration,
    /// Additional cost when `bmap` must go through an indirect block.
    pub bmap_indirect: SimDuration,
    /// Building and issuing one disk request (driver entry, `disksort`,
    /// command setup).
    pub io_setup: SimDuration,
    /// Fielding one disk completion interrupt.
    pub io_intr: SimDuration,
    /// Kernel map/unmap of one file block in `ufs_rdwr`.
    pub map_unmap: SimDuration,
    /// One `putpage` traversal.
    pub putpage: SimDuration,
    /// Copy rate between kernel and user space, in bytes per second
    /// (`copyin`/`copyout`).
    pub copy_bytes_per_sec: f64,
    /// Block allocation (bitmap search + cg update), beyond the bmap cost.
    pub alloc: SimDuration,
    /// Directory entry scan/update per block examined.
    pub dir_block: SimDuration,
}

impl CpuCosts {
    /// Calibrated for the paper's 20 MHz / ~12 MIPS SPARCstation 1.
    pub fn sparcstation_1() -> CpuCosts {
        CpuCosts {
            syscall: SimDuration::from_micros(150),
            fault: SimDuration::from_micros(1400),
            page_hit: SimDuration::from_micros(1150),
            bmap: SimDuration::from_micros(50),
            bmap_indirect: SimDuration::from_micros(50),
            io_setup: SimDuration::from_micros(150),
            io_intr: SimDuration::from_micros(100),
            map_unmap: SimDuration::from_micros(400),
            putpage: SimDuration::from_micros(300),
            copy_bytes_per_sec: 6.0e6, // ~6 MB/s kernel-user copy on a SS1.
            alloc: SimDuration::from_micros(150),
            dir_block: SimDuration::from_micros(100),
        }
    }

    /// A free CPU (all charges zero) for tests that only exercise logic.
    pub fn free() -> CpuCosts {
        CpuCosts {
            syscall: SimDuration::ZERO,
            fault: SimDuration::ZERO,
            page_hit: SimDuration::ZERO,
            bmap: SimDuration::ZERO,
            bmap_indirect: SimDuration::ZERO,
            io_setup: SimDuration::ZERO,
            io_intr: SimDuration::ZERO,
            map_unmap: SimDuration::ZERO,
            putpage: SimDuration::ZERO,
            copy_bytes_per_sec: f64::INFINITY,
            alloc: SimDuration::ZERO,
            dir_block: SimDuration::ZERO,
        }
    }

    /// Copy charge for `bytes` of copyin/copyout.
    pub fn copy(&self, bytes: usize) -> SimDuration {
        if self.copy_bytes_per_sec.is_infinite() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.copy_bytes_per_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_read_cpu_cost_matches_paper_scale() {
        // Old path, one 8 KB block through read(2): fault + bmap + two I/O
        // setups (block + read-ahead) + interrupts + map/unmap + copy.
        // The paper implies ~5 ms of CPU per 10.7 ms block time (50% CPU at
        // half bandwidth).
        let c = CpuCosts::sparcstation_1();
        let per_block = c.fault
            + c.bmap * 2
            + c.io_setup * 2
            + c.io_intr * 2
            + c.map_unmap
            + c.putpage
            + c.copy(8192);
        let ms = per_block.as_millis_f64();
        assert!(
            (3.0..7.0).contains(&ms),
            "per-block CPU {ms:.2} ms outside the calibration band"
        );
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let c = CpuCosts::sparcstation_1();
        assert_eq!(c.copy(0), SimDuration::ZERO);
        let one = c.copy(8192);
        let four = c.copy(4 * 8192);
        let diff = (one * 4).as_nanos().abs_diff(four.as_nanos());
        assert!(diff <= 4, "linear within rounding: {one} * 4 vs {four}");
    }

    #[test]
    fn free_costs_are_zero() {
        let c = CpuCosts::free();
        assert_eq!(c.copy(1 << 20), SimDuration::ZERO);
        assert_eq!(c.syscall, SimDuration::ZERO);
    }
}
