//! # ufs — Sun's UNIX File System, with the paper's clustering enhancements
//!
//! A working FFS-style file system over the simulated disk: cylinder
//! groups, dinodes with direct/indirect/double-indirect pointers, the FFS
//! allocator with the `rotdelay`/`maxcontig` placement policy, directories,
//! `mkfs` and `fsck` — plus **both** generations of the I/O path:
//!
//! - the old SunOS 4.1 block-at-a-time `getpage`/`putpage` with per-block
//!   read-ahead (Figures 2–3), and
//! - the new 4.1.1 clustered path (Figures 6–8), built on the policy
//!   engines in the `clufs` crate: `bmap` with the length extension,
//!   cluster read-ahead, delayed-write accumulation, free-behind, and the
//!   per-file write limit.
//!
//! The paths are selected by [`clufs::Tuning`] at mount time, exactly like
//! the paper's instrumented kernel. **The on-disk format is identical under
//! both** — the paper's central constraint.

pub mod alloc;
pub mod bmap;
pub mod costs;
pub mod dir;
pub mod fs;
pub mod fsck;
pub mod layout;
pub mod mkfs;
pub mod vnops;

pub use costs::CpuCosts;
pub use fs::{Incore, Ufs, UfsParams, UfsStats};
pub use fsck::{fsck, fsck_repair, FsckReport};
pub use layout::{Dinode, FileKind, Superblock, BLOCK_SIZE};
pub use mkfs::{mkfs, MkfsOptions};
pub use vnops::UfsFile;

use clufs::Tuning;
use diskmodel::{Disk, DiskParams, SharedDevice};
use pagecache::{PageCache, PageCacheParams, PageoutDaemon, PageoutParams};
use simkit::{Cpu, Sim};
use std::rc::Rc;
use vfs::FsResult;

/// Everything a simulated world needs: clock, CPU, disk, page cache,
/// pageout daemon, and a mounted UFS.
pub struct World {
    /// The executor/clock.
    pub sim: Sim,
    /// The CPU cost account.
    pub cpu: Cpu,
    /// The block device (a single drive or a `volmgr` array).
    pub disk: SharedDevice,
    /// The unified page cache.
    pub cache: PageCache,
    /// The pageout daemon handle.
    pub daemon: PageoutDaemon,
    /// The mounted file system.
    pub fs: Ufs,
}

/// Builds a freshly formatted, mounted world — the common test/benchmark
/// preamble. Must be called inside `sim.run_until` (it performs I/O).
pub async fn build_world(
    sim: &Sim,
    disk_params: DiskParams,
    cache_params: PageCacheParams,
    mkfs_opts: MkfsOptions,
    ufs_params: UfsParams,
) -> FsResult<World> {
    let disk: SharedDevice = Rc::new(Disk::new(sim, disk_params));
    build_world_on(sim, disk, cache_params, mkfs_opts, ufs_params).await
}

/// Like [`build_world`], but mounts on an existing [`SharedDevice`] — a
/// single drive or a `volmgr` RAID array.
pub async fn build_world_on(
    sim: &Sim,
    disk: SharedDevice,
    cache_params: PageCacheParams,
    mkfs_opts: MkfsOptions,
    ufs_params: UfsParams,
) -> FsResult<World> {
    let cpu = Cpu::new(sim);
    let cache = PageCache::new(sim, cache_params);
    mkfs::mkfs(sim, &*disk, mkfs_opts).await?;
    let (daemon, cleaner_rx) = PageoutDaemon::spawn(
        sim,
        &cache,
        Some(cpu.clone()),
        PageoutParams::sparcstation(),
    );
    let fs = Ufs::mount(sim, &cpu, &cache, &disk, ufs_params, Some(cleaner_rx)).await?;
    Ok(World {
        sim: sim.clone(),
        cpu,
        disk,
        cache,
        daemon,
        fs,
    })
}

/// A small-world builder for unit tests: small disk, small cache, zero CPU
/// costs, and the given tuning.
pub async fn build_test_world(sim: &Sim, tuning: Tuning) -> FsResult<World> {
    build_world(
        sim,
        DiskParams::small_test(),
        PageCacheParams::small_test(),
        MkfsOptions::small_test(),
        UfsParams::test(tuning),
    )
    .await
}
