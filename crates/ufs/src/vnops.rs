//! The vnode operations: `rdwr`, `getpage`, `putpage` — with both the old
//! (SunOS 4.1, block-at-a-time) and new (4.1.1, clustered) code paths,
//! selected by the mount's tuning, exactly like the paper's test kernel.

use std::rc::Rc;

use clufs::{PrefetchPolicy, WriteAction};
use pagecache::{PageId, PageKey};
use simkit::SpanId;
use vfs::iopath::{
    BlockMap, Executed, FreeBehind, IoIntent, ReadCluster, ReadReason, ReadRuns, WriteCluster,
    WriteReason,
};
use vfs::{AccessMode, FileSystem, FsError, FsResult, StreamId, Vnode, VnodeId};

use crate::fs::{Incore, Ufs};
use crate::layout::{Dinode, FileKind, BLOCK_SIZE, INLINE_MAX};

/// [`BlockMap`] view of one UFS file: extents come from `bmap` (with its
/// cache and hole handling), the transfer cap from the mount's tuning.
struct UfsMap<'a> {
    fs: &'a Ufs,
    ip: &'a Rc<Incore>,
}

impl BlockMap for UfsMap<'_> {
    async fn extent(&self, lbn: u64, cap: u32) -> FsResult<Option<(u32, u32)>> {
        self.fs.bmap_extent(self.ip, lbn, cap).await
    }

    fn max_cluster(&self) -> u32 {
        self.fs.inner.params.tuning.io_cluster_blocks()
    }
}

/// An open UFS file.
pub struct UfsFile {
    pub(crate) fs: Ufs,
    pub(crate) ip: Rc<Incore>,
}

impl UfsFile {
    /// The in-core inode number.
    pub fn ino(&self) -> u32 {
        self.ip.ino
    }

    /// Logical→physical extents of this file: `(lbn, pbn, len)` runs of
    /// physically contiguous blocks (the allocator-contiguity experiment).
    pub async fn extents(&self) -> FsResult<Vec<(u64, u64, u32)>> {
        let blocks = self.fs.blocks_of(&self.ip).await?;
        let mut out: Vec<(u64, u64, u32)> = Vec::new();
        for (lbn, pbn) in blocks {
            match out.last_mut() {
                Some((llbn, lpbn, len))
                    if *llbn + *len as u64 == lbn && *lpbn + *len as u64 == pbn as u64 =>
                {
                    *len += 1;
                }
                _ => out.push((lbn, pbn as u64, 1)),
            }
        }
        Ok(out)
    }
}

impl Ufs {
    fn eof_blocks(ip: &Incore) -> u64 {
        ip.din.borrow().size.div_ceil(BLOCK_SIZE as u64)
    }

    fn page_key(&self, ip: &Incore, lbn: u64) -> PageKey {
        PageKey {
            vnode: self.vid(ip.ino),
            offset: lbn * BLOCK_SIZE as u64,
        }
    }

    /// Effective cluster length at `lbn`: bmap contiguity, capped by the
    /// tuning's I/O cluster size and the end of file. Returns
    /// `(pbn, len)`; `None` is a hole (or past EOF).
    async fn effective_cluster(
        &self,
        ip: &Incore,
        lbn: u64,
        eof_blocks: u64,
    ) -> FsResult<Option<(u32, u32)>> {
        if lbn >= eof_blocks {
            return Ok(None);
        }
        let cap = self
            .inner
            .params
            .tuning
            .io_cluster_blocks()
            .min((eof_blocks - lbn) as u32);
        self.bmap_extent(ip, lbn, cap).await
    }

    /// `ufs_getpage`: returns the (filled, non-busy) page for logical block
    /// `lbn`, driving the read-ahead machinery (Figures 2, 3 and 6).
    ///
    /// `hint_blocks` is the Further Work request-size hint from `rdwr`
    /// (0 = none).
    pub(crate) async fn getpage(
        &self,
        ip: &Rc<Incore>,
        lbn: u64,
        hint_blocks: u32,
    ) -> FsResult<PageId> {
        self.getpage_traced(ip, lbn, hint_blocks, SpanId::NONE)
            .await
    }

    /// [`Ufs::getpage`] with its `fs.getpage` trace span nested under
    /// `parent`. The span brackets the whole fault, including retries.
    pub(crate) async fn getpage_traced(
        &self,
        ip: &Rc<Incore>,
        lbn: u64,
        hint_blocks: u32,
        parent: SpanId,
    ) -> FsResult<PageId> {
        let tracer = self.inner.sim.tracer();
        let span = tracer.start("fs.getpage", ip.io.id().as_u32(), parent);
        tracer.arg(span, "lbn", lbn);
        let r = self.getpage_inner(ip, lbn, hint_blocks, span).await;
        self.inner.sim.tracer().end(span);
        r
    }

    async fn getpage_inner(
        &self,
        ip: &Rc<Incore>,
        lbn: u64,
        hint_blocks: u32,
        span: SpanId,
    ) -> FsResult<PageId> {
        let costs = self.inner.params.costs;
        self.inner.stats.borrow_mut().getpage_calls += 1;
        self.inner.metrics.getpage_calls.inc();
        let eof_blocks = Self::eof_blocks(ip);
        assert!(lbn < eof_blocks, "getpage beyond EOF");
        let key = self.page_key(ip, lbn);
        let cached = self
            .inner
            .cache
            .lookup_traced(key, ip.io.id().as_u32(), span);
        if cached.is_some() {
            self.inner.stats.borrow_mut().getpage_hits += 1;
            self.inner.metrics.getpage_hits.inc();
            if self.inner.iopath.take_ra_pending(key) {
                self.inner.metrics.readahead_used.inc();
            }
            self.charge("fault", costs.page_hit).await;
        } else {
            self.charge("fault", costs.fault).await;
        }

        // Figure 2: bmap is called even when the page is in memory, because
        // getpage must know whether the page has backing store (holes). The
        // UFS_HOLE Further Work item skips it for files known hole-free.
        let mut known: Vec<(u64, Option<(u32, u32)>)> = Vec::new();
        if cached.is_some() {
            if self.inner.params.tuning.ufs_hole_opt && !ip.may_have_holes.get() {
                self.inner.stats.borrow_mut().bmap_skipped_hole_opt += 1;
            } else {
                let v = self.effective_cluster(ip, lbn, eof_blocks).await?;
                known.push((lbn, v));
            }
        }

        // Plan I/O through the prefetch engine. Cluster lengths are
        // resolved lazily: the engine is dry-run on a clone until every
        // probe it makes is known (the paper's predictor makes at most
        // two — the faulting block's cluster and the read-ahead cluster;
        // the adaptive one probes each predicted start), then committed.
        // Quiet cached faults therefore cost no extra bmap work.
        let plan = loop {
            let missing = std::cell::Cell::new(None);
            let dry = {
                let lookup = |probe: u64| -> u32 {
                    match known.iter().find(|(p, _)| *p == probe) {
                        Some((_, v)) => v.map(|(_, l)| l).unwrap_or(0),
                        None => {
                            missing.set(Some(probe));
                            0
                        }
                    }
                };
                self.inner.iopath.prefetch_dry(
                    ip.io.id(),
                    lbn,
                    cached.is_some(),
                    lookup,
                    hint_blocks,
                )
            };
            match missing.get() {
                Some(probe) => {
                    let v = self.effective_cluster(ip, probe, eof_blocks).await?;
                    known.push((probe, v));
                }
                None => {
                    // Commit the state transition with fully-known probes.
                    let lookup = |probe: u64| -> u32 {
                        known
                            .iter()
                            .find(|(p, _)| *p == probe)
                            .and_then(|(_, v)| v.map(|(_, l)| l))
                            .unwrap_or(0)
                    };
                    let committed = self.inner.iopath.prefetch_commit(
                        ip.io.id(),
                        lbn,
                        cached.is_some(),
                        lookup,
                        hint_blocks,
                    );
                    debug_assert_eq!(committed, dry);
                    break committed;
                }
            }
        };
        let req_cluster = known.iter().find(|(p, _)| *p == lbn).and_then(|(_, v)| *v);
        let next_cluster = plan
            .runs
            .first()
            .and_then(|run| known.iter().find(|(p, _)| *p == run.lbn))
            .and_then(|(_, v)| *v);

        // Issue the synchronous read (if the page is absent) and the
        // read-ahead BEFORE waiting, so both requests queue at the disk
        // together.
        let map = UfsMap { fs: self, ip };
        let mut sync_io: Option<vfs::iopath::ClusterRead> = None;
        if cached.is_none() {
            match req_cluster {
                None => {
                    // A hole: deliver a zero-filled page with no I/O.
                    let id = self
                        .inner
                        .cache
                        .create_traced(key, ip.io.id().as_u32(), span)
                        .await;
                    self.inner.cache.unbusy(id);
                    return Ok(id);
                }
                Some((pbn, _len)) => {
                    let run = plan.sync.expect("uncached non-hole access plans a read");
                    debug_assert_eq!(run.lbn, lbn);
                    let intent = IoIntent::ReadCluster(ReadCluster {
                        lbn: run.lbn,
                        pbn,
                        len: run.blocks,
                        reason: ReadReason::Demand,
                    });
                    let io = match self
                        .inner
                        .iopath
                        .execute_traced(&ip.io, &map, intent, span)
                        .await?
                    {
                        Executed::ReadIssued(io) => io,
                        _ => unreachable!("demand reads are issued"),
                    };
                    let n = io.blocks() as u64;
                    {
                        let mut stats = self.inner.stats.borrow_mut();
                        stats.sync_reads += 1;
                        stats.blocks_read += n;
                    }
                    self.inner.metrics.sync_reads.inc();
                    self.inner.metrics.blocks_read.add(n);
                    self.inner.metrics.cluster_read_blocks.observe(n);
                    sync_io = Some(io);
                }
            }
        }
        let adaptive = self.inner.params.tuning.readahead
            && self.inner.params.tuning.prefetch == PrefetchPolicy::Adaptive;
        if adaptive {
            // Adaptive runs carry no physical address; `ReadRuns` resolves
            // extents itself (and applies the data-sieving pattern, if any).
            for run in &plan.runs {
                let intent = IoIntent::ReadRuns(ReadRuns {
                    lbn: run.lbn,
                    len: run.blocks,
                    reason: ReadReason::Readahead,
                    sieve: run.sieve,
                });
                if let Executed::ReadaheadIssued { blocks } =
                    self.inner.iopath.execute(&ip.io, &map, intent).await?
                {
                    {
                        let mut stats = self.inner.stats.borrow_mut();
                        stats.readaheads += 1;
                        stats.blocks_read += blocks as u64;
                    }
                    self.inner.metrics.readaheads.inc();
                    self.inner.metrics.readahead_blocks.add(blocks as u64);
                    self.inner.metrics.blocks_read.add(blocks as u64);
                    self.inner
                        .metrics
                        .cluster_read_blocks
                        .observe(blocks as u64);
                }
            }
        } else if let Some(run) = plan.runs.first() {
            if let Some((ra_pbn, _)) = next_cluster {
                let intent = IoIntent::ReadCluster(ReadCluster {
                    lbn: run.lbn,
                    pbn: ra_pbn,
                    len: run.blocks,
                    reason: ReadReason::Readahead,
                });
                if let Executed::ReadaheadIssued { blocks } =
                    self.inner.iopath.execute(&ip.io, &map, intent).await?
                {
                    {
                        let mut stats = self.inner.stats.borrow_mut();
                        stats.readaheads += 1;
                        stats.blocks_read += blocks as u64;
                    }
                    self.inner.metrics.readaheads.inc();
                    self.inner.metrics.readahead_blocks.add(blocks as u64);
                    self.inner.metrics.blocks_read.add(blocks as u64);
                    self.inner
                        .metrics
                        .cluster_read_blocks
                        .observe(blocks as u64);
                }
            }
        }

        match (cached, sync_io) {
            (Some(id), _) => {
                // The page was cached when we looked, but planning the I/O
                // involved awaits (CPU charges, bmap, read-ahead page
                // allocation), during which the pageout daemon may have
                // evicted and recycled it. Re-resolve; if it vanished,
                // retry the whole getpage — the classic pagein retry loop.
                let current = if self.inner.cache.is_current(id) {
                    Some(id)
                } else {
                    self.inner.cache.lookup(key)
                };
                match current {
                    Some(id) => {
                        // Possibly still being read ahead: wait out the I/O.
                        self.inner.cache.wait_unbusy(id).await;
                        if self.inner.cache.is_current(id) {
                            self.inner.cache.set_referenced(id);
                            Ok(id)
                        } else {
                            Box::pin(self.getpage_traced(ip, lbn, hint_blocks, span)).await
                        }
                    }
                    None => Box::pin(self.getpage_traced(ip, lbn, hint_blocks, span)).await,
                }
            }
            (None, Some(io)) => self.inner.iopath.finish_read(io, lbn).await,
            (None, None) => unreachable!("uncached access either holes or reads"),
        }
    }

    /// `ufs_putpage` policy for one dirtied page: the clustered path lies
    /// and accumulates (Figures 7/8); the old path starts the block's write
    /// immediately.
    pub(crate) async fn putpage_write(&self, ip: &Rc<Incore>, lbn: u64) -> FsResult<()> {
        self.charge("putpage", self.inner.params.costs.putpage)
            .await;
        if self.inner.params.tuning.clustering {
            let action = ip
                .dw
                .borrow_mut()
                .on_putpage(lbn, self.inner.params.tuning.maxcontig);
            match action {
                WriteAction::Delay => Ok(()),
                WriteAction::Push(r) | WriteAction::PushThenDelay(r) => {
                    self.flush_page_range(ip, r, WriteReason::Flush, false)
                        .await
                }
            }
        } else {
            self.flush_page_range(ip, lbn..lbn + 1, WriteReason::Flush, false)
                .await
        }
    }

    /// Writes out the dirty pages in `[range)` through the shared executor,
    /// one bmap-contiguous cluster at a time (the Figure 8 while loop).
    /// With `free_after`, pages are freed once written (pageout-initiated
    /// cleaning).
    pub(crate) async fn flush_page_range(
        &self,
        ip: &Rc<Incore>,
        range: std::ops::Range<u64>,
        reason: WriteReason,
        free_after: bool,
    ) -> FsResult<()> {
        let map = UfsMap { fs: self, ip };
        let intent = IoIntent::WriteCluster(WriteCluster {
            range,
            reason,
            free_behind: free_after,
        });
        match self.inner.iopath.execute(&ip.io, &map, intent).await? {
            Executed::Wrote { cluster_blocks } => {
                for n in cluster_blocks {
                    {
                        let mut stats = self.inner.stats.borrow_mut();
                        stats.cluster_writes += 1;
                        stats.blocks_written += n as u64;
                    }
                    self.inner.metrics.cluster_writes.inc();
                    self.inner.metrics.blocks_written.add(n as u64);
                    self.inner.metrics.cluster_write_blocks.observe(n as u64);
                }
                Ok(())
            }
            _ => unreachable!("write sweeps resolve to Wrote"),
        }
    }

    /// Flushes delayed writes and all dirty pages of the file, waits for
    /// the I/O, and writes the inode back.
    pub(crate) async fn fsync_inode(&self, ip: &Rc<Incore>) -> FsResult<()> {
        let pending = ip.dw.borrow_mut().flush();
        if let Some(r) = pending {
            self.flush_page_range(ip, r, WriteReason::Fsync, false)
                .await?;
        }
        // Any other dirty pages (random writes, cleaner races).
        let offsets = self.inner.cache.dirty_offsets(self.vid(ip.ino));
        for chunk in contiguous_runs(&offsets) {
            self.flush_page_range(ip, chunk, WriteReason::Fsync, false)
                .await?;
        }
        ip.io.quiesce().await;
        // Deferred writes fail with no caller to tell; the sticky stream
        // error makes this fsync the one that reports the loss.
        if ip.io.take_io_error() {
            return Err(FsError::Io);
        }
        if ip.dirty.get() {
            self.iflush(ip, true).await;
        }
        // Durability requires the file's indirect blocks too: without
        // them the just-written data is unreachable after a crash.
        let (ind, dbl) = {
            let din = ip.din.borrow();
            (din.indirect, din.double)
        };
        for root in [ind, dbl] {
            if root != 0 && self.inner.meta_dirty.borrow().contains(&(root as u64)) {
                self.meta_write_through(root as u64).await;
            }
        }
        if dbl != 0 {
            let l1 = self.meta_get(dbl as u64).await;
            let mids: Vec<u32> = (0..crate::layout::PTRS_PER_BLOCK)
                .map(|i| {
                    let b = l1.borrow();
                    u32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap())
                })
                .filter(|&m| m != 0)
                .collect();
            for mid in mids {
                if self.inner.meta_dirty.borrow().contains(&(mid as u64)) {
                    self.meta_write_through(mid as u64).await;
                }
            }
        }
        Ok(())
    }

    // ---- rdwr ----

    pub(crate) async fn rdwr_read(
        &self,
        ip: &Rc<Incore>,
        off: u64,
        buf: &mut [u8],
        mode: AccessMode,
    ) -> FsResult<usize> {
        // One root span per request: everything the request waited on
        // (faults, cache probes, queue and service time) nests below.
        let tracer = self.inner.sim.tracer();
        let span = tracer.start("fs.read", ip.io.id().as_u32(), SpanId::NONE);
        tracer.arg(span, "off", off);
        tracer.arg(span, "bytes", buf.len() as u64);
        let r = self.rdwr_read_inner(ip, off, buf, mode, span).await;
        self.inner.sim.tracer().end(span);
        r
    }

    async fn rdwr_read_inner(
        &self,
        ip: &Rc<Incore>,
        off: u64,
        buf: &mut [u8],
        mode: AccessMode,
        span: SpanId,
    ) -> FsResult<usize> {
        let costs = self.inner.params.costs;
        // mmap access is a pure fault path: no syscall, no kernel
        // map/unmap, no copyout — exactly why the paper's Figure 12 uses
        // it to expose file system overhead.
        if mode == AccessMode::Copy {
            self.charge("syscall", costs.syscall).await;
        }
        let size = ip.din.borrow().size;
        if off >= size {
            ip.last_read_end.set(off);
            return Ok(0);
        }
        let len = buf.len().min((size - off) as usize);
        // Inline files are served from the inode cache (Further Work:
        // "the system could satisfy many requests directly from the inode
        // instead of the page cache"). mmap cannot use this path.
        let inline = ip.din.borrow().inline.clone();
        if let Some(data) = inline {
            if mode == AccessMode::Copy {
                self.charge("copy", costs.copy(len)).await;
                let end = (off as usize + len).min(data.len());
                let n = end - off as usize;
                buf[..n].copy_from_slice(&data[off as usize..end]);
                return Ok(n);
            }
        }
        // Sequential-mode detection for free-behind.
        ip.seq_mode.set(off == ip.last_read_end.get());
        let hint = if self.inner.params.tuning.random_cluster_hint {
            (len as u64).div_ceil(BLOCK_SIZE as u64) as u32
        } else {
            0
        };
        let mut pos = off;
        let mut dst = 0usize;
        let end = off + len as u64;
        while pos < end {
            let lbn = pos / BLOCK_SIZE as u64;
            let in_page = (pos % BLOCK_SIZE as u64) as usize;
            let n = ((BLOCK_SIZE - in_page) as u64).min(end - pos) as usize;
            let pid = self.getpage_traced(ip, lbn, hint, span).await?;
            if mode == AccessMode::Copy {
                self.charge("map_unmap", costs.map_unmap).await;
                self.charge("copy", costs.copy(n)).await;
            }
            self.inner
                .cache
                .read_at(pid, in_page, &mut buf[dst..dst + n]);
            // Free behind: triggered when rdwr unmaps the page. The policy
            // decides; the executor releases (unless the page got busy or
            // dirty since we looked).
            if self.inner.params.free_behind.should_free(
                ip.seq_mode.get(),
                pos,
                self.inner.cache.free_count(),
                self.inner.cache.lotsfree(),
            ) {
                let map = UfsMap { fs: self, ip };
                let intent = IoIntent::FreeBehind(FreeBehind { lbn, page: pid });
                if let Executed::Freed(true) =
                    self.inner.iopath.execute(&ip.io, &map, intent).await?
                {
                    self.inner.stats.borrow_mut().free_behinds += 1;
                    self.inner.metrics.free_behind_pages.inc();
                }
            }
            pos += n as u64;
            dst += n;
        }
        ip.last_read_end.set(end);
        Ok(len)
    }

    pub(crate) async fn rdwr_write(
        &self,
        ip: &Rc<Incore>,
        off: u64,
        data: &[u8],
        mode: AccessMode,
    ) -> FsResult<()> {
        let tracer = self.inner.sim.tracer();
        let span = tracer.start("fs.write", ip.io.id().as_u32(), SpanId::NONE);
        tracer.arg(span, "off", off);
        tracer.arg(span, "bytes", data.len() as u64);
        let r = self.rdwr_write_inner(ip, off, data, mode, span).await;
        self.inner.sim.tracer().end(span);
        r
    }

    async fn rdwr_write_inner(
        &self,
        ip: &Rc<Incore>,
        off: u64,
        data: &[u8],
        mode: AccessMode,
        span: SpanId,
    ) -> FsResult<()> {
        let costs = self.inner.params.costs;
        self.charge("syscall", costs.syscall).await;
        if data.is_empty() {
            return Ok(());
        }
        let old_size = ip.din.borrow().size;
        let end = off + data.len() as u64;
        if end.div_ceil(BLOCK_SIZE as u64) > crate::layout::max_file_blocks() {
            return Err(FsError::TooBig);
        }

        // "Data in the inode": keep tiny files inline when enabled.
        if self.inner.params.inline_small {
            let was_inline =
                ip.din.borrow().inline.is_some() || (old_size == 0 && ip.din.borrow().blocks == 0);
            if was_inline && end as usize <= INLINE_MAX {
                {
                    let mut din = ip.din.borrow_mut();
                    let mut content = din.inline.take().unwrap_or_default();
                    content.resize((end as usize).max(old_size as usize), 0);
                    content[off as usize..end as usize].copy_from_slice(data);
                    din.size = din.size.max(end);
                    din.inline = Some(content);
                }
                ip.dirty.set(true);
                self.charge("copy", costs.copy(data.len())).await;
                return Ok(());
            }
            // Outgrown the inode: demote existing content to block storage
            // (bypassing the inline path), then fall through for the new
            // write.
            let demote = ip.din.borrow_mut().inline.take();
            if let Some(content) = demote {
                ip.din.borrow_mut().size = 0;
                self.write_blocks(ip, 0, &content, mode, span).await?;
            }
        }

        self.write_blocks(ip, off, data, mode, span).await
    }

    async fn write_blocks(
        &self,
        ip: &Rc<Incore>,
        off: u64,
        data: &[u8],
        mode: AccessMode,
        span: SpanId,
    ) -> FsResult<()> {
        let costs = self.inner.params.costs;
        let old_size = ip.din.borrow().size;
        let end = off + data.len() as u64;
        // Writing past EOF with a gap leaves a hole.
        if off > old_size.div_ceil(BLOCK_SIZE as u64) * BLOCK_SIZE as u64 {
            ip.may_have_holes.set(true);
        }
        let mut pos = off;
        let mut src = 0usize;
        while pos < end {
            let lbn = pos / BLOCK_SIZE as u64;
            let in_page = (pos % BLOCK_SIZE as u64) as usize;
            let n = ((BLOCK_SIZE - in_page) as u64).min(end - pos) as usize;
            let (pbn, fresh) = self.bmap_alloc(ip, lbn).await?;
            let key = self.page_key(ip, lbn);
            let full_page = in_page == 0 && n == BLOCK_SIZE;
            let pid = match self.inner.cache.lookup(key) {
                Some(pid) => {
                    // May be mid-read-ahead: wait for the fill.
                    self.inner.cache.wait_unbusy(pid).await;
                    pid
                }
                None => {
                    let pid = self
                        .inner
                        .cache
                        .create_traced(key, ip.io.id().as_u32(), span)
                        .await;
                    if !fresh && !full_page && lbn < old_size.div_ceil(BLOCK_SIZE as u64) {
                        // Read-modify-write of an existing partial block.
                        self.charge("fault", costs.fault).await;
                        let old = self.read_block_raw(pbn as u64).await;
                        self.inner.cache.write_at(pid, 0, &old);
                    }
                    self.inner.cache.unbusy(pid);
                    pid
                }
            };
            self.charge("map_unmap", costs.map_unmap).await;
            if mode == AccessMode::Copy {
                self.charge("copy", costs.copy(n)).await;
            }
            self.inner.cache.write_at(pid, in_page, &data[src..src + n]);
            self.inner.cache.mark_dirty(pid);
            {
                let mut din = ip.din.borrow_mut();
                if pos + n as u64 > din.size {
                    din.size = pos + n as u64;
                }
            }
            ip.dirty.set(true);
            self.putpage_write(ip, lbn).await?;
            pos += n as u64;
            src += n;
        }
        Ok(())
    }

    // ---- namespace operations ----

    /// Creates (or truncates) a regular file and returns it open.
    pub(crate) async fn create_file(&self, path: &str) -> FsResult<UfsFile> {
        let (parent, name, existing) = self.namei(path).await?;
        if name.is_empty() {
            return Err(FsError::Invalid);
        }
        if let Some(ino) = existing {
            let ip = self.iget(ino).await?;
            if ip.din.borrow().kind != FileKind::Regular {
                return Err(FsError::NotAFile);
            }
            let file = UfsFile {
                fs: self.clone(),
                ip,
            };
            file.truncate(0).await?;
            return Ok(file);
        }
        let ino = self.alloc_inode(FileKind::Regular, Some(parent.ino))?;
        let ip = Incore::new(
            ino,
            Dinode::new(FileKind::Regular),
            &self.inner.sim,
            &self.inner.params.tuning,
            self.vid(ino),
        );
        ip.may_have_holes.set(false); // Fresh files are dense until proven otherwise.
        self.inner.inodes.borrow_mut().insert(ino, Rc::clone(&ip));
        // Classic UFS ordering: the inode reaches disk before the name.
        self.iflush(&ip, true).await;
        self.dir_add(&parent, &name, ino).await?;
        Ok(UfsFile {
            fs: self.clone(),
            ip,
        })
    }

    /// Opens an existing regular file.
    pub(crate) async fn open_file(&self, path: &str) -> FsResult<UfsFile> {
        let (_parent, _name, existing) = self.namei(path).await?;
        let ino = existing.ok_or(FsError::NotFound)?;
        let ip = self.iget(ino).await?;
        if ip.din.borrow().kind != FileKind::Regular {
            return Err(FsError::NotAFile);
        }
        Ok(UfsFile {
            fs: self.clone(),
            ip,
        })
    }

    /// Unlinks a file: removes the name, and when the last link drops,
    /// frees pages, blocks and the inode.
    pub(crate) async fn remove_file(&self, path: &str) -> FsResult<()> {
        let (parent, name, existing) = self.namei(path).await?;
        let ino = existing.ok_or(FsError::NotFound)?;
        let ip = self.iget(ino).await?;
        if ip.din.borrow().kind == FileKind::Directory {
            return Err(FsError::NotAFile);
        }
        self.dir_remove(&parent, &name).await?;
        let remaining = {
            let mut din = ip.din.borrow_mut();
            din.nlink -= 1;
            din.nlink
        };
        if remaining == 0 {
            // Quiesce in-flight writes, discard pages, release storage.
            ip.dw.borrow_mut().flush();
            ip.io.quiesce().await;
            self.inner.cache.invalidate_vnode(self.vid(ino), 0);
            self.free_blocks_from(&ip, 0).await?;
            {
                let mut din = ip.din.borrow_mut();
                *din = Dinode::free();
            }
            self.iflush(&ip, true).await;
            self.free_inode(ino);
            self.iforget(ino);
        } else {
            self.iflush(&ip, true).await;
        }
        Ok(())
    }
}

/// Groups sorted byte offsets into runs of consecutive pages.
fn contiguous_runs(offsets: &[u64]) -> Vec<std::ops::Range<u64>> {
    let mut out = Vec::new();
    let mut iter = offsets.iter().map(|o| o / BLOCK_SIZE as u64);
    let Some(first) = iter.next() else {
        return out;
    };
    let mut start = first;
    let mut prev = first;
    for p in iter {
        if p != prev + 1 {
            out.push(start..prev + 1);
            start = p;
        }
        prev = p;
    }
    out.push(start..prev + 1);
    out
}

impl Vnode for UfsFile {
    fn id(&self) -> VnodeId {
        self.fs.vid(self.ip.ino)
    }

    fn size(&self) -> u64 {
        self.ip.din.borrow().size
    }

    fn stream(&self) -> StreamId {
        self.ip.io.id()
    }

    async fn read_into(&self, off: u64, buf: &mut [u8], mode: AccessMode) -> FsResult<usize> {
        self.fs.rdwr_read(&self.ip, off, buf, mode).await
    }

    async fn write(&self, off: u64, data: &[u8], mode: AccessMode) -> FsResult<()> {
        self.fs.rdwr_write(&self.ip, off, data, mode).await
    }

    async fn fsync(&self) -> FsResult<()> {
        self.fs.fsync_inode(&self.ip).await
    }

    async fn truncate(&self, size: u64) -> FsResult<()> {
        let ip = &self.ip;
        // Settle pending I/O so pages can be invalidated.
        ip.dw.borrow_mut().flush();
        ip.io.quiesce().await;
        let old = ip.din.borrow().size;
        if size < old {
            if ip.din.borrow().inline.is_some() {
                let mut din = ip.din.borrow_mut();
                let content = din.inline.as_mut().unwrap();
                content.truncate(size as usize);
            } else {
                let from_lbn = size.div_ceil(BLOCK_SIZE as u64);
                let page_from = from_lbn * BLOCK_SIZE as u64;
                self.fs.inner.cache.invalidate_vnode(self.id(), page_from);
                self.fs.free_blocks_from(ip, from_lbn).await?;
                // Zero the tail of the (kept) final partial block, or a
                // later extension would expose the stale bytes.
                let tail = (size % BLOCK_SIZE as u64) as usize;
                if tail != 0 {
                    let last_lbn = size / BLOCK_SIZE as u64;
                    if self.fs.ptr_at(ip, last_lbn).await? != 0 {
                        let pid = self.fs.getpage(ip, last_lbn, 0).await?;
                        self.fs
                            .inner
                            .cache
                            .write_at(pid, tail, &vec![0u8; BLOCK_SIZE - tail]);
                        self.fs.inner.cache.mark_dirty(pid);
                    }
                }
            }
        } else if size > old {
            ip.may_have_holes.set(true);
        }
        ip.din.borrow_mut().size = size;
        ip.dirty.set(true);
        if size < old {
            // Reset the write predictor: the file shape changed.
            *ip.dw.borrow_mut() = clufs::DelayedWrite::new();
        }
        Ok(())
    }
}

impl FileSystem for Ufs {
    type File = UfsFile;

    async fn create(&self, path: &str) -> FsResult<UfsFile> {
        self.create_file(path).await
    }

    async fn open(&self, path: &str) -> FsResult<UfsFile> {
        self.open_file(path).await
    }

    async fn remove(&self, path: &str) -> FsResult<()> {
        self.remove_file(path).await
    }

    async fn sync(&self) -> FsResult<()> {
        self.sync_all().await
    }
}
