//! `bmap`: logical-to-physical translation, with the paper's length
//! extension.
//!
//! "bmap used to take a logical block number and return a physical block
//! number. We modified it to return a length as well ... The length
//! returned is at most maxcontig blocks long and is used as the effective
//! cluster size by the caller."

use vfs::{FsError, FsResult};

use crate::fs::{Incore, Ufs};
use crate::layout::{NDADDR, PTRS_PER_BLOCK};

/// Where a file's logical block pointer lives.
enum PtrLoc {
    /// `direct[i]` in the dinode.
    Direct(usize),
    /// Entry `i` of the single-indirect block.
    Indirect(usize),
    /// Entry `(i, j)` through the double-indirect block.
    Double(usize, usize),
}

fn locate(lbn: u64) -> FsResult<PtrLoc> {
    let ppb = PTRS_PER_BLOCK as u64;
    if lbn < NDADDR as u64 {
        Ok(PtrLoc::Direct(lbn as usize))
    } else if lbn < NDADDR as u64 + ppb {
        Ok(PtrLoc::Indirect((lbn - NDADDR as u64) as usize))
    } else if lbn < NDADDR as u64 + ppb + ppb * ppb {
        let rel = lbn - NDADDR as u64 - ppb;
        Ok(PtrLoc::Double((rel / ppb) as usize, (rel % ppb) as usize))
    } else {
        Err(FsError::TooBig)
    }
}

fn read_ptr(block: &[u8], idx: usize) -> u32 {
    let off = idx * 4;
    u32::from_le_bytes(block[off..off + 4].try_into().unwrap())
}

fn write_ptr(block: &mut [u8], idx: usize, v: u32) {
    let off = idx * 4;
    block[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

impl Ufs {
    /// Raw pointer fetch: 0 means hole. Does not charge CPU (callers charge
    /// once per `bmap`, not per pointer examined).
    pub(crate) async fn ptr_at(&self, ip: &Incore, lbn: u64) -> FsResult<u32> {
        match locate(lbn)? {
            PtrLoc::Direct(i) => Ok(ip.din.borrow().direct[i]),
            PtrLoc::Indirect(i) => {
                let ind = ip.din.borrow().indirect;
                if ind == 0 {
                    return Ok(0);
                }
                let block = self.meta_get(ind as u64).await;
                let v = read_ptr(&block.borrow(), i);
                Ok(v)
            }
            PtrLoc::Double(i, j) => {
                let dbl = ip.din.borrow().double;
                if dbl == 0 {
                    return Ok(0);
                }
                let l1 = self.meta_get(dbl as u64).await;
                let mid = read_ptr(&l1.borrow(), i);
                if mid == 0 {
                    return Ok(0);
                }
                let l2 = self.meta_get(mid as u64).await;
                let v = read_ptr(&l2.borrow(), j);
                Ok(v)
            }
        }
    }

    async fn charge_bmap(&self, lbn: u64) {
        let costs = &self.inner.params.costs;
        let extra = match locate(lbn) {
            Ok(PtrLoc::Direct(_)) => simkit::SimDuration::ZERO,
            Ok(PtrLoc::Indirect(_)) => costs.bmap_indirect,
            Ok(PtrLoc::Double(_, _)) => costs.bmap_indirect * 2,
            Err(_) => simkit::SimDuration::ZERO,
        };
        self.charge("bmap", costs.bmap + extra).await;
        self.inner.stats.borrow_mut().bmap_calls += 1;
        self.inner.metrics.bmap_calls.inc();
    }

    /// Read-path translation: physical block of `lbn`, or `None` for a
    /// hole. Public for tests, fsck tooling and examples that inspect
    /// layout.
    pub async fn bmap_read(&self, ip: &Incore, lbn: u64) -> FsResult<Option<u32>> {
        if self.inner.params.tuning.bmap_cache {
            if let Some((pbn, _len)) = ip.bmap_cache.borrow_mut().lookup(lbn) {
                self.inner.stats.borrow_mut().bmap_cache_hits += 1;
                self.inner.metrics.bmap_cache_hits.inc();
                return Ok(Some(pbn as u32));
            }
        }
        self.charge_bmap(lbn).await;
        let p = self.ptr_at(ip, lbn).await?;
        Ok(if p == 0 { None } else { Some(p) })
    }

    /// The paper's modified `bmap`: translation **plus** the number of
    /// blocks (≤ `max_blocks`) that are physically contiguous on disk
    /// starting at `lbn`. Returns `None` for a hole.
    pub(crate) async fn bmap_extent(
        &self,
        ip: &Incore,
        lbn: u64,
        max_blocks: u32,
    ) -> FsResult<Option<(u32, u32)>> {
        if max_blocks == 0 {
            return Ok(None);
        }
        if self.inner.params.tuning.bmap_cache {
            if let Some((pbn, len)) = ip.bmap_cache.borrow_mut().lookup(lbn) {
                self.inner.stats.borrow_mut().bmap_cache_hits += 1;
                self.inner.metrics.bmap_cache_hits.inc();
                return Ok(Some((pbn as u32, len.min(max_blocks))));
            }
        }
        self.charge_bmap(lbn).await;
        let first = self.ptr_at(ip, lbn).await?;
        if first == 0 {
            return Ok(None);
        }
        let mut len = 1u32;
        while len < max_blocks {
            let next = self.ptr_at(ip, lbn + len as u64).await?;
            if next as u64 != first as u64 + len as u64 {
                break;
            }
            len += 1;
        }
        self.inner.metrics.extent_len_blocks.observe(len as u64);
        if self.inner.params.tuning.bmap_cache {
            ip.bmap_cache.borrow_mut().insert(clufs::ExtentTuple {
                lbn,
                pbn: first as u64,
                len,
            });
        }
        Ok(Some((first, len)))
    }

    /// Write-path translation: allocates the block (and any covering
    /// indirect blocks) if `lbn` is a hole. Returns `(pbn, fresh)`.
    pub(crate) async fn bmap_alloc(&self, ip: &Incore, lbn: u64) -> FsResult<(u32, bool)> {
        self.charge_bmap(lbn).await;
        let existing = self.ptr_at(ip, lbn).await?;
        if existing != 0 {
            return Ok((existing, false));
        }
        // Preference: right after the previous block (plus the rotdelay
        // gap), if there is one.
        let prev = if lbn > 0 {
            let p = self.ptr_at(ip, lbn - 1).await?;
            if p != 0 {
                Some(p as u64)
            } else {
                None
            }
        } else {
            None
        };
        let pref = self.blkpref(ip, lbn, prev);
        let pbn = self.alloc_block(ip, pref).await?;
        self.set_ptr(ip, lbn, pbn).await?;
        {
            let mut din = ip.din.borrow_mut();
            din.blocks += 1;
        }
        ip.dirty.set(true);
        if self.inner.params.tuning.bmap_cache {
            // The mapping at and around lbn changed.
            ip.bmap_cache.borrow_mut().invalidate_from(0);
        }
        Ok((pbn, true))
    }

    /// Stores `pbn` at `lbn`'s pointer slot, allocating indirect blocks as
    /// needed.
    async fn set_ptr(&self, ip: &Incore, lbn: u64, pbn: u32) -> FsResult<()> {
        match locate(lbn)? {
            PtrLoc::Direct(i) => {
                ip.din.borrow_mut().direct[i] = pbn;
                Ok(())
            }
            PtrLoc::Indirect(i) => {
                let ind = self.ensure_indirect_root(ip, false).await?;
                let block = self.meta_get(ind as u64).await;
                write_ptr(&mut block.borrow_mut(), i, pbn);
                self.meta_mark_dirty(ind as u64);
                Ok(())
            }
            PtrLoc::Double(i, j) => {
                let dbl = self.ensure_indirect_root(ip, true).await?;
                let l1 = self.meta_get(dbl as u64).await;
                let mut mid = read_ptr(&l1.borrow(), i);
                if mid == 0 {
                    mid = self.alloc_meta_block(ip).await?;
                    write_ptr(&mut l1.borrow_mut(), i, mid);
                    self.meta_mark_dirty(dbl as u64);
                }
                let l2 = self.meta_get(mid as u64).await;
                write_ptr(&mut l2.borrow_mut(), j, pbn);
                self.meta_mark_dirty(mid as u64);
                Ok(())
            }
        }
    }

    /// Returns (allocating if needed) the single- or double-indirect root.
    async fn ensure_indirect_root(&self, ip: &Incore, double: bool) -> FsResult<u32> {
        let existing = if double {
            ip.din.borrow().double
        } else {
            ip.din.borrow().indirect
        };
        if existing != 0 {
            return Ok(existing);
        }
        let pbn = self.alloc_meta_block(ip).await?;
        {
            let mut din = ip.din.borrow_mut();
            if double {
                din.double = pbn;
            } else {
                din.indirect = pbn;
            }
        }
        ip.dirty.set(true);
        Ok(pbn)
    }

    /// Allocates a zeroed block for file metadata (indirect blocks),
    /// counted against the file.
    async fn alloc_meta_block(&self, ip: &Incore) -> FsResult<u32> {
        let pref = self.blkpref(ip, 0, None);
        let pbn = self.alloc_block(ip, pref).await?;
        // Install zeroed content in the metadata cache (written on sync).
        self.inner.meta.borrow_mut().insert(
            pbn as u64,
            std::rc::Rc::new(std::cell::RefCell::new(vec![
                0u8;
                crate::layout::BLOCK_SIZE
            ])),
        );
        self.meta_mark_dirty(pbn as u64);
        {
            let mut din = ip.din.borrow_mut();
            din.blocks += 1;
        }
        ip.dirty.set(true);
        Ok(pbn)
    }

    /// Frees every data and indirect block at or beyond logical block
    /// `from_lbn` (truncate support). Returns blocks freed.
    pub(crate) async fn free_blocks_from(&self, ip: &Incore, from_lbn: u64) -> FsResult<u32> {
        let mut freed = 0u32;
        let end = {
            let din = ip.din.borrow();
            din.size.div_ceil(crate::layout::BLOCK_SIZE as u64)
        };
        // Free data blocks.
        for lbn in from_lbn..end {
            let p = self.ptr_at(ip, lbn).await?;
            if p != 0 {
                self.free_block(p as u64);
                self.clear_ptr(ip, lbn).await?;
                freed += 1;
            }
        }
        // Free indirect blocks that no longer cover anything.
        let ppb = PTRS_PER_BLOCK as u64;
        if from_lbn <= NDADDR as u64 {
            let ind = ip.din.borrow().indirect;
            if ind != 0 {
                self.free_block(ind as u64);
                self.inner.meta.borrow_mut().remove(&(ind as u64));
                self.inner.meta_dirty.borrow_mut().remove(&(ind as u64));
                ip.din.borrow_mut().indirect = 0;
                freed += 1;
            }
        }
        if from_lbn <= NDADDR as u64 + ppb {
            let dbl = ip.din.borrow().double;
            if dbl != 0 {
                // Free all second-level blocks (they cover lbn >= NDADDR+ppb,
                // all at or beyond from_lbn here).
                let l1 = self.meta_get(dbl as u64).await;
                let mids: Vec<u32> = (0..PTRS_PER_BLOCK)
                    .map(|i| read_ptr(&l1.borrow(), i))
                    .filter(|&m| m != 0)
                    .collect();
                for mid in mids {
                    self.free_block(mid as u64);
                    self.inner.meta.borrow_mut().remove(&(mid as u64));
                    self.inner.meta_dirty.borrow_mut().remove(&(mid as u64));
                    freed += 1;
                }
                self.free_block(dbl as u64);
                self.inner.meta.borrow_mut().remove(&(dbl as u64));
                self.inner.meta_dirty.borrow_mut().remove(&(dbl as u64));
                ip.din.borrow_mut().double = 0;
                freed += 1;
            }
        }
        {
            let mut din = ip.din.borrow_mut();
            din.blocks = din.blocks.saturating_sub(freed);
        }
        ip.dirty.set(true);
        ip.bmap_cache.borrow_mut().invalidate_from(0);
        Ok(freed)
    }

    async fn clear_ptr(&self, ip: &Incore, lbn: u64) -> FsResult<()> {
        match locate(lbn)? {
            PtrLoc::Direct(i) => {
                ip.din.borrow_mut().direct[i] = 0;
            }
            PtrLoc::Indirect(i) => {
                let ind = ip.din.borrow().indirect;
                if ind != 0 {
                    let block = self.meta_get(ind as u64).await;
                    write_ptr(&mut block.borrow_mut(), i, 0);
                    self.meta_mark_dirty(ind as u64);
                }
            }
            PtrLoc::Double(i, j) => {
                let dbl = ip.din.borrow().double;
                if dbl != 0 {
                    let l1 = self.meta_get(dbl as u64).await;
                    let mid = read_ptr(&l1.borrow(), i);
                    if mid != 0 {
                        let l2 = self.meta_get(mid as u64).await;
                        write_ptr(&mut l2.borrow_mut(), j, 0);
                        self.meta_mark_dirty(mid as u64);
                    }
                }
            }
        }
        Ok(())
    }

    /// Walks every allocated (lbn → pbn) pair of a file, in logical order.
    /// Used by fsck and the allocator-contiguity experiment.
    pub(crate) async fn blocks_of(&self, ip: &Incore) -> FsResult<Vec<(u64, u32)>> {
        let end = {
            let din = ip.din.borrow();
            if din.inline.is_some() {
                return Ok(Vec::new());
            }
            din.size.div_ceil(crate::layout::BLOCK_SIZE as u64)
        };
        let mut out = Vec::new();
        for lbn in 0..end {
            let p = self.ptr_at(ip, lbn).await?;
            if p != 0 {
                out.push((lbn, p));
            }
        }
        Ok(out)
    }
}
