//! Block and inode allocation: the (unchanged) FFS allocator with the
//! `rotdelay`/`maxcontig` placement policy.
//!
//! "There were no changes to the allocator. The UFS allocator has always
//! been able to allocate files contiguously ... The reason that the
//! allocator is able to do so well is that it keeps a percentage of the
//! disk (usually 10%) free at all times."
//!
//! Placement (`blkpref`): the next block of a file is preferred at
//! `previous + 1 + gap`, where the gap is `rotdelay` expressed in block
//! slots (zero in the clustered configurations, one slot in the classic
//! 4 ms tuning — Figure 4's interleaved layout vs Figure 5's contiguous
//! one). A file that has consumed `maxbpg` blocks in one cylinder group is
//! moved to the next group so no single file fills a group.

use vfs::{FsError, FsResult};

use crate::fs::{Incore, Ufs};
use crate::layout::FileKind;

impl Ufs {
    /// Preferred physical block for `lbn` of this file, following FFS
    /// `blkpref`: sequential extension goes at `prev + 1 + gap`; cold
    /// starts go to the file's current allocation group.
    pub(crate) fn blkpref(&self, ip: &Incore, _lbn: u64, prev_pbn: Option<u64>) -> u64 {
        let sb = self.inner.sb.borrow();
        let maxbpg = self
            .inner
            .params
            .maxbpg
            .unwrap_or(sb.data_blocks_per_cg() / 4)
            .max(1);
        if let Some(prev) = prev_pbn {
            if ip.alloc_run.get() >= maxbpg {
                // This file has had its share of the group: move to the
                // group with the most free blocks among the next few.
                let cur = sb.cg_of_block(prev).unwrap_or(0);
                let next = self.best_cg_after(cur);
                ip.alloc_run.set(0);
                ip.alloc_cg.set(next);
                return sb.cg_data_start(next);
            }
            return prev + 1 + self.gap_blocks() as u64;
        }
        // No previous block: first block of the file (or first after a
        // hole). Prefer the group the allocator last used for this file,
        // falling back to the inode's own group.
        let cg = if ip.alloc_cg.get() != u32::MAX {
            ip.alloc_cg.get()
        } else {
            ip.ino / sb.inodes_per_cg
        };
        sb.cg_data_start(cg.min(sb.ncg - 1))
    }

    /// The group following `cur` with the most free blocks (looks at the
    /// next four groups, wrapping).
    fn best_cg_after(&self, cur: u32) -> u32 {
        let sb = self.inner.sb.borrow();
        let cgs = self.inner.cgs.borrow();
        let ncg = sb.ncg;
        let mut best = (cur + 1) % ncg;
        let mut best_free = 0u32;
        for step in 1..=4u32.min(ncg) {
            let cgx = (cur + step) % ncg;
            let free = cgs[cgx as usize].free_blocks;
            if free > best_free {
                best_free = free;
                best = cgx;
            }
        }
        best
    }

    /// Allocates one data block as close to `pref` as possible.
    ///
    /// Enforces the minfree reserve: the flexibility that lets the
    /// allocator "think ahead" and keep files contiguous.
    pub(crate) async fn alloc_block(&self, ip: &Incore, pref: u64) -> FsResult<u32> {
        self.charge("alloc", self.inner.params.costs.alloc).await;
        {
            let sb = self.inner.sb.borrow();
            if sb.free_blocks <= sb.minfree_blocks() {
                return Err(FsError::NoSpace);
            }
        }
        let pbn = self.alloc_near(pref).ok_or(FsError::NoSpace)?;
        ip.alloc_run.set(ip.alloc_run.get() + 1);
        if let Some(cgx) = self.inner.sb.borrow().cg_of_block(pbn) {
            ip.alloc_cg.set(cgx);
        }
        Ok(pbn as u32)
    }

    /// Bitmap search: exact preference, then forward scan in the same
    /// group (wrapping within the group), then the other groups.
    fn alloc_near(&self, pref: u64) -> Option<u64> {
        let sb = self.inner.sb.borrow();
        let ncg = sb.ncg;
        let dpcg = sb.data_blocks_per_cg();
        let pref_cg = sb.cg_of_block(pref).unwrap_or(0).min(ncg - 1);
        let pref_idx = {
            let start = sb.cg_data_start(pref_cg);
            if pref >= start && pref < start + dpcg as u64 {
                (pref - start) as u32
            } else {
                0
            }
        };
        drop(sb);
        // Same group, starting at the preferred slot.
        if let Some(pbn) = self.take_in_cg(pref_cg, pref_idx) {
            return Some(pbn);
        }
        // Other groups, round robin from the next one.
        for step in 1..ncg {
            let cgx = (pref_cg + step) % ncg;
            if let Some(pbn) = self.take_in_cg(cgx, 0) {
                return Some(pbn);
            }
        }
        None
    }

    /// Takes the first free data block in `cgx` at or after `from`
    /// (wrapping within the group). Updates bitmaps and counts.
    fn take_in_cg(&self, cgx: u32, from: u32) -> Option<u64> {
        let dpcg = self.inner.sb.borrow().data_blocks_per_cg();
        let mut cgs = self.inner.cgs.borrow_mut();
        let cg = &mut cgs[cgx as usize];
        if cg.free_blocks == 0 {
            return None;
        }
        let idx = cg.first_free_block(from % dpcg, dpcg)?;
        assert!(cg.set_block(idx), "bitmap/count disagreement");
        drop(cgs);
        self.inner.cgs_dirty.borrow_mut()[cgx as usize] = true;
        {
            let mut sb = self.inner.sb.borrow_mut();
            sb.free_blocks -= 1;
        }
        self.inner.sb_dirty.set(true);
        let sb = self.inner.sb.borrow();
        Some(sb.cg_data_start(cgx) + idx as u64)
    }

    /// Returns a data block to the free pool.
    ///
    /// # Panics
    ///
    /// Panics on double free or on freeing a metadata block — both are
    /// file system corruption.
    pub(crate) fn free_block(&self, pbn: u64) {
        let sb = self.inner.sb.borrow();
        assert!(sb.is_data_block(pbn), "freeing non-data block {pbn}");
        let cgx = sb.cg_of_block(pbn).expect("checked");
        let idx = (pbn - sb.cg_data_start(cgx)) as u32;
        drop(sb);
        {
            let mut cgs = self.inner.cgs.borrow_mut();
            assert!(cgs[cgx as usize].clear_block(idx), "double free of {pbn}");
        }
        self.inner.cgs_dirty.borrow_mut()[cgx as usize] = true;
        self.inner.sb.borrow_mut().free_blocks += 1;
        self.inner.sb_dirty.set(true);
    }

    /// Allocates an inode. Directories are spread round-robin across
    /// groups (each directory seeds locality for its files); files go to
    /// their parent directory's group when possible.
    pub(crate) fn alloc_inode(&self, kind: FileKind, parent_ino: Option<u32>) -> FsResult<u32> {
        let sb = self.inner.sb.borrow();
        let ncg = sb.ncg;
        let ipcg = sb.inodes_per_cg;
        drop(sb);
        let start_cg = match kind {
            FileKind::Directory => {
                // Round robin, preferring groups with free inodes AND blocks.
                let mut best = self.inner.next_dir_cg.get() % ncg;
                let cgs = self.inner.cgs.borrow();
                for step in 0..ncg {
                    let cgx = (self.inner.next_dir_cg.get() + step) % ncg;
                    if cgs[cgx as usize].free_inodes > 0 && cgs[cgx as usize].free_blocks > 0 {
                        best = cgx;
                        break;
                    }
                }
                drop(cgs);
                self.inner.next_dir_cg.set((best + 1) % ncg);
                best
            }
            _ => parent_ino.map(|p| p / ipcg).unwrap_or(0).min(ncg - 1),
        };
        for step in 0..ncg {
            let cgx = (start_cg + step) % ncg;
            let mut cgs = self.inner.cgs.borrow_mut();
            let cg = &mut cgs[cgx as usize];
            if cg.free_inodes == 0 {
                continue;
            }
            if let Some(i) = cg.first_free_inode(ipcg) {
                assert!(cg.set_inode(i));
                drop(cgs);
                self.inner.cgs_dirty.borrow_mut()[cgx as usize] = true;
                self.inner.sb.borrow_mut().free_inodes -= 1;
                self.inner.sb_dirty.set(true);
                return Ok(cgx * ipcg + i);
            }
        }
        Err(FsError::NoInodes)
    }

    /// Returns an inode number to the free pool.
    pub(crate) fn free_inode(&self, ino: u32) {
        let ipcg = self.inner.sb.borrow().inodes_per_cg;
        let cgx = ino / ipcg;
        let idx = ino % ipcg;
        {
            let mut cgs = self.inner.cgs.borrow_mut();
            assert!(
                cgs[cgx as usize].clear_inode(idx),
                "double free of inode {ino}"
            );
        }
        self.inner.cgs_dirty.borrow_mut()[cgx as usize] = true;
        self.inner.sb.borrow_mut().free_inodes += 1;
        self.inner.sb_dirty.set(true);
    }
}
