//! The shared I/O execution engine.
//!
//! The paper's contribution is policy layered over unchanged mechanism:
//! read-ahead, delayed-write accumulation, free-behind and write limits
//! decide *what* to transfer, while the code that creates busy pages,
//! charges setup/interrupt CPU, talks to the disk and completes pages is
//! the same in every kernel. This module is that mechanism, factored out
//! of `ufs::vnops` so both `ufs` and `extentfs` drive one executor:
//! policy engines emit typed [`IoIntent`] values and [`IoPath::execute`]
//! resolves them against the page cache and the disk.
//!
//! Every open file carries a [`FileStream`] whose [`StreamId`] rides each
//! request end to end — demand-fault cache lookups, cluster issues,
//! throttle stalls and `diskmodel` queue entries are all labelled with the
//! originating stream, so the registry can answer "which stream got what
//! share of the disk" (`disk.sectors_*{stream=N}`,
//! `core.throttle_stalls{stream=N}`, `iopath.cluster_*_blocks{stream=N}`).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::rc::Rc;

use clufs::{PrefetchPlan, PrefetchPolicy, Prefetcher, WriteThrottle};
use diskmodel::{IoHandle, IoStatus, SharedDevice};
use pagecache::{PageCache, PageId, PageKey};
use simkit::stats::{Counter, Histogram};
use simkit::{Cpu, Notify, Sim, SimDuration, SpanId};

use crate::{FsError, FsResult, StreamId, VnodeId};

/// Why a cluster read is being issued.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadReason {
    /// A faulting access needs the first block now; the caller waits.
    Demand,
    /// Speculative read-ahead; the executor fills pages asynchronously.
    Readahead,
}

/// Why dirty pages are being pushed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteReason {
    /// The delayed-write policy decided a cluster is full (putpage push).
    Flush,
    /// An explicit fsync is forcing everything out.
    Fsync,
    /// The pageout daemon is cleaning under memory pressure.
    Cleaner,
}

/// A cluster read: `len` blocks starting at logical block `lbn`, backed by
/// physical block `pbn`. The executor clips the transfer at the first
/// already-cached page.
#[derive(Clone, Copy, Debug)]
pub struct ReadCluster {
    pub lbn: u64,
    pub pbn: u32,
    pub len: u32,
    pub reason: ReadReason,
}

/// A batched run-list read: up to `len` logical blocks from `lbn`,
/// resolved through [`BlockMap::runs`] in one pass. Unlike
/// [`ReadCluster`], the blocks need not be physically contiguous — the
/// executor pays one setup for the whole batch and issues one transfer
/// per physical run, back to back (the list-I/O shape: tree walks and
/// command builds amortize even on a fragmented file).
#[derive(Clone, Copy, Debug)]
pub struct ReadRuns {
    pub lbn: u64,
    pub len: u32,
    pub reason: ReadReason,
    /// Data-sieving pattern for a speculative batch: `Some((keep,
    /// period))` marks the block at offset `o` from `lbn` as wanted iff
    /// `o % period < keep`; the rest is gap filler, read only to keep
    /// the transfer contiguous and accounted as
    /// `io.prefetch_wasted_bytes` at issue. `None` = every block is
    /// wanted. Ignored for demand reads.
    pub sieve: Option<(u32, u32)>,
}

/// A writeback sweep over `[range)` of dirty pages, one block-map
/// contiguous cluster at a time. With `free_behind`, pages are freed once
/// written (pageout-initiated cleaning).
#[derive(Clone, Debug)]
pub struct WriteCluster {
    pub range: Range<u64>,
    pub reason: WriteReason,
    pub free_behind: bool,
}

/// Release one consumed page behind a sequential reader (the free-behind
/// policy already decided it should go).
#[derive(Clone, Copy, Debug)]
pub struct FreeBehind {
    pub lbn: u64,
    pub page: PageId,
}

/// A typed I/O request emitted by policy code and resolved by
/// [`IoPath::execute`].
#[derive(Clone, Debug)]
pub enum IoIntent {
    ReadCluster(ReadCluster),
    ReadRuns(ReadRuns),
    WriteCluster(WriteCluster),
    FreeBehind(FreeBehind),
}

/// What executing an [`IoIntent`] did.
pub enum Executed {
    /// A demand read is in flight; wait for it with [`IoPath::finish_read`].
    ReadIssued(ClusterRead),
    /// A demand run-list batch is in flight; wait for it with
    /// [`IoPath::finish_batch`].
    BatchIssued(BatchRead),
    /// A read-ahead was issued; `blocks` pages are being filled
    /// asynchronously by the executor's completion task.
    ReadaheadIssued { blocks: u32 },
    /// The first page was already resident; no I/O was started.
    AlreadyCached,
    /// The writeback sweep issued one cluster per entry (`blocks` each);
    /// completions run asynchronously — quiesce via [`FileStream`].
    Wrote { cluster_blocks: Vec<u32> },
    /// Whether the free-behind page was actually released (busy or dirty
    /// pages are left alone).
    Freed(bool),
}

/// An issued cluster read: the disk handle plus the busy pages created for
/// it, in block order. Carries enough of the original request (device
/// range, stream, owning vnode) to resubmit the transfer on a transient
/// device error and to tear the pages back down on a permanent one.
pub struct ClusterRead {
    handle: IoHandle,
    lba: u64,
    nsect: u32,
    stream: u32,
    vnode: VnodeId,
    pages: Vec<(u64, PageId)>,
    span: SpanId,
}

impl ClusterRead {
    /// Number of blocks in the transfer.
    pub fn blocks(&self) -> u32 {
        self.pages.len() as u32
    }
}

/// One in-flight transfer of a [`BatchRead`]: the handle, the device range
/// it covers (for retry), and the busy pages it fills, in block order.
struct BatchPart {
    handle: IoHandle,
    lba: u64,
    nsect: u32,
    pages: Vec<(u64, PageId)>,
}

/// An issued run-list batch: one in-flight transfer per physical run.
pub struct BatchRead {
    parts: Vec<BatchPart>,
    stream: u32,
    vnode: VnodeId,
    span: SpanId,
}

impl BatchRead {
    /// Total blocks across all runs in the batch.
    pub fn blocks(&self) -> u32 {
        self.parts.iter().map(|p| p.pages.len() as u32).sum()
    }

    /// Number of physical transfers the batch was split into.
    pub fn transfers(&self) -> usize {
        self.parts.len()
    }
}

/// Translation from logical file blocks to physical placement — the one
/// thing the executor must ask the file system. UFS answers with `bmap`
/// (indirect-block walks, bmap cache); extentfs with a table lookup.
#[allow(async_fn_in_trait)] // Single-threaded simulation: futures are !Send by design.
pub trait BlockMap {
    /// `(pbn, contiguous_blocks)` at `lbn`, with the run clipped to at
    /// most `cap` blocks; `None` means a hole.
    async fn extent(&self, lbn: u64, cap: u32) -> FsResult<Option<(u32, u32)>>;

    /// The physical run-list covering up to `blocks` logical blocks from
    /// `lbn`, stopping at the first hole. The default loops [`extent`]
    /// (one translation per run); tree-indexed file systems override it
    /// with a single index walk.
    ///
    /// [`extent`]: BlockMap::extent
    async fn runs(&self, lbn: u64, blocks: u32) -> FsResult<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        let mut cur = lbn;
        let mut left = blocks;
        while left > 0 {
            match self.extent(cur, left).await? {
                Some((pbn, n)) => {
                    out.push((pbn, n));
                    cur += n as u64;
                    left -= n;
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// The largest blocks-per-transfer this mount allows (UFS: the tuned
    /// I/O cluster size; extentfs: the extent unit).
    fn max_cluster(&self) -> u32;
}

/// Per-open-file I/O identity: the stream label, the paper's per-inode
/// write throttle, and the in-flight write count used to quiesce before
/// truncate/remove/fsync completion.
pub struct FileStream {
    vnode: VnodeId,
    stream: StreamId,
    throttle: WriteThrottle,
    pending_io: Cell<u32>,
    quiesce: Notify,
    /// Sticky deferred-write failure: asynchronous writeback has no caller
    /// to fail, so a terminal device error lands here and the next fsync
    /// reports it — the UNIX contract for delayed writes.
    io_error: Cell<bool>,
}

impl FileStream {
    /// Allocates a fresh stream id from the sim's registry and builds the
    /// file's throttle against `write_limit` (None = unlimited).
    pub fn new(sim: &Sim, vnode: VnodeId, write_limit: Option<u32>) -> Rc<FileStream> {
        let stream = StreamId::new(sim.stats().alloc_stream());
        Rc::new(FileStream {
            vnode,
            stream,
            throttle: WriteThrottle::for_stream(sim, write_limit, stream.as_u32()),
            pending_io: Cell::new(0),
            quiesce: Notify::new(),
            io_error: Cell::new(false),
        })
    }

    /// Page-cache identity of the file this stream belongs to.
    pub fn vnode(&self) -> VnodeId {
        self.vnode
    }

    /// The stream label carried on every request this file issues.
    pub fn id(&self) -> StreamId {
        self.stream
    }

    /// The file's write throttle (the paper's counting semaphore).
    pub fn throttle(&self) -> &WriteThrottle {
        &self.throttle
    }

    /// Writes currently in flight for this file.
    pub fn pending_io(&self) -> u32 {
        self.pending_io.get()
    }

    /// Marks one write started (paired with [`FileStream::io_finished`]).
    pub fn io_started(&self) {
        self.pending_io.set(self.pending_io.get() + 1);
    }

    /// Marks one write finished, waking quiescers when the count drains.
    pub fn io_finished(&self) {
        let p = self.pending_io.get();
        self.pending_io.set(p - 1);
        if p == 1 {
            self.quiesce.notify_all();
        }
    }

    /// Waits until no writes are in flight.
    pub async fn quiesce(&self) {
        while self.pending_io.get() > 0 {
            self.quiesce.wait().await;
        }
    }

    /// Records a terminal asynchronous-write failure (see
    /// [`FileStream::take_io_error`]).
    pub fn set_io_error(&self) {
        self.io_error.set(true);
    }

    /// Consumes the sticky write-failure flag. fsync calls this after
    /// quiescing: `true` means some deferred write was lost since the last
    /// check and the sync must fail with `FsError::Io`.
    pub fn take_io_error(&self) -> bool {
        self.io_error.replace(false)
    }
}

/// CPU charges the executor pays on behalf of the file system.
#[derive(Clone, Copy, Debug)]
pub struct IoCosts {
    /// Per-transfer setup (driver + controller command build).
    pub io_setup: SimDuration,
    /// Per-transfer completion interrupt.
    pub io_intr: SimDuration,
}

/// Cached per-stream metric handles (`iopath.cluster_*_blocks{stream=N}`).
#[derive(Clone)]
struct PerStream {
    read_blocks: Histogram,
    write_blocks: Histogram,
}

/// Prefetch instrumentation (`io.prefetch_*`): issued blocks, blocks a
/// demand access later claimed (accuracy = hits / issued), bytes read
/// speculatively but recycled unconsumed (plus sieve gap filler), and
/// the distance each issuing plan ran at.
#[derive(Clone)]
struct PrefetchMetrics {
    issued: Counter,
    hits: Counter,
    wasted: Counter,
    distance: Histogram,
}

struct IoPathInner {
    sim: Sim,
    cpu: Cpu,
    disk: SharedDevice,
    cache: PageCache,
    costs: IoCosts,
    block_size: usize,
    sectors_per_block: u32,
    /// Pages created by read-ahead and not yet claimed by a demand access
    /// (feeds the "readahead used" accounting in the caller). Shared with
    /// the page cache's recycle hook, which counts unclaimed prefetched
    /// pages as wasted when their identity is destroyed.
    ra_pending: Rc<RefCell<HashSet<PageKey>>>,
    streams: RefCell<HashMap<u32, PerStream>>,
    /// Per-stream prefetch engines (the adaptive-readahead state the
    /// mounts used to keep in their in-core inodes).
    prefetchers: RefCell<HashMap<u32, Prefetcher>>,
    /// Policy new streams start under (set once at mount).
    prefetch_policy: Cell<PrefetchPolicy>,
    /// The mount's I/O unit in blocks — the adaptive engine's distance
    /// quantum.
    prefetch_unit: Cell<u32>,
    pf: PrefetchMetrics,
    /// Device-error retries before a transfer fails with `FsError::Io`
    /// (see `Tuning::io_retry_max`).
    retry_max: Cell<u32>,
    /// Base virtual-time backoff between retries; doubles per attempt.
    retry_backoff: Cell<SimDuration>,
}

/// Default retry budget when the mount does not call
/// [`IoPath::set_retry`] (matches `Tuning::io_retry_max`).
const DEFAULT_RETRY_MAX: u32 = 4;

/// Default base backoff (matches `Tuning::io_retry_backoff_ms`).
const DEFAULT_RETRY_BACKOFF_MS: u64 = 2;

/// The per-mount I/O executor. Clones share the engine.
#[derive(Clone)]
pub struct IoPath {
    inner: Rc<IoPathInner>,
}

impl IoPath {
    /// Cluster-length buckets, matching the file systems' histograms.
    const LEN_EDGES: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

    /// Builds an executor over the mount's devices. The block size is the
    /// cache's page size and must be a whole number of disk sectors.
    pub fn new(
        sim: &Sim,
        cpu: &Cpu,
        disk: &SharedDevice,
        cache: &PageCache,
        costs: IoCosts,
    ) -> IoPath {
        let block_size = cache.page_size();
        let sector = disk.sector_size() as usize;
        assert_eq!(block_size % sector, 0, "page size must be whole sectors");
        let s = sim.stats();
        let pf = PrefetchMetrics {
            issued: s.counter("io.prefetch_issued"),
            hits: s.counter("io.prefetch_hits"),
            wasted: s.counter("io.prefetch_wasted_bytes"),
            distance: s.histogram("io.prefetch_distance", &Self::LEN_EDGES),
        };
        let ra_pending: Rc<RefCell<HashSet<PageKey>>> = Rc::new(RefCell::new(HashSet::new()));
        // Wasted-prefetch accounting: a page read ahead but never claimed
        // by a demand access still holds its claim when the cache recycles
        // its identity — those bytes moved for nothing.
        {
            let pending = Rc::clone(&ra_pending);
            let wasted = pf.wasted.clone();
            let bytes = block_size as u64;
            cache.add_recycle_hook(move |key| {
                if pending.borrow_mut().remove(&key) {
                    wasted.add(bytes);
                }
            });
        }
        IoPath {
            inner: Rc::new(IoPathInner {
                sim: sim.clone(),
                cpu: cpu.clone(),
                disk: disk.clone(),
                cache: cache.clone(),
                costs,
                block_size,
                sectors_per_block: (block_size / sector) as u32,
                ra_pending,
                streams: RefCell::new(HashMap::new()),
                prefetchers: RefCell::new(HashMap::new()),
                prefetch_policy: Cell::new(PrefetchPolicy::Fixed),
                prefetch_unit: Cell::new(1),
                pf,
                retry_max: Cell::new(DEFAULT_RETRY_MAX),
                retry_backoff: Cell::new(SimDuration::from_millis(DEFAULT_RETRY_BACKOFF_MS)),
            }),
        }
    }

    /// Selects the prefetch engine new streams run (set once at mount)
    /// and the mount's I/O unit in blocks — the quantum the adaptive
    /// engine measures distance in.
    pub fn set_prefetch(&self, policy: PrefetchPolicy, unit_blocks: u32) {
        self.inner.prefetch_policy.set(policy);
        self.inner.prefetch_unit.set(unit_blocks.max(1));
    }

    /// Dry-runs the stream's prefetch engine for an access to `lbn`
    /// without committing the state transition. Callers whose
    /// `cluster_len` probes resolve lazily (UFS `bmap` awaits) loop on
    /// this until every probe is known, then call
    /// [`IoPath::prefetch_commit`] with identical inputs.
    pub fn prefetch_dry(
        &self,
        stream: StreamId,
        lbn: u64,
        cached: bool,
        cluster_len: impl FnMut(u64) -> u32,
        size_hint_blocks: u32,
    ) -> PrefetchPlan {
        let mut engine = self.engine(stream);
        engine.on_access(
            lbn,
            cached,
            cluster_len,
            size_hint_blocks,
            self.inner.cache.free_count() as u64,
            self.inner.cache.lotsfree() as u64,
        )
    }

    /// Runs the stream's prefetch engine for an access to `lbn`,
    /// committing the state transition, and returns the plan. Pressure
    /// (`cache.free_pages` vs the pageout reserve) is read here, so a
    /// dry run and a commit in the same synchronous stretch agree.
    pub fn prefetch_commit(
        &self,
        stream: StreamId,
        lbn: u64,
        cached: bool,
        cluster_len: impl FnMut(u64) -> u32,
        size_hint_blocks: u32,
    ) -> PrefetchPlan {
        let free = self.inner.cache.free_count() as u64;
        let reserve = self.inner.cache.lotsfree() as u64;
        let mut engines = self.inner.prefetchers.borrow_mut();
        let engine = engines.entry(stream.as_u32()).or_insert_with(|| {
            Prefetcher::new(
                self.inner.prefetch_policy.get(),
                self.inner.prefetch_unit.get(),
            )
        });
        let plan = engine.on_access(lbn, cached, cluster_len, size_hint_blocks, free, reserve);
        drop(engines);
        if !plan.runs.is_empty() {
            self.inner.pf.distance.observe(plan.distance.max(1) as u64);
        }
        plan
    }

    /// A clone of the stream's engine (creating it on first use).
    fn engine(&self, stream: StreamId) -> Prefetcher {
        self.inner
            .prefetchers
            .borrow_mut()
            .entry(stream.as_u32())
            .or_insert_with(|| {
                Prefetcher::new(
                    self.inner.prefetch_policy.get(),
                    self.inner.prefetch_unit.get(),
                )
            })
            .clone()
    }

    /// Tunes the bounded-retry policy: up to `max` resubmissions per
    /// transfer, sleeping `backoff_ms * 2^attempt` virtual milliseconds
    /// between them.
    pub fn set_retry(&self, max: u32, backoff_ms: u32) {
        self.inner.retry_max.set(max);
        self.inner
            .retry_backoff
            .set(SimDuration::from_millis(backoff_ms as u64));
    }

    /// Exponential backoff for retry `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.inner.retry_backoff.get().as_nanos();
        SimDuration::from_nanos(base.saturating_mul(1u64 << attempt.min(16)))
    }

    /// Awaits a read, absorbing transient device errors: on `MediaError`
    /// the transfer is resubmitted up to the tuned budget with exponential
    /// virtual-time backoff (under an `iopath.retry` span); `DeviceGone`
    /// fails fast — the device will not answer, only redundancy below or
    /// the caller above can help. Terminal failures return `FsError::Io`.
    async fn await_read(
        &self,
        mut handle: IoHandle,
        lba: u64,
        nsect: u32,
        stream: u32,
        parent: SpanId,
    ) -> FsResult<Vec<u8>> {
        let inner = &*self.inner;
        let mut attempt = 0u32;
        loop {
            let res = handle.wait().await;
            match res.status {
                IoStatus::Ok => return Ok(res.data.expect("read returns data")),
                IoStatus::MediaError if attempt < inner.retry_max.get() => {
                    let s = inner.sim.stats();
                    s.counter("io.errors{kind=media}").inc();
                    s.counter("io.retries").inc();
                    let rs = inner.sim.tracer().start("iopath.retry", stream, parent);
                    inner.sim.tracer().arg(rs, "attempt", attempt as u64 + 1);
                    inner.sim.sleep(self.backoff(attempt)).await;
                    handle = inner.disk.submit_read_for(lba, nsect, stream, parent);
                    inner.sim.tracer().end(rs);
                    attempt += 1;
                }
                status => {
                    inner
                        .sim
                        .stats()
                        .counter(if status == IoStatus::DeviceGone {
                            "io.errors{kind=gone}"
                        } else {
                            "io.errors{kind=media}"
                        })
                        .inc();
                    return Err(FsError::Io);
                }
            }
        }
    }

    /// Tears down the busy pages of a failed fill: each page's identity is
    /// destroyed (waiters re-fault) and any read-ahead claim is dropped.
    fn drop_failed_pages(&self, vnode: VnodeId, pages: &[(u64, PageId)]) {
        let inner = &*self.inner;
        for &(lbn, id) in pages {
            let key = PageKey {
                vnode,
                offset: lbn * inner.block_size as u64,
            };
            inner.ra_pending.borrow_mut().remove(&key);
            inner.cache.invalidate_page(id);
        }
    }

    /// The transfer unit (one page = one file system block).
    pub fn block_size(&self) -> usize {
        self.inner.block_size
    }

    fn key(&self, fstream: &FileStream, lbn: u64) -> PageKey {
        PageKey {
            vnode: fstream.vnode,
            offset: lbn * self.inner.block_size as u64,
        }
    }

    fn per_stream(&self, stream: StreamId) -> PerStream {
        self.inner
            .streams
            .borrow_mut()
            .entry(stream.as_u32())
            .or_insert_with(|| {
                let s = self.inner.sim.stats();
                PerStream {
                    read_blocks: s.stream_histogram(
                        "iopath.cluster_read_blocks",
                        stream.as_u32(),
                        &Self::LEN_EDGES,
                    ),
                    write_blocks: s.stream_histogram(
                        "iopath.cluster_write_blocks",
                        stream.as_u32(),
                        &Self::LEN_EDGES,
                    ),
                }
            })
            .clone()
    }

    /// True if `key` was produced by read-ahead and not yet claimed;
    /// claims it and counts an `io.prefetch_hits` block. Call on a
    /// demand hit to account read-ahead usefulness.
    pub fn take_ra_pending(&self, key: PageKey) -> bool {
        let hit = self.inner.ra_pending.borrow_mut().remove(&key);
        if hit {
            self.inner.pf.hits.inc();
        }
        hit
    }

    /// Resolves one typed intent against the cache and the disk.
    pub async fn execute(
        &self,
        fstream: &Rc<FileStream>,
        map: &impl BlockMap,
        intent: IoIntent,
    ) -> FsResult<Executed> {
        self.execute_traced(fstream, map, intent, SpanId::NONE)
            .await
    }

    /// [`IoPath::execute`], nesting the intent's trace spans under
    /// `parent`.
    ///
    /// Only a demand read's span is actually parented there: read-ahead
    /// fills and cluster writebacks complete asynchronously, *after* the
    /// faulting operation returns, so their spans are roots — a span must
    /// lie within its parent's interval for the trace to mean anything.
    pub async fn execute_traced(
        &self,
        fstream: &Rc<FileStream>,
        map: &impl BlockMap,
        intent: IoIntent,
        parent: SpanId,
    ) -> FsResult<Executed> {
        match intent {
            IoIntent::ReadCluster(rc) => self.read_cluster(fstream, rc, parent).await,
            IoIntent::ReadRuns(rr) => self.read_runs(fstream, map, rr, parent).await,
            IoIntent::WriteCluster(wc) => self.write_clusters(fstream, map, wc).await,
            IoIntent::FreeBehind(fb) => Ok(Executed::Freed(self.free_page(fb))),
        }
    }

    /// Creates busy pages for `[lbn, lbn+len)` — clipped at the first
    /// already-cached page — and submits one contiguous, stream-tagged
    /// read. Demand reads return the in-flight [`ClusterRead`]; read-ahead
    /// spawns the fill task and returns immediately.
    async fn read_cluster(
        &self,
        fstream: &Rc<FileStream>,
        rc: ReadCluster,
        parent: SpanId,
    ) -> FsResult<Executed> {
        let inner = &*self.inner;
        if rc.reason == ReadReason::Readahead
            && inner.cache.lookup(self.key(fstream, rc.lbn)).is_some()
        {
            // The data already arrived (or was never evicted): nothing to do.
            return Ok(Executed::AlreadyCached);
        }
        let stream = fstream.id().as_u32();
        let span = match rc.reason {
            ReadReason::Demand => inner
                .sim
                .tracer()
                .start("iopath.read_cluster", stream, parent),
            // Read-ahead outlives the faulting operation; see
            // `execute_traced`.
            ReadReason::Readahead => {
                inner
                    .sim
                    .tracer()
                    .start("iopath.readahead", stream, SpanId::NONE)
            }
        };
        inner.sim.tracer().arg(span, "lbn", rc.lbn);
        let mut pages = Vec::new();
        for i in 0..rc.len.max(1) {
            let key = self.key(fstream, rc.lbn + i as u64);
            if inner.cache.lookup(key).is_some() {
                break; // Already resident: clip the cluster here.
            }
            let id = inner.cache.create_traced(key, stream, span).await;
            // The page identity is fresh; drop any stale read-ahead claim
            // a recycled predecessor left behind.
            inner.ra_pending.borrow_mut().remove(&key);
            pages.push((rc.lbn + i as u64, id));
        }
        let n = pages.len() as u32;
        assert!(n > 0, "cluster read with zero absent pages");
        inner.sim.tracer().arg(span, "blocks", n as u64);
        inner.cpu.charge("io_setup", inner.costs.io_setup).await;
        self.per_stream(fstream.id()).read_blocks.observe(n as u64);
        let lba = rc.pbn as u64 * inner.sectors_per_block as u64;
        let nsect = n * inner.sectors_per_block;
        let handle = inner.disk.submit_read_for(lba, nsect, stream, span);
        let io = ClusterRead {
            handle,
            lba,
            nsect,
            stream,
            vnode: fstream.vnode,
            pages,
            span,
        };
        match rc.reason {
            ReadReason::Demand => Ok(Executed::ReadIssued(io)),
            ReadReason::Readahead => {
                let blocks = io.blocks();
                inner.pf.issued.add(blocks as u64);
                {
                    let mut ra = inner.ra_pending.borrow_mut();
                    for (run_lbn, _) in &io.pages {
                        ra.insert(self.key(fstream, *run_lbn));
                    }
                }
                self.spawn_fill(io);
                Ok(Executed::ReadaheadIssued { blocks })
            }
        }
    }

    /// Resolves the file's run-list once and moves up to `rr.len` blocks
    /// in one batch — busy pages are created for the absent prefix
    /// (clipped at the first already-cached page), one `io_setup` is
    /// charged for the whole batch, and one stream-tagged transfer is
    /// submitted per physical run. Demand batches return the in-flight
    /// [`BatchRead`]; read-ahead spawns the fill task and returns.
    async fn read_runs(
        &self,
        fstream: &Rc<FileStream>,
        map: &impl BlockMap,
        rr: ReadRuns,
        parent: SpanId,
    ) -> FsResult<Executed> {
        let inner = &*self.inner;
        if rr.reason == ReadReason::Readahead
            && inner.cache.lookup(self.key(fstream, rr.lbn)).is_some()
        {
            return Ok(Executed::AlreadyCached);
        }
        let runs = map.runs(rr.lbn, rr.len.max(1)).await?;
        let covered: u32 = runs.iter().map(|&(_, n)| n).sum();
        if covered == 0 {
            return match rr.reason {
                // The caller saw the block mapped; an empty run-list here
                // means the map lost it underneath us.
                ReadReason::Demand => Err(FsError::Corrupt),
                ReadReason::Readahead => Ok(Executed::AlreadyCached),
            };
        }
        let stream = fstream.id().as_u32();
        let span = match rr.reason {
            ReadReason::Demand => inner.sim.tracer().start("iopath.read_runs", stream, parent),
            // Read-ahead outlives the faulting operation; see
            // `execute_traced`.
            ReadReason::Readahead => {
                inner
                    .sim
                    .tracer()
                    .start("iopath.readahead", stream, SpanId::NONE)
            }
        };
        inner.sim.tracer().arg(span, "lbn", rr.lbn);
        let mut pages = Vec::new();
        for i in 0..covered.min(rr.len.max(1)) {
            let key = self.key(fstream, rr.lbn + i as u64);
            if inner.cache.lookup(key).is_some() {
                break; // Already resident: clip the batch here.
            }
            let id = inner.cache.create_traced(key, stream, span).await;
            // The page identity is fresh; drop any stale read-ahead claim
            // a recycled predecessor left behind.
            inner.ra_pending.borrow_mut().remove(&key);
            pages.push((rr.lbn + i as u64, id));
        }
        let n = pages.len() as u32;
        if n == 0 {
            // Everything arrived while the run-list resolved (the map's
            // translation may await, e.g. an indirect-block read).
            inner.sim.tracer().end(span);
            return Ok(Executed::AlreadyCached);
        }
        inner.sim.tracer().arg(span, "blocks", n as u64);
        // One setup for the whole batch: this is the amortization a
        // fragmented file gets from list-style I/O.
        inner.cpu.charge("io_setup", inner.costs.io_setup).await;
        self.per_stream(fstream.id()).read_blocks.observe(n as u64);
        let mut parts = Vec::new();
        let mut idx = 0usize;
        for &(pbn, len) in &runs {
            if idx >= pages.len() {
                break;
            }
            let take = (len as usize).min(pages.len() - idx);
            let part: Vec<(u64, PageId)> = pages[idx..idx + take].to_vec();
            let lba = pbn as u64 * inner.sectors_per_block as u64;
            let nsect = take as u32 * inner.sectors_per_block;
            let handle = inner.disk.submit_read_for(lba, nsect, stream, span);
            parts.push(BatchPart {
                handle,
                lba,
                nsect,
                pages: part,
            });
            idx += take;
        }
        inner.sim.tracer().arg(span, "runs", parts.len() as u64);
        let io = BatchRead {
            parts,
            stream,
            vnode: fstream.vnode,
            span,
        };
        match rr.reason {
            ReadReason::Demand => Ok(Executed::BatchIssued(io)),
            ReadReason::Readahead => {
                let blocks = io.blocks();
                inner.pf.issued.add(blocks as u64);
                // Claim every wanted page; sieve gap filler is known
                // wasted the moment it is issued.
                let mut gap_blocks = 0u64;
                {
                    let mut ra = inner.ra_pending.borrow_mut();
                    for part in &io.parts {
                        for (run_lbn, _) in &part.pages {
                            let wanted = match rr.sieve {
                                Some((keep, period)) if period > 0 => {
                                    ((run_lbn - rr.lbn) % period as u64) < keep as u64
                                }
                                _ => true,
                            };
                            if wanted {
                                ra.insert(self.key(fstream, *run_lbn));
                            } else {
                                gap_blocks += 1;
                            }
                        }
                    }
                }
                if gap_blocks > 0 {
                    inner.pf.wasted.add(gap_blocks * inner.block_size as u64);
                }
                self.spawn_fill_batch(io);
                Ok(Executed::ReadaheadIssued { blocks })
            }
        }
    }

    /// Waits out a demand batch part by part, charging one interrupt per
    /// transfer, fills and releases every page, and returns the page for
    /// `want_lbn`.
    ///
    /// Transient device errors are retried per part (see
    /// [`IoPath::set_retry`]); a part that fails terminally has its pages
    /// invalidated, and the whole call fails with `FsError::Io` if the
    /// failed part was the one carrying `want_lbn`. Other parts still
    /// complete — their handles are in flight and their busy pages must be
    /// resolved either way.
    pub async fn finish_batch(&self, io: BatchRead, want_lbn: u64) -> FsResult<PageId> {
        let inner = &*self.inner;
        let bs = inner.block_size;
        let mut want = None;
        let mut want_failed = false;
        for part in io.parts {
            let res = self
                .await_read(part.handle, part.lba, part.nsect, io.stream, io.span)
                .await;
            inner.cpu.charge("io_intr", inner.costs.io_intr).await;
            match res {
                Ok(data) => {
                    for (i, (run_lbn, id)) in part.pages.iter().enumerate() {
                        inner.cache.write_at(*id, 0, &data[i * bs..(i + 1) * bs]);
                        if *run_lbn == want_lbn {
                            // Stays busy until the whole batch lands: a later
                            // part's await must not let pageout recycle the page
                            // this batch was issued for.
                            want = Some(*id);
                        } else {
                            inner.cache.unbusy(*id);
                        }
                    }
                }
                Err(_) => {
                    if part.pages.iter().any(|&(l, _)| l == want_lbn) {
                        want_failed = true;
                    }
                    self.drop_failed_pages(io.vnode, &part.pages);
                }
            }
        }
        inner.sim.tracer().end(io.span);
        if want_failed {
            return Err(FsError::Io);
        }
        let want = want.expect("requested page is in the batch");
        inner.cache.unbusy(want);
        Ok(want)
    }

    /// Asynchronous completion for a read-ahead batch: wait out each
    /// part, charge the interrupt, fill and release. A part that fails
    /// terminally has its pages invalidated — the read was speculative,
    /// so there is nobody to tell; a later demand access re-faults and
    /// takes the error itself if the fault persists.
    fn spawn_fill_batch(&self, io: BatchRead) {
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let inner = &*this.inner;
            let bs = inner.block_size;
            for part in io.parts {
                // One child span per physical transfer, under the batch's
                // `iopath.readahead` root: the trace shows how the
                // speculative window split across the disk.
                let ps = inner
                    .sim
                    .tracer()
                    .start("iopath.readahead.part", io.stream, io.span);
                inner.sim.tracer().arg(ps, "lba", part.lba);
                inner
                    .sim
                    .tracer()
                    .arg(ps, "blocks", part.pages.len() as u64);
                let res = this
                    .await_read(part.handle, part.lba, part.nsect, io.stream, io.span)
                    .await;
                inner.cpu.charge("io_intr", inner.costs.io_intr).await;
                match res {
                    Ok(data) => {
                        for (i, (_lbn, id)) in part.pages.iter().enumerate() {
                            inner.cache.write_at(*id, 0, &data[i * bs..(i + 1) * bs]);
                            inner.cache.unbusy(*id);
                        }
                    }
                    Err(_) => this.drop_failed_pages(io.vnode, &part.pages),
                }
                inner.sim.tracer().end(ps);
            }
            inner.sim.tracer().end(io.span);
        });
    }

    /// Waits out a demand read, charges the interrupt, fills and releases
    /// every page of the run, and returns the page for `want_lbn`.
    ///
    /// Transient device errors are retried (see [`IoPath::set_retry`]); a
    /// terminal failure invalidates the run's pages and surfaces
    /// `FsError::Io`.
    pub async fn finish_read(&self, io: ClusterRead, want_lbn: u64) -> FsResult<PageId> {
        let inner = &*self.inner;
        let res = self
            .await_read(io.handle, io.lba, io.nsect, io.stream, io.span)
            .await;
        inner.cpu.charge("io_intr", inner.costs.io_intr).await;
        let data = match res {
            Ok(data) => data,
            Err(e) => {
                self.drop_failed_pages(io.vnode, &io.pages);
                inner.sim.tracer().end(io.span);
                return Err(e);
            }
        };
        let bs = inner.block_size;
        let mut want = None;
        for (i, (run_lbn, id)) in io.pages.iter().enumerate() {
            inner.cache.write_at(*id, 0, &data[i * bs..(i + 1) * bs]);
            inner.cache.unbusy(*id);
            if *run_lbn == want_lbn {
                want = Some(*id);
            }
        }
        inner.sim.tracer().end(io.span);
        Ok(want.expect("requested page is in the run"))
    }

    /// Asynchronous completion for read-ahead: wait, charge the interrupt,
    /// fill and release. Terminal failures invalidate the speculative
    /// pages (see [`IoPath::spawn_fill_batch`] for the rationale).
    fn spawn_fill(&self, io: ClusterRead) {
        let this = self.clone();
        self.inner.sim.spawn(async move {
            let inner = &*this.inner;
            let res = this
                .await_read(io.handle, io.lba, io.nsect, io.stream, io.span)
                .await;
            inner.cpu.charge("io_intr", inner.costs.io_intr).await;
            match res {
                Ok(data) => {
                    let bs = inner.block_size;
                    for (i, (_lbn, id)) in io.pages.iter().enumerate() {
                        inner.cache.write_at(*id, 0, &data[i * bs..(i + 1) * bs]);
                        inner.cache.unbusy(*id);
                    }
                }
                Err(_) => this.drop_failed_pages(io.vnode, &io.pages),
            }
            inner.sim.tracer().end(io.span);
        });
    }

    /// The paper's Figure 8 while loop: sweep `[range)` for dirty resident
    /// pages, gather each block-map-contiguous dirty run under page locks,
    /// reserve throttle space, and push one stream-tagged write per run.
    /// Completions (interrupt charge, page release, throttle credit) run
    /// asynchronously; [`FileStream::quiesce`] waits them out.
    async fn write_clusters(
        &self,
        fstream: &Rc<FileStream>,
        map: &impl BlockMap,
        wc: WriteCluster,
    ) -> FsResult<Executed> {
        let inner = &*self.inner;
        let bs = inner.block_size;
        let mut cluster_blocks = Vec::new();
        let mut cur = wc.range.start;
        while cur < wc.range.end {
            // Find the next dirty resident page in the range and lock it.
            // Re-check dirtiness after the lock: a concurrent flush (fsync
            // racing putpage, or the cleaner) may have written it while we
            // waited.
            let key = self.key(fstream, cur);
            let id = match inner.cache.lookup(key) {
                Some(id) if inner.cache.is_dirty(id) => id,
                _ => {
                    cur += 1;
                    continue;
                }
            };
            if !inner.cache.lock_busy(id).await {
                cur += 1;
                continue; // Page recycled while we waited.
            }
            if !inner.cache.is_dirty(id) {
                inner.cache.unbusy(id);
                cur += 1;
                continue;
            }
            // How far can one transfer go? The block map knows.
            let cap = ((wc.range.end - cur) as u32).min(map.max_cluster());
            let (pbn, contig) = match map.extent(cur, cap).await? {
                Some(v) => v,
                None => {
                    // A dirty page over a hole cannot happen: writes allocate.
                    inner.cache.unbusy(id);
                    return Err(FsError::Corrupt);
                }
            };
            // Gather the dirty run (clipped at the first clean/absent page),
            // locking as we go.
            let mut run: Vec<PageId> = vec![id];
            for i in 1..contig {
                let k = self.key(fstream, cur + i as u64);
                match inner.cache.lookup(k) {
                    Some(pid) if inner.cache.is_dirty(pid) => {
                        if !inner.cache.lock_busy(pid).await {
                            break; // Recycled while waiting.
                        }
                        if !inner.cache.is_dirty(pid) {
                            inner.cache.unbusy(pid);
                            break;
                        }
                        run.push(pid);
                    }
                    _ => break,
                }
            }
            let n = run.len() as u32;
            // Snapshot contents for the transfer.
            let mut payload = Vec::with_capacity(n as usize * bs);
            for pid in &run {
                inner
                    .cache
                    .with_page(*pid, |d| payload.extend_from_slice(d));
            }
            // A root span per cluster: the push completes after the caller
            // returns (see `execute_traced`), so it cannot nest anywhere.
            let span = inner.sim.tracer().start(
                "iopath.write_cluster",
                fstream.id().as_u32(),
                SpanId::NONE,
            );
            inner.sim.tracer().arg(span, "lbn", cur);
            inner.sim.tracer().arg(span, "blocks", n as u64);
            // Fairness: reserve write-queue space before submitting.
            let token = fstream
                .throttle
                .begin_write_traced(n as u64 * bs as u64, span)
                .await;
            inner.cpu.charge("io_setup", inner.costs.io_setup).await;
            self.per_stream(fstream.id()).write_blocks.observe(n as u64);
            fstream.io_started();
            let lba = pbn as u64 * inner.sectors_per_block as u64;
            let nsect = n * inner.sectors_per_block;
            let stream = fstream.id().as_u32();
            let mut handle = inner
                .disk
                .submit_write_for(lba, nsect, payload, stream, span);
            let this = self.clone();
            let fstream2 = Rc::clone(fstream);
            let free_after = wc.free_behind;
            inner.sim.spawn(async move {
                let inner = &*this.inner;
                let mut attempt = 0u32;
                let status = loop {
                    let res = handle.wait().await;
                    inner.cpu.charge("io_intr", inner.costs.io_intr).await;
                    match res.status {
                        IoStatus::MediaError if attempt < inner.retry_max.get() => {
                            let s = inner.sim.stats();
                            s.counter("io.errors{kind=media}").inc();
                            s.counter("io.retries").inc();
                            let rs = inner.sim.tracer().start("iopath.retry", stream, span);
                            inner.sim.tracer().arg(rs, "attempt", attempt as u64 + 1);
                            inner.sim.sleep(this.backoff(attempt)).await;
                            // Re-snapshot the payload: the run's pages are
                            // still locked busy by this writeback, so their
                            // contents are stable and current.
                            let bs = inner.block_size;
                            let mut payload = Vec::with_capacity(run.len() * bs);
                            for pid in &run {
                                inner
                                    .cache
                                    .with_page(*pid, |d| payload.extend_from_slice(d));
                            }
                            handle = inner
                                .disk
                                .submit_write_for(lba, nsect, payload, stream, span);
                            inner.sim.tracer().end(rs);
                            attempt += 1;
                        }
                        status => break status,
                    }
                };
                if !status.is_ok() {
                    inner
                        .sim
                        .stats()
                        .counter(if status == IoStatus::DeviceGone {
                            "io.errors{kind=gone}"
                        } else {
                            "io.errors{kind=media}"
                        })
                        .inc();
                    // The data is lost; there is no caller to fail. Record
                    // the sticky error for the next fsync and release the
                    // pages anyway — leaving them dirty would wedge the
                    // throttle and every quiescer forever.
                    fstream2.set_io_error();
                }
                for pid in &run {
                    inner.cache.clear_dirty(*pid);
                    inner.cache.unbusy(*pid);
                    if free_after {
                        inner.cache.free_page(*pid);
                    }
                }
                fstream2.throttle.complete(token);
                fstream2.io_finished();
                inner.sim.tracer().end(span);
            });
            cluster_blocks.push(n);
            cur += n as u64;
        }
        Ok(Executed::Wrote { cluster_blocks })
    }

    /// Free-behind mechanism: release the page unless it became busy or
    /// dirty since the policy looked.
    fn free_page(&self, fb: FreeBehind) -> bool {
        let inner = &*self.inner;
        if !inner.cache.is_busy(fb.page) && !inner.cache.is_dirty(fb.page) {
            inner.cache.free_page(fb.page);
            true
        } else {
            false
        }
    }
}
