//! # vfs — the vnode interface layer
//!
//! A slim model of the Sun VFS architecture (Kleiman, "Vnodes", USENIX
//! 1986): file systems expose
//! file objects ("vnodes") behind a uniform interface, and the kernel above
//! (here: workloads and benchmarks) manipulates files without knowing the
//! implementation. Two file system types implement these traits in this
//! repository: `ufs` (the paper's subject) and `extentfs` (the comparator).
//!
//! The interface is deliberately narrower than a real VFS — just what the
//! paper's evaluation exercises: create/open/remove/lookup, read/write at an
//! offset (in copying or mapped mode), fsync, truncate, and mount-wide sync.

use std::fmt;

pub mod iopath;

/// Identifies a file for page cache naming; equals
/// [`pagecache::VnodeId`].
pub type VnodeId = u64;

/// Identity of an I/O stream, allocated per open file (see
/// [`iopath::FileStream`]). The id labels every request the file issues —
/// page-cache lookups, cluster transfers, throttle stalls and disk queue
/// entries — so per-stream metrics (`…{stream=N}`) can attribute the
/// disk's bandwidth. Stream 0 is reserved for untagged background and
/// metadata traffic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StreamId(u32);

impl StreamId {
    /// The background/metadata stream.
    pub const UNTAGGED: StreamId = StreamId(0);

    /// Wraps a raw id (normally produced by `sim.stats().alloc_stream()`).
    pub fn new(id: u32) -> StreamId {
        StreamId(id)
    }

    /// The raw label used in metric names.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How `rdwr` moves bytes.
///
/// `Copy` models `read(2)`/`write(2)`: the kernel copies between the page
/// cache and the caller's buffer, paying copy CPU per byte. `Mapped` models
/// `mmap(2)` access: pages are faulted in but not copied — the mode the
/// paper's Figure 12 uses "to avoid the copying of data from the kernel to
/// the user" so the file system overhead itself is visible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessMode {
    /// Copying semantics (read/write system calls).
    Copy,
    /// Mapped semantics (mmap): fault, no copyout.
    Mapped,
}

/// Errors surfaced by file system operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// Name already exists.
    Exists,
    /// The file system is out of blocks (respecting the minfree reserve).
    NoSpace,
    /// The file system is out of inodes.
    NoInodes,
    /// Operation applied to the wrong object kind.
    NotAFile,
    /// A directory operation on a non-directory.
    NotADirectory,
    /// Removing a non-empty directory.
    NotEmpty,
    /// File offset or size beyond what the format supports.
    TooBig,
    /// Malformed argument (bad name, bad offset).
    Invalid,
    /// Corrupt on-disk structure detected.
    Corrupt,
    /// The device failed the transfer and bounded retry did not recover
    /// it (media defect past the retry budget, or the whole device gone).
    Io,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FsError::NotFound => "no such file or directory",
            FsError::Exists => "file exists",
            FsError::NoSpace => "no space left on device",
            FsError::NoInodes => "no inodes left on device",
            FsError::NotAFile => "not a regular file",
            FsError::NotADirectory => "not a directory",
            FsError::NotEmpty => "directory not empty",
            FsError::TooBig => "file too large",
            FsError::Invalid => "invalid argument",
            FsError::Corrupt => "file system corrupted",
            FsError::Io => "I/O error",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FsError {}

/// Result alias for file system operations.
pub type FsResult<T> = Result<T, FsError>;

/// A file handle ("vnode") exposed by a file system.
///
/// Offsets are arbitrary byte offsets; implementations handle page/block
/// alignment internally, exactly as `ufs_rdwr` does by mapping each file
/// block and copying pieces.
#[allow(async_fn_in_trait)] // Single-threaded simulation: futures are !Send by design.
pub trait Vnode {
    /// Page cache identity of this file.
    fn id(&self) -> VnodeId;

    /// Current file size in bytes.
    fn size(&self) -> u64;

    /// The I/O stream this open file's requests are attributed to.
    /// Defaults to the untagged stream for implementations that don't
    /// thread a [`iopath::FileStream`].
    fn stream(&self) -> StreamId {
        StreamId::UNTAGGED
    }

    /// Reads up to `buf.len()` bytes at `off` into `buf`, returning how
    /// many bytes were read; short reads happen only at EOF.
    ///
    /// This is the primitive read operation: implementations fill the
    /// caller's buffer — the way `uio`-based `ufs_rdwr` fills the caller's
    /// address space — so steady-state readers reuse one allocation across
    /// calls instead of receiving a fresh `Vec` per request.
    async fn read_into(&self, off: u64, buf: &mut [u8], mode: AccessMode) -> FsResult<usize>;

    /// Allocating convenience wrapper over [`Vnode::read_into`]: reads up
    /// to `len` bytes at `off` into a fresh buffer, truncated to the bytes
    /// actually read.
    async fn read(&self, off: u64, len: usize, mode: AccessMode) -> FsResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        let n = self.read_into(off, &mut buf, mode).await?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Writes `data` at `off`, extending the file if needed.
    async fn write(&self, off: u64, data: &[u8], mode: AccessMode) -> FsResult<()>;

    /// Forces dirty pages and metadata for this file to stable storage.
    async fn fsync(&self) -> FsResult<()>;

    /// Truncates (or extends with a hole) to `size` bytes.
    async fn truncate(&self, size: u64) -> FsResult<()>;
}

/// A mounted file system instance.
#[allow(async_fn_in_trait)] // Single-threaded simulation: futures are !Send by design.
pub trait FileSystem {
    /// The vnode type this file system serves.
    type File: Vnode;

    /// Creates a regular file (in the root directory for flat namespaces;
    /// path-capable implementations accept `/`-separated paths).
    async fn create(&self, path: &str) -> FsResult<Self::File>;

    /// Opens an existing regular file.
    async fn open(&self, path: &str) -> FsResult<Self::File>;

    /// Removes a file, freeing its blocks.
    async fn remove(&self, path: &str) -> FsResult<()>;

    /// Flushes all dirty state in the mount to stable storage.
    async fn sync(&self) -> FsResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(FsError::NoSpace.to_string(), "no space left on device");
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
    }
}
