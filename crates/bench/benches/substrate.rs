//! Micro-benchmarks of the simulation substrates: executor throughput,
//! disk mechanism service rate, and page cache operations. These bound how
//! much virtual time the reproduction can simulate per host second.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

use diskmodel::{BlockDevice, BlockDeviceExt, Disk, DiskParams};
use pagecache::{PageCache, PageCacheParams, PageKey};
use simkit::{Sim, SimDuration};

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkit");
    g.bench_function("spawn_join_1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                let mut sum = 0u64;
                for i in 0..1000u64 {
                    sum += s.spawn(async move { i }).await;
                }
                sum
            })
        })
    });
    g.bench_function("timer_wheel_1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..1000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_micros(black_box(i % 97))).await;
                });
            }
            sim.run()
        })
    });
    g.finish();
}

fn bench_disk(c: &mut Criterion) {
    let mut g = c.benchmark_group("diskmodel");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("sequential_track_reads", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let disk = Disk::new(&sim, DiskParams::small_test());
            let d = disk.clone();
            sim.run_until(async move {
                for i in 0..64u64 {
                    d.read(i * 32, 32).await;
                }
            });
            disk.stats().sectors_read
        })
    });
    g.bench_function("random_queued_reads", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let disk = Disk::new(&sim, DiskParams::small_test());
            let d = disk.clone();
            sim.run_until(async move {
                let handles: Vec<_> = (0..64u64)
                    .map(|i| d.submit_read((i * 6151) % 16000, 8))
                    .collect();
                for h in handles {
                    h.wait().await;
                }
            });
            disk.stats().seeks
        })
    });
    g.finish();
}

fn bench_pagecache(c: &mut Criterion) {
    let mut g = c.benchmark_group("pagecache");
    g.bench_function("create_free_cycle", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let pc = PageCache::new(&sim, PageCacheParams::small_test());
            let pc2 = pc.clone();
            sim.run_until(async move {
                for round in 0..8u64 {
                    let mut ids = Vec::new();
                    for i in 0..32u64 {
                        let id = pc2
                            .create(PageKey {
                                vnode: round,
                                offset: i * 8192,
                            })
                            .await;
                        pc2.unbusy(id);
                        ids.push(id);
                    }
                    for id in ids {
                        pc2.free_page(id);
                    }
                }
            });
            pc.stats().creates
        })
    });
    g.bench_function("lookup_hit", |b| {
        let sim = Sim::new();
        let pc = PageCache::new(&sim, PageCacheParams::small_test());
        let pc2 = pc.clone();
        sim.run_until(async move {
            for i in 0..32u64 {
                let id = pc2
                    .create(PageKey {
                        vnode: 1,
                        offset: i * 8192,
                    })
                    .await;
                pc2.unbusy(id);
            }
        });
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..1000u64 {
                if pc
                    .lookup(PageKey {
                        vnode: 1,
                        offset: black_box((i % 32) * 8192),
                    })
                    .is_some()
                {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group!(benches, bench_executor, bench_disk, bench_pagecache);
criterion_main!(benches);
