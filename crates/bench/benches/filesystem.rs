//! End-to-end file system benchmarks on the small test world: allocator
//! behavior, sequential and random data paths under both the old and new
//! code paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use clufs::Tuning;
use simkit::Sim;
use ufs::build_test_world;
use vfs::{AccessMode, FileSystem, Vnode};

fn seq_write_read(tuning: Tuning, bytes: usize) -> u64 {
    let sim = Sim::new();
    let s = sim.clone();
    sim.run_until(async move {
        let w = build_test_world(&s, tuning).await.unwrap();
        let f = w.fs.create("bench").await.unwrap();
        let payload = vec![0xCD; 8192];
        let mut off = 0u64;
        while (off as usize) < bytes {
            f.write(off, &payload, AccessMode::Copy).await.unwrap();
            off += 8192;
        }
        f.fsync().await.unwrap();
        w.cache.invalidate_vnode(f.id(), 0);
        let mut total = 0u64;
        let mut off = 0u64;
        while (off as usize) < bytes {
            total += f.read(off, 8192, AccessMode::Copy).await.unwrap().len() as u64;
            off += 8192;
        }
        total
    })
}

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("ufs_data_path");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("clustered_1mb_roundtrip", |b| {
        b.iter(|| seq_write_read(Tuning::config_a(), 1 << 20))
    });
    g.bench_function("block_at_a_time_1mb_roundtrip", |b| {
        b.iter(|| seq_write_read(Tuning::config_d(), 1 << 20))
    });
    g.finish();
}

fn bench_namespace(c: &mut Criterion) {
    let mut g = c.benchmark_group("ufs_namespace");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("create_write_remove_50", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
                for i in 0..50 {
                    let f = w.fs.create(&format!("f{i}")).await.unwrap();
                    f.write(0, &[1u8; 4000], AccessMode::Copy).await.unwrap();
                }
                for i in 0..50 {
                    w.fs.remove(&format!("f{i}")).await.unwrap();
                }
                w.fs.free_blocks()
            })
        })
    });
    g.finish();
}

fn bench_mkfs_fsck(c: &mut Criterion) {
    let mut g = c.benchmark_group("ufs_admin");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("mkfs_mount_fsck", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                let w = build_test_world(&s, Tuning::config_a()).await.unwrap();
                let f = w.fs.create("x").await.unwrap();
                f.write(0, &[9u8; 100_000], AccessMode::Copy).await.unwrap();
                w.fs.clone().unmount().await.unwrap();
                let report = ufs::fsck(&*w.disk).await.unwrap();
                assert!(report.is_clean());
                report.used_blocks
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_paths, bench_namespace, bench_mkfs_fsck);
criterion_main!(benches);
