//! Wall-clock (host-time) benchmark suite: times canonical `iobench`
//! experiment runs with `std::time::Instant` and writes the results as
//! `BENCH_iobench.json` (schema `iobench-bench/v3`, documented in
//! DESIGN.md "Wall-clock performance").
//!
//! Unlike the criterion benches (virtual-time artifact regeneration), this
//! harness answers "how long does the simulator take on this machine" —
//! the number the hot-path optimizations and the `--jobs` fan-out move —
//! and measures the parallel speedup of the Figure 10 matrix at jobs=1 vs
//! jobs=N on the current host. After the timed loops, one extra
//! profiler-instrumented pass (`simkit::perfmon`) captures per-worker
//! busy/idle utilization, so a disappointing speedup arrives with its
//! diagnosis attached. A speedup below 1.0x raises the document's
//! `attention` marker, which `scripts/bench.sh` turns into a loud warning.
//!
//! ```text
//! cargo bench -p bench --bench wallclock -- [--smoke] [--jobs N] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI (tiny files, one sample).

use std::time::Instant;

use iobench::experiments::{extents_run, fig10_cell, fig10_run, streams_run, RunScale};
use iobench::perfout::HostProfile;
use iobench::readahead::readahead_run;
use iobench::runner::Runner;
use iobench::{Config, IoKind};
use simkit::perfmon;

/// Counting allocator so the instrumented pass reports allocation churn
/// alongside utilization. Pass-through (and uncounted) while disabled.
#[global_allocator]
static ALLOC: perfmon::CountingAlloc = perfmon::CountingAlloc;

/// Small enough for a CI smoke job.
fn smoke_scale() -> RunScale {
    RunScale {
        file_bytes: 1 << 20,
        random_ops: 32,
        cpu_file_bytes: 1 << 20,
    }
}

struct Sampled {
    name: &'static str,
    millis: Vec<f64>,
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn sample(name: &'static str, samples: usize, mut f: impl FnMut()) -> Sampled {
    let millis = (0..samples).map(|_| time_ms(&mut f)).collect();
    let s = Sampled { name, millis };
    eprintln!(
        "  {:<24} mean {:>10.1} ms  ({} sample(s))",
        s.name,
        mean(&s.millis),
        samples
    );
    s
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn min(v: &[f64]) -> f64 {
    v.iter().cloned().fold(f64::INFINITY, f64::min)
}

fn max(v: &[f64]) -> f64 {
    v.iter().cloned().fold(0.0, f64::max)
}

fn main() {
    simkit::tune_host_allocator();
    // Cargo invokes every `harness = false` bench binary with a trailing
    // `--bench` flag; swallow it alongside our own flags.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_iobench.json");
    let mut jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {}
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out requires a path").clone();
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--jobs requires a positive count");
            }
            other => {
                eprintln!("wallclock: ignoring unknown argument {other}");
            }
        }
        i += 1;
    }

    let (mode, scale, samples) = if smoke {
        ("smoke", smoke_scale(), 1)
    } else {
        ("full", RunScale::quick(), 3)
    };
    eprintln!("wallclock bench: mode={mode} jobs={jobs} samples={samples}");

    // Canonical single-run workloads (serial: measures the per-run hot
    // path, not the fan-out).
    let serial = Runner::serial(None);
    let results = [
        sample("fig10_A_FSR", samples, || {
            fig10_cell(Config::A, IoKind::SeqRead, scale, None);
        }),
        sample("fig10_D_FSR", samples, || {
            fig10_cell(Config::D, IoKind::SeqRead, scale, None);
        }),
        sample("streams_4", samples, || {
            streams_run(4, scale, &serial);
        }),
        sample("aging_extents", samples, || {
            extents_run(true, &serial);
        }),
        sample("readahead_sweep", samples, || {
            readahead_run(scale, &serial);
        }),
    ];

    // Parallel fan-out: the full Figure 10 matrix, serial vs all cores.
    // Best-of-N (min) is the noise-robust wall-clock estimator: on a
    // loaded host the min approaches the true cost, the mean does not.
    eprintln!("  fig10 matrix, jobs=1 vs jobs={jobs}...");
    let matrix = |jobs: usize| {
        min(&(0..samples.max(2))
            .map(|_| {
                time_ms(|| {
                    fig10_run(scale, &Runner::new(jobs, None));
                })
            })
            .collect::<Vec<_>>())
    };
    let jobs1_ms = matrix(1);
    let jobsn_ms = matrix(jobs);
    let speedup = jobs1_ms / jobsn_ms;
    eprintln!(
        "  fig10 matrix: jobs=1 {jobs1_ms:.0} ms, jobs={jobs} {jobsn_ms:.0} ms, speedup {speedup:.2}x"
    );

    // One instrumented pass at jobs=N for per-worker utilization. Kept
    // out of the timed loops above so profiling overhead (small as it is)
    // never touches the published numbers.
    perfmon::set_enabled(true);
    let _ = perfmon::take_records();
    fig10_run(scale, &Runner::new(jobs, None));
    perfmon::set_enabled(false);
    let (records, dropped) = perfmon::take_records();
    let profile = HostProfile::build(&records, dropped);
    for w in &profile.workers {
        eprintln!(
            "  worker {:<3} busy {:>8.1} ms  idle {:>8.1} ms  util {:>5.1}%",
            w.worker,
            w.busy_ns as f64 / 1e6,
            w.idle_ns as f64 / 1e6,
            w.utilization * 100.0
        );
    }
    // The marker a wrapper can grep without parsing: nonzero means "this
    // run needs a human's attention" (today: the fan-out made it slower).
    // On a single-core host no speedup is possible, so the marker would
    // only ever cry wolf — suppress it there.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let attention: u32 = u32::from(speedup < 1.0 && host_cores > 1);
    if attention != 0 {
        eprintln!(
            "  ATTENTION: parallel speedup {speedup:.2}x < 1.0x — the jobs={jobs} \
             fan-out is slower than serial; see the worker table above"
        );
    }

    let benches = results
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"samples\":{},\"mean_ms\":{:.3},\"min_ms\":{:.3},\"max_ms\":{:.3}}}",
                s.name,
                s.millis.len(),
                mean(&s.millis),
                min(&s.millis),
                max(&s.millis)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let workers = profile
        .workers
        .iter()
        .map(|w| {
            format!(
                "{{\"worker\":{},\"busy_ms\":{:.3},\"idle_ms\":{:.3},\"utilization\":{:.4}}}",
                w.worker,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6,
                w.utilization
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        "{{\"schema\":\"iobench-bench/v3\",\"mode\":\"{mode}\",\"jobs\":{jobs},\
         \"host_cores\":{host_cores},\"attention\":{attention},\"benches\":[{benches}],\
         \"parallel\":{{\"workload\":\"fig10_matrix\",\"jobs1_ms\":{jobs1_ms:.3},\
         \"jobsN_ms\":{jobsn_ms:.3},\"speedup\":{speedup:.3},\
         \"coverage\":{:.4},\"workers\":[{workers}]}}}}\n",
        profile.coverage
    );
    std::fs::write(&out, doc).expect("write BENCH_iobench.json");
    eprintln!("wrote {out}");
}
