//! One benchmark per paper table/figure: each measures the host cost of
//! regenerating that artifact at reduced (CI) scale, and — once per
//! `cargo bench` run — prints the regenerated table itself, so benching
//! doubles as a smoke reproduction. Use `cargo run --release -p iobench`
//! for the full paper-scale tables.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use iobench::experiments::{
    extentfs_comparison_run, extents_run, fig10_run, fig10_table, fig11_table, fig12_run,
    fig9_table, musbus_run, rejected_alternatives_run, write_limit_sweep_run, RunScale,
};
use iobench::runner::Runner;
use iobench::{run_iobench, Config, IoKind};
use simkit::Sim;
use std::time::Duration;
use vfs::Vnode;

static PRINT_ONCE: Once = Once::new();

fn quick() -> RunScale {
    RunScale::quick()
}

fn bench_fig10(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n=== Figure 9 ===\n{}", fig9_table());
        let data = fig10_run(quick(), &Runner::serial(None));
        println!("=== Figure 10 (quick scale) ===\n{}", fig10_table(&data));
        println!("=== Figure 11 (quick scale) ===\n{}", fig11_table(&data));
        let (t12, _, _) = fig12_run(quick(), &Runner::serial(None));
        println!("=== Figure 12 (quick scale) ===\n{t12}");
    });
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    // One representative cell per workload type, config A.
    for kind in [IoKind::SeqRead, IoKind::SeqWrite, IoKind::RandUpdate] {
        g.bench_function(format!("fig10_A_{}", kind.label()), |b| {
            b.iter(|| {
                let sim = Sim::new();
                let s = sim.clone();
                sim.run_until(async move {
                    let w = iobench::paper_world(
                        &s,
                        Config::A.tuning(),
                        iobench::WorldOptions::default(),
                    )
                    .await
                    .unwrap();
                    let cache = w.cache.clone();
                    run_iobench(
                        &s,
                        &w.fs,
                        move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
                        "t",
                        kind,
                        iobench::iobench::BenchOptions {
                            file_bytes: 2 << 20,
                            io_bytes: 8192,
                            random_ops: 64,
                            seed: 1,
                        },
                    )
                    .await
                    .unwrap()
                    .kb_per_sec()
                })
            })
        });
    }
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("fig12_cpu_comparison", |b| {
        b.iter(|| fig12_run(RunScale::quick(), &Runner::serial(None)).1)
    });
    g.finish();
}

fn bench_in_text(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("allocator_extents_quick", |b| {
        b.iter(|| extents_run(true, &Runner::serial(None)).1)
    });
    g.bench_function("musbus", |b| b.iter(|| musbus_run(&Runner::serial(None)).1));
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("rejected_alternatives", |b| {
        b.iter(|| rejected_alternatives_run(RunScale::quick(), &Runner::serial(None)).len())
    });
    g.bench_function("extentfs_comparison", |b| {
        b.iter(|| extentfs_comparison_run(RunScale::quick(), &Runner::serial(None)).len())
    });
    g.bench_function("write_limit_sweep", |b| {
        b.iter(|| write_limit_sweep_run(RunScale::quick(), &Runner::serial(None)).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig10,
    bench_fig12,
    bench_in_text,
    bench_ablations
);
criterion_main!(benches);
