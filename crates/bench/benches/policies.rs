//! Micro-benchmarks of the clustering policy engines (the paper's
//! contribution in isolation): these run millions of times per simulated
//! second in the hot `getpage`/`putpage` paths, so their host-side cost
//! bounds simulation speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clufs::{BmapCache, DelayedWrite, ExtentTuple, ReadAhead};

fn bench_readahead(c: &mut Criterion) {
    let mut g = c.benchmark_group("readahead");
    for maxcontig in [1u32, 7, 15] {
        g.bench_function(format!("sequential_scan_mc{maxcontig}"), |b| {
            b.iter(|| {
                let mut ra = ReadAhead::new();
                let mut planned = 0u64;
                for lbn in 0..1000u64 {
                    let plan = ra.on_access(
                        black_box(lbn),
                        lbn % maxcontig as u64 != 0,
                        |p| {
                            if p < 1000 {
                                maxcontig
                            } else {
                                0
                            }
                        },
                        0,
                    );
                    if plan.readahead.is_some() {
                        planned += 1;
                    }
                }
                planned
            })
        });
    }
    g.bench_function("random_access", |b| {
        b.iter(|| {
            let mut ra = ReadAhead::new();
            let mut seq = 0u64;
            for i in 0..1000u64 {
                let lbn = (i * 7919) % 4096;
                let plan = ra.on_access(black_box(lbn), false, |_| 8, 0);
                if plan.sequential {
                    seq += 1;
                }
            }
            seq
        })
    });
    g.finish();
}

fn bench_delayed_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("delayed_write");
    g.bench_function("sequential_mc15", |b| {
        b.iter(|| {
            let mut dw = DelayedWrite::new();
            let mut pushes = 0u64;
            for off in 0..1000u64 {
                if !matches!(dw.on_putpage(black_box(off), 15), clufs::WriteAction::Delay) {
                    pushes += 1;
                }
            }
            pushes
        })
    });
    g.bench_function("random", |b| {
        b.iter(|| {
            let mut dw = DelayedWrite::new();
            let mut pushes = 0u64;
            for i in 0..1000u64 {
                let off = (i * 6151) % 2048;
                if !matches!(dw.on_putpage(black_box(off), 15), clufs::WriteAction::Delay) {
                    pushes += 1;
                }
            }
            pushes
        })
    });
    g.finish();
}

fn bench_bmap_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("bmap_cache");
    g.bench_function("hit_heavy", |b| {
        let mut cache = BmapCache::new(8);
        cache.insert(ExtentTuple {
            lbn: 0,
            pbn: 1000,
            len: 2048,
        });
        b.iter(|| {
            let mut found = 0u64;
            for i in 0..1000u64 {
                if cache.lookup(black_box(i % 2048)).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    g.bench_function("churn", |b| {
        b.iter(|| {
            let mut cache = BmapCache::new(8);
            for i in 0..1000u64 {
                cache.insert(ExtentTuple {
                    lbn: i * 16,
                    pbn: 5000 + i * 16,
                    len: 16,
                });
                black_box(cache.lookup(i * 16));
            }
            cache.stats()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_readahead,
    bench_delayed_write,
    bench_bmap_cache
);
criterion_main!(benches);
