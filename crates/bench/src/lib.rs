//! # bench — benchmark harness crate
//!
//! - `benches/policies.rs` — Criterion micro-benches of the clustering
//!   policy engines.
//! - `benches/substrate.rs` — executor, disk mechanism and page cache.
//! - `benches/filesystem.rs` — end-to-end UFS data/namespace paths.
//! - `benches/tables.rs` — one bench per paper table/figure at CI scale
//!   (also prints the regenerated tables once per run).
//! - `src/bin/figures.rs` — regenerates the paper's illustrative Figures
//!   2–8 as ASCII from the live engines.
//!
//! Full paper-scale tables: `cargo run --release -p iobench -- all`.
