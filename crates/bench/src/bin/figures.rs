//! Regenerates the paper's illustrative figures (2–8) as ASCII, driven by
//! the *actual* engines and allocator — not hard-coded pictures. If an
//! algorithm regresses, its figure changes.
//!
//! ```text
//! figures [2|3|4|5|6|7|8]    (default: all)
//! ```

use clufs::{DelayedWrite, ReadAhead, Tuning, WriteAction};
use simkit::Sim;
use ufs::build_test_world;
use vfs::{AccessMode, FileSystem, Vnode};

fn fig2() {
    println!("Figure 2: UFS getpage algorithm (see ufs::vnops::getpage)\n");
    println!("    bmap() to find disk location");
    println!("    if (requested page not in cache) {{");
    println!("        start I/O for requested");
    println!("    }}");
    println!("    if (sequential I/O) {{");
    println!("        do another bmap() if necessary");
    println!("        start I/O for next page");
    println!("    }}");
    println!("    if (first page was not in cache) {{");
    println!("        wait for I/O to finish");
    println!("    }}");
    println!("    predict next I/O location\n");
}

/// Renders a row of per-page boxes from the read-ahead engine's behavior.
fn readahead_trace(maxcontig: u32, pages: u64) -> Vec<Vec<String>> {
    let mut ra = ReadAhead::new();
    let mut resident = std::collections::BTreeSet::new();
    let mut cells = Vec::new();
    for lbn in 0..pages {
        let cached = resident.contains(&lbn);
        let plan = ra.on_access(
            lbn,
            cached,
            |p| {
                if p < 1000 {
                    maxcontig
                } else {
                    0
                }
            },
            0,
        );
        let mut cell = Vec::new();
        if let Some(run) = plan.sync {
            cell.push(format!(
                "sync {}",
                (run.lbn..run.lbn + run.blocks as u64)
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            resident.extend(run.lbn..run.lbn + run.blocks as u64);
        }
        if let Some(run) = plan.readahead {
            cell.push(format!(
                "async {}",
                (run.lbn..run.lbn + run.blocks as u64)
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            resident.extend(run.lbn..run.lbn + run.blocks as u64);
            if maxcontig == 1 {
                cell.push(format!("nextr = {}", ra.predicted_next()));
            } else {
                cell.push(format!("nextrio = {}", run.lbn));
            }
        }
        cells.push(cell);
    }
    cells
}

fn render_boxes(title: &str, cells: &[Vec<String>]) {
    println!("{title}\n");
    let width = 14usize;
    let rows = cells.iter().map(|c| c.len()).max().unwrap_or(0);
    let header: String = (0..cells.len())
        .map(|i| format!("| {:w$}", format!("page {i}"), w = width - 2))
        .collect();
    println!("{header}|");
    println!("{}", "-".repeat(width * cells.len() + 1));
    for r in 0..rows {
        let line: String = cells
            .iter()
            .map(|c| {
                format!(
                    "| {:w$}",
                    c.get(r).cloned().unwrap_or_default(),
                    w = width - 2
                )
            })
            .collect();
        println!("{line}|");
    }
    println!();
}

fn fig3() {
    render_boxes(
        "Figure 3: access pattern showing read ahead (block mode)",
        &readahead_trace(1, 3),
    );
}

fn fig6() {
    render_boxes(
        "Figure 6: clustered reads when maxcontig = 3",
        &readahead_trace(3, 7),
    );
}

fn fig7() {
    let mut dw = DelayedWrite::new();
    let cells: Vec<Vec<String>> = (0..6u64)
        .map(|off| match dw.on_putpage(off, 3) {
            WriteAction::Delay => vec!["lie".to_string()],
            WriteAction::Push(r) => vec![format!(
                "push {}",
                r.map(|b| b.to_string()).collect::<Vec<_>>().join(",")
            )],
            WriteAction::PushThenDelay(r) => vec![format!(
                "push {}; delay",
                r.map(|b| b.to_string()).collect::<Vec<_>>().join(",")
            )],
        })
        .collect();
    render_boxes("Figure 7: clustered writes with maxcontig = 3", &cells);
}

fn fig8() {
    println!("Figure 8: clustered write algorithm (see clufs::DelayedWrite)\n");
    println!("    if (delaylen < maxcontig &&");
    println!("        delayoff + delaylen == off) {{");
    println!("            delaylen += PAGESIZE");
    println!("            return");
    println!("    }}");
    println!("    find all pages from delayoff");
    println!("            to delayoff + delaylen");
    println!("    while (more pages) {{");
    println!("            bmap()");
    println!("            start I/O for this cluster");
    println!("            subtract that many pages");
    println!("    }}\n");
}

/// Figures 4/5: actual allocator layout of one file on one track, with and
/// without rotdelay.
fn layout_figure(rotdelay: bool) {
    let tuning = if rotdelay {
        Tuning::config_b() // 4 ms rotdelay: interleaved.
    } else {
        Tuning::config_a() // contiguous.
    };
    let sim = Sim::new();
    let s = sim.clone();
    let occupied = sim.run_until(async move {
        let w = build_test_world(&s, tuning).await.unwrap();
        let f = w.fs.create("layout").await.unwrap();
        f.write(0, &vec![1u8; 8 * 8192], AccessMode::Copy)
            .await
            .unwrap();
        let extents = f.extents().await.unwrap();
        let base = extents[0].1;
        let mut slots: Vec<Option<u64>> = vec![None; 16];
        for (lbn, pbn, len) in extents {
            for i in 0..len as u64 {
                let slot = (pbn + i).saturating_sub(base) as usize;
                if slot < slots.len() {
                    slots[slot] = Some(lbn + i);
                }
            }
        }
        slots
    });
    let title = if rotdelay {
        "Figure 4: interleaved blocks (rotdelay = 4ms). One gap block between\nlogical neighbors; the gaps go to other files."
    } else {
        "Figure 5: non-interleaved blocks (rotdelay = 0). Logical blocks are\nphysically adjacent."
    };
    println!("{title}\n");
    let row: String = occupied
        .iter()
        .map(|s| match s {
            Some(lbn) => format!("|{:^4}", lbn),
            None => "|    ".to_string(),
        })
        .collect();
    println!("{row}|");
    println!("{}", "-".repeat(occupied.len() * 5 + 1));
    println!("(each cell is one 8 KB file system block on the disk)\n");
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let want = |n: &str| which.is_empty() || which.iter().any(|a| a == n);
    if want("2") {
        fig2();
    }
    if want("3") {
        fig3();
    }
    if want("4") {
        layout_figure(true);
    }
    if want("5") {
        layout_figure(false);
    }
    if want("6") {
        fig6();
    }
    if want("7") {
        fig7();
    }
    if want("8") {
        fig8();
    }
}
