//! Host-process tuning for benchmark front ends.
//!
//! Nothing here affects simulated behavior — virtual-time trajectories are
//! a pure function of the workload. These knobs only make the *host*
//! execute the same simulation faster.

/// Stops glibc from trimming the heap back to the OS between transient
/// allocations.
///
/// The I/O path allocates and frees a cluster-sized payload per write
/// (tens of KB, thousands of times per run). With the default
/// `M_TRIM_THRESHOLD` (128 KB), each free at the top of the heap shrinks
/// the arena and the next allocation grows it again — every round trip
/// re-faults the pages, and in a VM a page fault costs ~100 µs. Raising
/// the trim and mmap thresholds keeps that memory in the arena, cutting
/// wall-clock time of the write-heavy benchmarks by roughly a third.
///
/// No-op on non-glibc targets. Call once at process start.
pub fn tune_host_allocator() {
    #[cfg(target_env = "gnu")]
    {
        // Values from glibc's malloc.h; stable ABI.
        const M_TRIM_THRESHOLD: i32 = -1;
        const M_TOP_PAD: i32 = -2;
        const M_MMAP_THRESHOLD: i32 = -3;
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        unsafe {
            mallopt(M_TRIM_THRESHOLD, 512 << 20);
            mallopt(M_TOP_PAD, 16 << 20);
            mallopt(M_MMAP_THRESHOLD, 256 << 20);
        }
    }
}
