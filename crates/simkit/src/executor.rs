//! The deterministic single-threaded executor with a virtual clock.
//!
//! Simulated activities are ordinary Rust futures. The executor polls
//! runnable tasks until none remain, then advances the virtual clock to the
//! earliest pending timer and resumes. Determinism is total: there is no
//! wall-clock input, task wakeups are processed in FIFO order, and timers
//! that fire at the same instant are ordered by registration sequence.
//!
//! # Examples
//!
//! ```
//! use simkit::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let sim2 = sim.clone();
//! let answer = sim.run_until(async move {
//!     sim2.sleep(SimDuration::from_millis(10)).await;
//!     42
//! });
//! assert_eq!(answer, 42);
//! assert_eq!(sim.now().as_nanos(), 10_000_000);
//! ```

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::perfmon::Telemetry;
use crate::stats::StatsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Recorder, Tracer};

/// Identifies a spawned task within one [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId(u64);

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// A live task: its future plus its waker, created once at spawn so the
/// per-poll cost is a slab index, not an `Arc` allocation.
struct Task {
    fut: BoxedFuture,
    waker: Waker,
}

/// The cross-thread-safe half of the wakeup path.
///
/// Wakers must be `Send + Sync`, so the only state they touch is this
/// mutex-protected queue; the executor drains it into its local run queue.
struct WakeQueue {
    woken: Mutex<Vec<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue
            .woken
            .lock()
            .expect("wake queue poisoned")
            .push(self.id);
    }
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A read-only handle to a [`Sim`]'s virtual clock.
///
/// Long-lived observers stored *inside* the executor (the metrics
/// registry, shared [`Recorder`]s) hold this instead of a full `Sim`,
/// which would create an `Rc` cycle through `Inner`.
#[derive(Clone)]
pub struct TimeHandle {
    now: Rc<Cell<SimTime>>,
}

impl TimeHandle {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }
}

struct Inner {
    now: Rc<Cell<SimTime>>,
    stats: StatsRegistry,
    tracer: Tracer,
    telemetry: Telemetry,
    next_task: Cell<u64>,
    next_timer_seq: Cell<u64>,
    /// Slab of live tasks indexed by `TaskId` (monotonic, never reused);
    /// a completed task leaves a `None` slot, which is also how stale
    /// wakeups are detected.
    tasks: RefCell<Vec<Option<Task>>>,
    live: Cell<usize>,
    run_queue: RefCell<VecDeque<TaskId>>,
    timers: RefCell<BinaryHeap<Reverse<(TimerEntry, WakerSlot)>>>,
    wake_queue: Arc<WakeQueue>,
    /// Drain buffer swapped with the wake queue so neither side
    /// reallocates in steady state.
    wake_scratch: RefCell<Vec<TaskId>>,
    polls: Cell<u64>,
    spawned: Cell<u64>,
}

/// Wrapper so `Waker` can live inside the ordered timer heap without
/// participating in the ordering.
struct WakerSlot(Waker);

impl PartialEq for WakerSlot {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for WakerSlot {}
impl PartialOrd for WakerSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WakerSlot {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Handle to a simulation. Cheap to clone; all clones share the same world.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at `t = 0` with no tasks.
    pub fn new() -> Self {
        let now = Rc::new(Cell::new(SimTime::ZERO));
        let stats = StatsRegistry::new(TimeHandle {
            now: Rc::clone(&now),
        });
        let tracer = Tracer::with_time(TimeHandle {
            now: Rc::clone(&now),
        });
        Sim {
            inner: Rc::new(Inner {
                now,
                stats,
                tracer,
                telemetry: Telemetry::new(),
                next_task: Cell::new(0),
                next_timer_seq: Cell::new(0),
                tasks: RefCell::new(Vec::new()),
                live: Cell::new(0),
                run_queue: RefCell::new(VecDeque::new()),
                timers: RefCell::new(BinaryHeap::new()),
                wake_queue: Arc::new(WakeQueue {
                    woken: Mutex::new(Vec::new()),
                }),
                wake_scratch: RefCell::new(Vec::new()),
                polls: Cell::new(0),
                spawned: Cell::new(0),
            }),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Returns a clock handle that reads this simulation's virtual time
    /// without keeping the executor alive.
    pub fn time_handle(&self) -> TimeHandle {
        TimeHandle {
            now: Rc::clone(&self.inner.now),
        }
    }

    /// The simulation-wide metrics registry. See [`crate::stats`].
    pub fn stats(&self) -> &StatsRegistry {
        &self.inner.stats
    }

    /// The simulation-wide span tracer (disabled by default). See
    /// [`crate::trace::Tracer`].
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The simulation's telemetry store (inert until
    /// [`Telemetry::start`] arms the sampling task). See
    /// [`crate::perfmon`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// The shared event recorder for event type `E`, registered on first
    /// use. Equivalent to `sim.stats().recorder::<E>()`.
    pub fn recorder<E: 'static>(&self) -> Recorder<E> {
        self.inner.stats.recorder::<E>()
    }

    /// Spawns a task and returns a handle that can be awaited for its result.
    ///
    /// The task does not run until the executor is next driven by [`Sim::run`]
    /// or [`Sim::run_until`].
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            done: false,
            waiters: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        self.spawn_unit(async move {
            let value = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(value);
            st.done = true;
            for w in st.waiters.drain(..) {
                w.wake();
            }
        });
        JoinHandle { state }
    }

    fn spawn_unit(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let id = TaskId(self.inner.next_task.get());
        self.inner.next_task.set(id.0 + 1);
        self.inner.spawned.set(self.inner.spawned.get() + 1);
        self.inner.live.set(self.inner.live.get() + 1);
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            queue: Arc::clone(&self.inner.wake_queue),
        }));
        let mut tasks = self.inner.tasks.borrow_mut();
        debug_assert_eq!(tasks.len() as u64, id.0);
        tasks.push(Some(Task {
            fut: Box::pin(fut),
            waker,
        }));
        drop(tasks);
        self.inner.run_queue.borrow_mut().push_back(id);
        id
    }

    /// Runs until no task is runnable and no timer is pending.
    ///
    /// Returns the final virtual time. Tasks still alive at return are
    /// deadlocked (blocked on events that can no longer fire); inspect
    /// [`Sim::live_tasks`] to detect this.
    ///
    /// Note: a perpetual daemon task (an infinite loop with sleeps) keeps
    /// the simulation alive forever; drive such worlds with
    /// [`Sim::run_until`] instead, which stops when its root task is done.
    pub fn run(&self) -> SimTime {
        self.run_with_stop(|| false);
        self.inner.now.get()
    }

    /// Core loop; stops early when `stop()` returns true (checked between
    /// task polls and before advancing the clock).
    fn run_with_stop(&self, stop: impl Fn() -> bool) {
        loop {
            self.drain_wakes();
            loop {
                if stop() {
                    return;
                }
                let next = self.inner.run_queue.borrow_mut().pop_front();
                match next {
                    Some(id) => {
                        self.poll_task(id);
                        self.drain_wakes();
                    }
                    None => break,
                }
            }
            if stop() {
                return;
            }
            // Nothing runnable: advance the clock to the earliest timer.
            let fired = self.inner.timers.borrow_mut().pop();
            match fired {
                Some(Reverse((entry, slot))) => {
                    debug_assert!(entry.at >= self.inner.now.get(), "timer in the past");
                    self.inner.now.set(entry.at);
                    slot.0.wake();
                }
                None => return,
            }
        }
    }

    /// Spawns `fut`, runs the simulation until `fut` completes, and returns
    /// its output. Other tasks (including perpetual daemons) are left in
    /// whatever state they reached; the world can be driven further with
    /// another `run_until` call.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs to quiescence without `fut` completing
    /// (a deadlock: `fut` is blocked on an event nothing will ever signal).
    pub fn run_until<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let handle = self.spawn(fut);
        self.run_with_stop(|| handle.is_finished());
        match handle.try_take() {
            Some(v) => v,
            None => panic!(
                "run_until: simulation quiesced at {} without the root task \
                 completing ({} task(s) deadlocked)",
                self.now(),
                self.live_tasks()
            ),
        }
    }

    /// Returns a future that resolves after `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Returns a future that resolves at virtual time `at` (immediately if
    /// `at` has already passed).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
        }
    }

    /// Returns a future that yields once, letting other runnable tasks go
    /// first, and resumes at the same virtual instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Number of tasks spawned over the lifetime of the simulation.
    pub fn spawned(&self) -> u64 {
        self.inner.spawned.get()
    }

    /// Number of `Future::poll` invocations performed so far.
    pub fn polls(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.get()
    }

    fn drain_wakes(&self) {
        let mut scratch = self.inner.wake_scratch.borrow_mut();
        debug_assert!(scratch.is_empty());
        {
            let mut q = self
                .inner
                .wake_queue
                .woken
                .lock()
                .expect("wake queue poisoned");
            if q.is_empty() {
                return;
            }
            // Swap rather than take: after a round trip both buffers keep
            // their capacity, so steady-state wakes never allocate.
            std::mem::swap(&mut *q, &mut *scratch);
        }
        let mut rq = self.inner.run_queue.borrow_mut();
        for id in scratch.drain(..) {
            rq.push_back(id);
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the task out of its slot so the task body may reentrantly
        // spawn tasks or inspect the executor without aliasing the borrow.
        let task = self.inner.tasks.borrow_mut()[id.0 as usize].take();
        let Some(mut task) = task else {
            return; // Stale wakeup for a completed task.
        };
        let mut cx = Context::from_waker(&task.waker);
        self.inner.polls.set(self.inner.polls.get() + 1);
        match task.fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.live.set(self.inner.live.get() - 1);
            }
            Poll::Pending => {
                self.inner.tasks.borrow_mut()[id.0 as usize] = Some(task);
            }
        }
    }

    /// Fast-forward used by [`Sleep`]: when the sleeping task is the only
    /// runnable work and no timer fires at or before `at`, advancing the
    /// clock in place is indistinguishable from suspending on a timer —
    /// the executor would immediately pop that timer, set the clock, and
    /// re-poll this task with nothing else observing the interval. Skipping
    /// the suspend/resume halves the cost of the `Cpu::charge` hot path.
    pub(crate) fn try_fast_forward(&self, at: SimTime) -> bool {
        if !self.inner.run_queue.borrow().is_empty() {
            return false;
        }
        if let Some(Reverse((entry, _))) = self.inner.timers.borrow().peek() {
            // `<=` keeps same-instant ordering: an already-registered timer
            // due at `at` must fire (and run its task) first.
            if entry.at <= at {
                return false;
            }
        }
        if !self
            .inner
            .wake_queue
            .woken
            .lock()
            .expect("wake queue poisoned")
            .is_empty()
        {
            return false;
        }
        self.inner.now.set(at);
        true
    }

    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) {
        let seq = self.inner.next_timer_seq.get();
        self.inner.next_timer_seq.set(seq + 1);
        self.inner
            .timers
            .borrow_mut()
            .push(Reverse((TimerEntry { at, seq }, WakerSlot(waker))));
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
///
/// When the sleeper is the only runnable work and no other timer is due
/// first, the first poll advances the virtual clock to the deadline and
/// completes immediately (see [`Sim`]'s fast-forward path). This is
/// invisible to tasks awaiting a `Sleep` directly, but it means racing two
/// `Sleep`s inside one task with a hand-rolled select would resolve the
/// first-polled one; run competing timers in separate tasks instead (the
/// codebase awaits every `Sleep` directly).
pub struct Sleep {
    sim: Sim,
    at: SimTime,
}

impl Sleep {
    /// The virtual instant this sleep resolves at.
    pub fn deadline(&self) -> SimTime {
        self.at
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at || self.sim.try_fast_forward(self.at) {
            Poll::Ready(())
        } else {
            self.sim.register_timer(self.at, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    done: bool,
    waiters: Vec<Waker>,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Returns `true` once the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().done
    }

    /// Takes the result if the task has completed and the result has not
    /// been consumed (by a prior `take` or by awaiting the handle).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.done {
            Poll::Ready(
                st.result
                    .take()
                    .expect("JoinHandle polled after the result was consumed"),
            )
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_terminates_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(5)).await;
            assert_eq!(s.now().as_nanos(), 5_000_000);
            s.sleep(SimDuration::from_millis(7)).await;
            assert_eq!(s.now().as_nanos(), 12_000_000);
        });
        assert_eq!(sim.run().as_nanos(), 12_000_000);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.run_until(async move {
            s.sleep(SimDuration::ZERO).await;
            s.now()
        });
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn concurrent_sleeps_interleave_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for (tag, delay) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(delay)).await;
                log.borrow_mut().push((s.now().as_nanos() / 1_000_000, tag));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(10, 2), (20, 3), (30, 1)]);
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(1)).await;
                log.borrow_mut().push(tag);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.run_until(async move {
            let h = s.spawn(async { 7 * 6 });
            h.await
        });
        assert_eq!(result, 42);
    }

    #[test]
    fn join_handle_across_sleep() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.run_until(async move {
            let s2 = s.clone();
            let h = s.spawn(async move {
                s2.sleep(SimDuration::from_secs(1)).await;
                "done"
            });
            h.await
        });
        assert_eq!(result, "done");
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn join_finished_task_without_awaiting() {
        let sim = Sim::new();
        let h = sim.spawn(async { 5u32 });
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some(5));
        assert_eq!(h.try_take(), None, "result is consumed once");
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn run_until_panics_on_deadlock() {
        let sim = Sim::new();
        let s = sim.clone();
        // An event no one will ever signal.
        let ev = crate::sync::Event::new();
        sim.run_until(async move {
            let _ = s; // Keep a handle alive inside the task.
            ev.wait().await;
        });
    }

    #[test]
    fn yield_now_interleaves_tasks_at_same_instant() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..2u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for _ in 0..3 {
                    log.borrow_mut().push(tag);
                    s.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(sim.now(), SimTime::ZERO, "yield does not advance time");
    }

    #[test]
    fn nested_spawns_run() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim.run_until(async move {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                let s2 = s.clone();
                handles.push(s.spawn(async move {
                    s2.sleep(SimDuration::from_micros(i)).await;
                    i
                }));
            }
            let mut sum = 0;
            for h in handles {
                sum += h.await;
            }
            sum
        });
        assert_eq!(total, 45);
        assert_eq!(sim.spawned(), 11);
    }

    #[test]
    fn poll_counter_increments() {
        // A lone sleeper fast-forwards: the clock jumps on the first poll
        // and the task never suspends.
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move { s.sleep(SimDuration::from_millis(1)).await });
        assert_eq!(sim.polls(), 1, "lone sleep completes on its first poll");

        // With a competing earlier timer the sleeper must suspend and be
        // re-polled when its own timer fires.
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move { s.sleep(SimDuration::from_micros(100)).await });
        let s = sim.clone();
        sim.run_until(async move { s.sleep(SimDuration::from_millis(1)).await });
        assert!(sim.polls() >= 3, "suspended sleeps re-poll on wake");
    }
}
