//! The deterministic single-threaded executor with a virtual clock.
//!
//! Simulated activities are ordinary Rust futures. The executor polls
//! runnable tasks until none remain, then advances the virtual clock to the
//! earliest pending timer and resumes. Determinism is total: there is no
//! wall-clock input, task wakeups are processed in FIFO order, and timers
//! that fire at the same instant are ordered by registration sequence.
//!
//! # Examples
//!
//! ```
//! use simkit::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let sim2 = sim.clone();
//! let answer = sim.run_until(async move {
//!     sim2.sleep(SimDuration::from_millis(10)).await;
//!     42
//! });
//! assert_eq!(answer, 42);
//! assert_eq!(sim.now().as_nanos(), 10_000_000);
//! ```

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::stats::StatsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Recorder, Tracer};

/// Identifies a spawned task within one [`Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TaskId(u64);

type BoxedFuture = Pin<Box<dyn Future<Output = ()>>>;

/// The cross-thread-safe half of the wakeup path.
///
/// Wakers must be `Send + Sync`, so the only state they touch is this
/// mutex-protected queue; the executor drains it into its local run queue.
struct WakeQueue {
    woken: Mutex<Vec<TaskId>>,
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.queue
            .woken
            .lock()
            .expect("wake queue poisoned")
            .push(self.id);
    }
}

#[derive(PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A read-only handle to a [`Sim`]'s virtual clock.
///
/// Long-lived observers stored *inside* the executor (the metrics
/// registry, shared [`Recorder`]s) hold this instead of a full `Sim`,
/// which would create an `Rc` cycle through `Inner`.
#[derive(Clone)]
pub struct TimeHandle {
    now: Rc<Cell<SimTime>>,
}

impl TimeHandle {
    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }
}

struct Inner {
    now: Rc<Cell<SimTime>>,
    stats: StatsRegistry,
    tracer: Tracer,
    next_task: Cell<u64>,
    next_timer_seq: Cell<u64>,
    tasks: RefCell<HashMap<TaskId, BoxedFuture>>,
    run_queue: RefCell<VecDeque<TaskId>>,
    timers: RefCell<BinaryHeap<Reverse<(TimerEntry, WakerSlot)>>>,
    wake_queue: Arc<WakeQueue>,
    polls: Cell<u64>,
    spawned: Cell<u64>,
}

/// Wrapper so `Waker` can live inside the ordered timer heap without
/// participating in the ordering.
struct WakerSlot(Waker);

impl PartialEq for WakerSlot {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for WakerSlot {}
impl PartialOrd for WakerSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WakerSlot {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Handle to a simulation. Cheap to clone; all clones share the same world.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at `t = 0` with no tasks.
    pub fn new() -> Self {
        let now = Rc::new(Cell::new(SimTime::ZERO));
        let stats = StatsRegistry::new(TimeHandle {
            now: Rc::clone(&now),
        });
        let tracer = Tracer::with_time(TimeHandle {
            now: Rc::clone(&now),
        });
        Sim {
            inner: Rc::new(Inner {
                now,
                stats,
                tracer,
                next_task: Cell::new(0),
                next_timer_seq: Cell::new(0),
                tasks: RefCell::new(HashMap::new()),
                run_queue: RefCell::new(VecDeque::new()),
                timers: RefCell::new(BinaryHeap::new()),
                wake_queue: Arc::new(WakeQueue {
                    woken: Mutex::new(Vec::new()),
                }),
                polls: Cell::new(0),
                spawned: Cell::new(0),
            }),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// Returns a clock handle that reads this simulation's virtual time
    /// without keeping the executor alive.
    pub fn time_handle(&self) -> TimeHandle {
        TimeHandle {
            now: Rc::clone(&self.inner.now),
        }
    }

    /// The simulation-wide metrics registry. See [`crate::stats`].
    pub fn stats(&self) -> &StatsRegistry {
        &self.inner.stats
    }

    /// The simulation-wide span tracer (disabled by default). See
    /// [`crate::trace::Tracer`].
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The shared event recorder for event type `E`, registered on first
    /// use. Equivalent to `sim.stats().recorder::<E>()`.
    pub fn recorder<E: 'static>(&self) -> Recorder<E> {
        self.inner.stats.recorder::<E>()
    }

    /// Spawns a task and returns a handle that can be awaited for its result.
    ///
    /// The task does not run until the executor is next driven by [`Sim::run`]
    /// or [`Sim::run_until`].
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            done: false,
            waiters: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        self.spawn_unit(async move {
            let value = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(value);
            st.done = true;
            for w in st.waiters.drain(..) {
                w.wake();
            }
        });
        JoinHandle { state }
    }

    fn spawn_unit(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let id = TaskId(self.inner.next_task.get());
        self.inner.next_task.set(id.0 + 1);
        self.inner.spawned.set(self.inner.spawned.get() + 1);
        self.inner.tasks.borrow_mut().insert(id, Box::pin(fut));
        self.inner.run_queue.borrow_mut().push_back(id);
        id
    }

    /// Runs until no task is runnable and no timer is pending.
    ///
    /// Returns the final virtual time. Tasks still alive at return are
    /// deadlocked (blocked on events that can no longer fire); inspect
    /// [`Sim::live_tasks`] to detect this.
    ///
    /// Note: a perpetual daemon task (an infinite loop with sleeps) keeps
    /// the simulation alive forever; drive such worlds with
    /// [`Sim::run_until`] instead, which stops when its root task is done.
    pub fn run(&self) -> SimTime {
        self.run_with_stop(|| false);
        self.inner.now.get()
    }

    /// Core loop; stops early when `stop()` returns true (checked between
    /// task polls and before advancing the clock).
    fn run_with_stop(&self, stop: impl Fn() -> bool) {
        loop {
            self.drain_wakes();
            loop {
                if stop() {
                    return;
                }
                let next = self.inner.run_queue.borrow_mut().pop_front();
                match next {
                    Some(id) => {
                        self.poll_task(id);
                        self.drain_wakes();
                    }
                    None => break,
                }
            }
            if stop() {
                return;
            }
            // Nothing runnable: advance the clock to the earliest timer.
            let fired = self.inner.timers.borrow_mut().pop();
            match fired {
                Some(Reverse((entry, slot))) => {
                    debug_assert!(entry.at >= self.inner.now.get(), "timer in the past");
                    self.inner.now.set(entry.at);
                    slot.0.wake();
                }
                None => return,
            }
        }
    }

    /// Spawns `fut`, runs the simulation until `fut` completes, and returns
    /// its output. Other tasks (including perpetual daemons) are left in
    /// whatever state they reached; the world can be driven further with
    /// another `run_until` call.
    ///
    /// # Panics
    ///
    /// Panics if the simulation runs to quiescence without `fut` completing
    /// (a deadlock: `fut` is blocked on an event nothing will ever signal).
    pub fn run_until<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let handle = self.spawn(fut);
        self.run_with_stop(|| handle.is_finished());
        match handle.try_take() {
            Some(v) => v,
            None => panic!(
                "run_until: simulation quiesced at {} without the root task \
                 completing ({} task(s) deadlocked)",
                self.now(),
                self.live_tasks()
            ),
        }
    }

    /// Returns a future that resolves after `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Returns a future that resolves at virtual time `at` (immediately if
    /// `at` has already passed).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            at,
        }
    }

    /// Returns a future that yields once, letting other runnable tasks go
    /// first, and resumes at the same virtual instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Number of tasks spawned over the lifetime of the simulation.
    pub fn spawned(&self) -> u64 {
        self.inner.spawned.get()
    }

    /// Number of `Future::poll` invocations performed so far.
    pub fn polls(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Number of tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.borrow().len()
    }

    fn drain_wakes(&self) {
        let woken: Vec<TaskId> = {
            let mut q = self
                .inner
                .wake_queue
                .woken
                .lock()
                .expect("wake queue poisoned");
            std::mem::take(&mut *q)
        };
        if !woken.is_empty() {
            let mut rq = self.inner.run_queue.borrow_mut();
            for id in woken {
                rq.push_back(id);
            }
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of the table so the task body may reentrantly
        // spawn tasks or inspect the executor without aliasing the borrow.
        let fut = self.inner.tasks.borrow_mut().remove(&id);
        let Some(mut fut) = fut else {
            return; // Stale wakeup for a completed task.
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            queue: Arc::clone(&self.inner.wake_queue),
        }));
        let mut cx = Context::from_waker(&waker);
        self.inner.polls.set(self.inner.polls.get() + 1);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.inner.tasks.borrow_mut().insert(id, fut);
            }
        }
    }

    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) {
        let seq = self.inner.next_timer_seq.get();
        self.inner.next_timer_seq.set(seq + 1);
        self.inner
            .timers
            .borrow_mut()
            .push(Reverse((TimerEntry { at, seq }, WakerSlot(waker))));
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    at: SimTime,
}

impl Sleep {
    /// The virtual instant this sleep resolves at.
    pub fn deadline(&self) -> SimTime {
        self.at
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.at {
            Poll::Ready(())
        } else {
            self.sim.register_timer(self.at, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    done: bool,
    waiters: Vec<Waker>,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Returns `true` once the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().done
    }

    /// Takes the result if the task has completed and the result has not
    /// been consumed (by a prior `take` or by awaiting the handle).
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if st.done {
            Poll::Ready(
                st.result
                    .take()
                    .expect("JoinHandle polled after the result was consumed"),
            )
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_terminates_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(5)).await;
            assert_eq!(s.now().as_nanos(), 5_000_000);
            s.sleep(SimDuration::from_millis(7)).await;
            assert_eq!(s.now().as_nanos(), 12_000_000);
        });
        assert_eq!(sim.run().as_nanos(), 12_000_000);
        assert_eq!(sim.live_tasks(), 0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let t = sim.run_until(async move {
            s.sleep(SimDuration::ZERO).await;
            s.now()
        });
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn concurrent_sleeps_interleave_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        for (tag, delay) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(delay)).await;
                log.borrow_mut().push((s.now().as_nanos() / 1_000_000, tag));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(10, 2), (20, 3), (30, 1)]);
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(1)).await;
                log.borrow_mut().push(tag);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.run_until(async move {
            let h = s.spawn(async { 7 * 6 });
            h.await
        });
        assert_eq!(result, 42);
    }

    #[test]
    fn join_handle_across_sleep() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.run_until(async move {
            let s2 = s.clone();
            let h = s.spawn(async move {
                s2.sleep(SimDuration::from_secs(1)).await;
                "done"
            });
            h.await
        });
        assert_eq!(result, "done");
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn join_finished_task_without_awaiting() {
        let sim = Sim::new();
        let h = sim.spawn(async { 5u32 });
        sim.run();
        assert!(h.is_finished());
        assert_eq!(h.try_take(), Some(5));
        assert_eq!(h.try_take(), None, "result is consumed once");
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn run_until_panics_on_deadlock() {
        let sim = Sim::new();
        let s = sim.clone();
        // An event no one will ever signal.
        let ev = crate::sync::Event::new();
        sim.run_until(async move {
            let _ = s; // Keep a handle alive inside the task.
            ev.wait().await;
        });
    }

    #[test]
    fn yield_now_interleaves_tasks_at_same_instant() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..2u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for _ in 0..3 {
                    log.borrow_mut().push(tag);
                    s.yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(sim.now(), SimTime::ZERO, "yield does not advance time");
    }

    #[test]
    fn nested_spawns_run() {
        let sim = Sim::new();
        let s = sim.clone();
        let total = sim.run_until(async move {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                let s2 = s.clone();
                handles.push(s.spawn(async move {
                    s2.sleep(SimDuration::from_micros(i)).await;
                    i
                }));
            }
            let mut sum = 0;
            for h in handles {
                sum += h.await;
            }
            sum
        });
        assert_eq!(total, 45);
        assert_eq!(sim.spawned(), 11);
    }

    #[test]
    fn poll_counter_increments() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move { s.sleep(SimDuration::from_millis(1)).await });
        assert!(sim.polls() >= 2, "at least initial poll and wake poll");
    }
}
