//! A deterministic, virtual-time-aware metrics registry.
//!
//! The paper's whole argument is quantitative — seeks saved, clusters
//! formed, read-ahead hits — so every layer of the stack needs a cheap
//! way to count what it does. The registry lives on [`Sim`](crate::Sim)
//! (`sim.stats()`), which every component already receives at
//! construction, so no extra handle threading is needed.
//!
//! Four metric kinds:
//!
//! - [`Counter`] — monotonic `u64` (disk seeks, cache hits).
//! - [`Gauge`] — instantaneous `f64` (dirty bytes outstanding).
//! - [`Histogram`] — fixed upper-bound buckets over `u64` observations
//!   (seek distances, cluster sizes), plus count/sum/min/max.
//! - [`TimeWeighted`] — a value integrated over **virtual** time, for
//!   means like disk-queue depth; wall clocks are never consulted.
//!
//! Handles are `Rc`-backed and cheap to clone: register once at
//! construction, record on the hot path without any name lookup.
//! Registration is idempotent — asking for an existing name returns the
//! same underlying metric, so independent components may share one
//! (e.g. two mounts of the same filesystem type).
//!
//! Snapshots serialize to JSON with sorted keys and no wall-clock or
//! pointer-derived content, so two identical simulations produce
//! byte-identical snapshots. The schema is documented in DESIGN.md
//! ("Observability") and asserted stable by tests.

use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

use crate::executor::TimeHandle;
use crate::time::{SimDuration, SimTime};
use crate::trace::Recorder;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// An instantaneous value; last write wins.
#[derive(Clone)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    pub fn add(&self, d: f64) {
        self.0.set(self.0.get() + d);
    }

    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing. Observation `v` lands
    /// in the first bucket with `v <= edges[i]`; larger values land in an
    /// implicit overflow bucket, so `counts.len() == edges.len() + 1`.
    edges: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// A fixed-bucket histogram over `u64` observations.
#[derive(Clone)]
pub struct Histogram(Rc<RefCell<HistogramInner>>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        let mut h = self.0.borrow_mut();
        let i = h.edges.partition_point(|&e| e < v);
        h.counts[i] += 1;
        h.count += 1;
        h.sum += v;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    /// Mean observation, or 0.0 before the first one.
    pub fn mean(&self) -> f64 {
        let h = self.0.borrow();
        if h.count == 0 {
            0.0
        } else {
            h.sum as f64 / h.count as f64
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.borrow().counts.clone()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket containing the target rank — the classic
    /// fixed-bucket readback. The first bucket interpolates up from the
    /// observed minimum and the overflow bucket toward the observed
    /// maximum, so estimates never leave `[min, max]`. Returns 0.0 before
    /// the first observation.
    pub fn quantile(&self, q: f64) -> f64 {
        let h = self.0.borrow();
        if h.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * h.count as f64;
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            if cum as f64 >= target {
                let lo = if i == 0 {
                    h.min
                } else {
                    h.edges[i - 1].max(h.min)
                };
                let hi = if i < h.edges.len() {
                    h.edges[i].min(h.max)
                } else {
                    h.max
                };
                let (lo, hi) = (lo as f64, (hi as f64).max(lo as f64));
                let frac = ((target - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        h.max as f64 // Unreachable for q <= 1.0, but keep it total.
    }

    /// Median estimate ([`Histogram::quantile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

struct TimeWeightedInner {
    time: TimeHandle,
    started: SimTime,
    last_change: SimTime,
    value: f64,
    /// Integral of the value over virtual nanoseconds, up to `last_change`.
    area: f64,
    peak: f64,
}

impl TimeWeightedInner {
    fn settle(&mut self) {
        let now = self.time.now();
        let dt = now.saturating_duration_since(self.last_change);
        self.area += self.value * dt.as_nanos() as f64;
        self.last_change = now;
    }
}

/// A value whose **virtual-time-weighted** mean matters more than its
/// current reading — e.g. disk-queue depth. `add(±1)` on enqueue/dequeue
/// and the registry reports the mean depth over the whole run.
#[derive(Clone)]
pub struct TimeWeighted(Rc<RefCell<TimeWeightedInner>>);

impl TimeWeighted {
    pub fn set(&self, v: f64) {
        let mut t = self.0.borrow_mut();
        t.settle();
        t.value = v;
        t.peak = t.peak.max(v);
    }

    pub fn add(&self, d: f64) {
        let v = self.0.borrow().value + d;
        self.set(v);
    }

    pub fn value(&self) -> f64 {
        self.0.borrow().value
    }

    pub fn peak(&self) -> f64 {
        self.0.borrow().peak
    }

    /// Mean over `[registration, now]` in virtual time; the current value
    /// if no time has elapsed.
    pub fn mean(&self) -> f64 {
        let mut t = self.0.borrow_mut();
        t.settle();
        let span = t.last_change.saturating_duration_since(t.started);
        if span == SimDuration::ZERO {
            t.value
        } else {
            t.area / span.as_nanos() as f64
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    TimeWeighted(TimeWeighted),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::TimeWeighted(_) => "time_weighted",
        }
    }
}

/// An interned metric base name (see [`StatsRegistry::intern`]): a small
/// integer standing in for a `&'static str` so labelled hot-path lookups
/// never format or hash a `String`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NameId(u32);

/// Identity hasher for pre-packed `u64` keys: the `(NameId, stream)` pair
/// is already a well-distributed small integer, so SipHash would be pure
/// overhead on the per-I/O metric path.
#[derive(Default)]
struct PackedKeyHasher(u64);

impl Hasher for PackedKeyHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("packed keys hash through write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        // Cheap integer scramble (splitmix64 finalizer) so sequential
        // stream ids don't all land in neighbouring buckets.
        let mut z = n.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

struct RegistryInner {
    time: TimeHandle,
    metrics: RefCell<BTreeMap<String, Metric>>,
    recorders: RefCell<HashMap<TypeId, Box<dyn Any>>>,
    /// Next stream label handed out by [`StatsRegistry::alloc_stream`].
    /// Stream 0 is reserved for untagged (background/metadata) I/O.
    next_stream: Cell<u32>,
    /// Interned base names, indexed by [`NameId`].
    interned: RefCell<Vec<&'static str>>,
    /// Reverse map for [`StatsRegistry::intern`] idempotence.
    interned_ids: RefCell<HashMap<&'static str, u32>>,
    /// `(NameId, stream)` → metric handle, keyed by the packed pair.
    /// This is the hot-path cache: after first registration a labelled
    /// lookup is one trivial-hash probe with no allocation.
    labelled: RefCell<HashMap<u64, Metric, BuildHasherDefault<PackedKeyHasher>>>,
}

fn packed_key(name: NameId, stream: u32) -> u64 {
    ((name.0 as u64) << 32) | stream as u64
}

/// The per-[`Sim`](crate::Sim) metrics registry. Obtained with
/// `sim.stats()`; cheap to clone.
#[derive(Clone)]
pub struct StatsRegistry {
    inner: Rc<RegistryInner>,
}

impl StatsRegistry {
    pub(crate) fn new(time: TimeHandle) -> StatsRegistry {
        StatsRegistry {
            inner: Rc::new(RegistryInner {
                time,
                metrics: RefCell::new(BTreeMap::new()),
                recorders: RefCell::new(HashMap::new()),
                next_stream: Cell::new(1),
                interned: RefCell::new(Vec::new()),
                interned_ids: RefCell::new(HashMap::new()),
                labelled: RefCell::new(HashMap::default()),
            }),
        }
    }

    /// Interns `base`, returning a small id usable with the labelled
    /// fast-path accessors ([`StatsRegistry::stream_counter_id`],
    /// [`StatsRegistry::stream_histogram_id`]). Idempotent: interning the
    /// same name twice returns the same id. Intern once at component
    /// construction; the id is `Copy` and never allocates afterwards.
    pub fn intern(&self, base: &'static str) -> NameId {
        if let Some(&id) = self.inner.interned_ids.borrow().get(base) {
            return NameId(id);
        }
        let mut names = self.inner.interned.borrow_mut();
        let id = names.len() as u32;
        names.push(base);
        self.inner.interned_ids.borrow_mut().insert(base, id);
        NameId(id)
    }

    /// The string `base` was interned from.
    pub fn interned_name(&self, name: NameId) -> &'static str {
        self.inner.interned.borrow()[name.0 as usize]
    }

    fn labelled_metric(
        &self,
        name: NameId,
        stream: u32,
        slow: impl FnOnce(&'static str) -> Metric,
    ) -> Metric {
        let key = packed_key(name, stream);
        if let Some(m) = self.inner.labelled.borrow().get(&key) {
            return m.clone();
        }
        // First touch of this (name, stream) pair: register through the
        // normal string path (formats `base{stream=N}` once), then cache
        // the handle under the packed key.
        let base = self.inner.interned.borrow()[name.0 as usize];
        let metric = slow(base);
        self.inner.labelled.borrow_mut().insert(key, metric.clone());
        metric
    }

    /// [`StatsRegistry::stream_counter`] over an interned base name: after
    /// the first call per `(name, stream)` pair this is one trivial-hash
    /// table probe — no `format!`, no `String` hashing.
    pub fn stream_counter_id(&self, name: NameId, stream: u32) -> Counter {
        match self.labelled_metric(name, stream, |base| {
            Metric::Counter(self.stream_counter(base, stream))
        }) {
            Metric::Counter(c) => c,
            other => panic!("labelled metric is a {}, not a counter", other.kind()),
        }
    }

    /// [`StatsRegistry::stream_histogram`] over an interned base name; same
    /// fast path as [`StatsRegistry::stream_counter_id`].
    pub fn stream_histogram_id(&self, name: NameId, stream: u32, edges: &[u64]) -> Histogram {
        match self.labelled_metric(name, stream, |base| {
            Metric::Histogram(self.stream_histogram(base, stream, edges))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("labelled metric is a {}, not a histogram", other.kind()),
        }
    }

    /// Allocates the next stream label. Deterministic: ids are handed out
    /// in construction order, starting at 1 (0 is the untagged stream used
    /// for background and metadata I/O).
    pub fn alloc_stream(&self) -> u32 {
        let id = self.inner.next_stream.get();
        self.inner.next_stream.set(id + 1);
        id
    }

    /// Registers (or retrieves) a counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter(Rc::new(Cell::new(0))))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or retrieves) a gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge(Rc::new(Cell::new(0.0))))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or retrieves) a histogram with the given inclusive
    /// upper-bound bucket `edges` (strictly increasing, non-empty). When
    /// the name already exists its original edges are kept; callers are
    /// expected to agree on them.
    pub fn histogram(&self, name: &str, edges: &[u64]) -> Histogram {
        assert!(
            !edges.is_empty(),
            "histogram {name:?} needs at least one edge"
        );
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram {name:?} edges must be strictly increasing"
        );
        let make = || {
            Metric::Histogram(Histogram(Rc::new(RefCell::new(HistogramInner {
                edges: edges.to_vec(),
                counts: vec![0; edges.len() + 1],
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            }))))
        };
        match self.register(name, make) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Registers (or retrieves) a time-weighted value named `name`,
    /// starting at 0.0 from the current virtual instant.
    pub fn time_weighted(&self, name: &str) -> TimeWeighted {
        let make = || {
            let now = self.inner.time.now();
            Metric::TimeWeighted(TimeWeighted(Rc::new(RefCell::new(TimeWeightedInner {
                time: self.inner.time.clone(),
                started: now,
                last_change: now,
                value: 0.0,
                area: 0.0,
                peak: 0.0,
            }))))
        };
        match self.register(name, make) {
            Metric::TimeWeighted(t) => t,
            other => panic!("metric {name:?} is a {}, not time-weighted", other.kind()),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.inner.metrics.borrow_mut();
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The registry name of metric `base` carrying `label=value`:
    /// `base{label=N}`. Labelled metrics live in the same flat namespace
    /// as everything else, so snapshots stay sorted and deterministic.
    /// Two families are in use: `stream=` (per-file I/O attribution) and
    /// `spindle=` (per-leg attribution on a volume).
    pub fn labelled_name(base: &str, label: &str, value: u32) -> String {
        format!("{base}{{{label}={value}}}")
    }

    /// Registers (or retrieves) the counter `base{label=N}`.
    pub fn labelled_counter(&self, base: &str, label: &str, value: u32) -> Counter {
        self.counter(&Self::labelled_name(base, label, value))
    }

    /// Every `(value, count)` pair registered under `base{label=N}`,
    /// sorted by label value. Intended for reports and tests.
    pub fn labelled_counter_values(&self, base: &str, label: &str) -> Vec<(u32, u64)> {
        let prefix = format!("{base}{{{label}=");
        let map = self.inner.metrics.borrow();
        let mut out: Vec<(u32, u64)> = map
            .iter()
            .filter_map(|(name, metric)| {
                let rest = name.strip_prefix(&prefix)?.strip_suffix('}')?;
                let value: u32 = rest.parse().ok()?;
                match metric {
                    Metric::Counter(c) => Some((value, c.get())),
                    _ => None,
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Sum of every counter registered under `base{label=N}`.
    pub fn labelled_counter_sum(&self, base: &str, label: &str) -> u64 {
        self.labelled_counter_values(base, label)
            .iter()
            .map(|(_, v)| v)
            .sum()
    }

    /// The registry name of metric `base` labelled with `stream`:
    /// `base{stream=N}`.
    pub fn stream_name(base: &str, stream: u32) -> String {
        Self::labelled_name(base, "stream", stream)
    }

    /// Registers (or retrieves) the per-stream counter `base{stream=N}`.
    pub fn stream_counter(&self, base: &str, stream: u32) -> Counter {
        self.labelled_counter(base, "stream", stream)
    }

    /// Registers (or retrieves) the per-stream histogram `base{stream=N}`.
    pub fn stream_histogram(&self, base: &str, stream: u32, edges: &[u64]) -> Histogram {
        self.histogram(&Self::stream_name(base, stream), edges)
    }

    /// Every `(stream, value)` pair registered under `base{stream=N}`,
    /// sorted by stream id. Intended for reports and tests.
    pub fn stream_counter_values(&self, base: &str) -> Vec<(u32, u64)> {
        self.labelled_counter_values(base, "stream")
    }

    /// Sum of every per-stream counter registered under `base{stream=N}`.
    pub fn stream_counter_sum(&self, base: &str) -> u64 {
        self.labelled_counter_sum(base, "stream")
    }

    /// `(count, sum)` of a histogram by name, or `None` if absent. Like
    /// [`StatsRegistry::counter_value`], meant for tests and reports.
    pub fn histogram_totals(&self, name: &str) -> Option<(u64, u64)> {
        match self.inner.metrics.borrow().get(name) {
            Some(Metric::Histogram(h)) => Some((h.count(), h.sum())),
            _ => None,
        }
    }

    /// The shared, type-indexed [`Recorder`] for event type `E`: every
    /// call with the same `E` returns a clone of one underlying log, so
    /// experiments no longer hand-thread `Recorder::new(&sim)` clones.
    pub fn recorder<E: 'static>(&self) -> Recorder<E> {
        let mut map = self.inner.recorders.borrow_mut();
        let slot = map
            .entry(TypeId::of::<Recorder<E>>())
            .or_insert_with(|| Box::new(Recorder::<E>::with_time(self.inner.time.clone())));
        slot.downcast_ref::<Recorder<E>>()
            .expect("recorder typemap entry has the keyed type")
            .clone()
    }

    /// Reads a counter's value by name (0 if absent). Intended for tests
    /// and snapshot plumbing, not hot paths.
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.inner.metrics.borrow().get(name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Visits every metric as a single `f64` reading, in sorted-name
    /// order: counters and histogram counts as totals, gauges and
    /// time-weighted values as their current reading. This is the
    /// telemetry sampler's view of the registry — a cheap scalar per
    /// metric, no JSON, no allocation beyond the callback's own.
    pub fn for_each_numeric(&self, mut f: impl FnMut(&str, f64)) {
        let map = self.inner.metrics.borrow();
        for (name, metric) in map.iter() {
            let v = match metric {
                Metric::Counter(c) => c.get() as f64,
                Metric::Gauge(g) => g.get(),
                Metric::Histogram(h) => h.count() as f64,
                Metric::TimeWeighted(t) => t.value(),
            };
            f(name, v);
        }
    }

    /// Serializes every metric to deterministic JSON: object keys are
    /// sorted (BTreeMap order), floats use Rust's shortest-roundtrip
    /// formatting, and nothing wall-clock- or address-derived is
    /// included. Schema: see DESIGN.md "Observability".
    pub fn to_json(&self) -> String {
        let map = self.inner.metrics.borrow();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        let mut tw = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    push_entry(&mut counters, name, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    push_entry(&mut gauges, name, &json_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let inner = h.0.borrow();
                    let mut v = String::from("{");
                    let _ = write!(
                        v,
                        "\"edges\":{},\"counts\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}",
                        json_u64_array(&inner.edges),
                        json_u64_array(&inner.counts),
                        inner.count,
                        inner.sum,
                        if inner.count == 0 { 0 } else { inner.min },
                        inner.max,
                        json_f64(if inner.count == 0 {
                            0.0
                        } else {
                            inner.sum as f64 / inner.count as f64
                        }),
                    );
                    drop(inner);
                    let _ = write!(
                        v,
                        ",\"p50\":{},\"p95\":{},\"p99\":{}",
                        json_f64(h.p50()),
                        json_f64(h.p95()),
                        json_f64(h.p99()),
                    );
                    v.push('}');
                    push_entry(&mut histograms, name, &v);
                }
                Metric::TimeWeighted(t) => {
                    let mut v = String::from("{");
                    let _ = write!(
                        v,
                        "\"last\":{},\"mean\":{},\"peak\":{}",
                        json_f64(t.value()),
                        json_f64(t.mean()),
                        json_f64(t.peak()),
                    );
                    v.push('}');
                    push_entry(&mut tw, name, &v);
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"histograms\":{{{histograms}}},\"time_weighted\":{{{tw}}}}}"
        )
    }
}

fn push_entry(out: &mut String, name: &str, value: &str) {
    if !out.is_empty() {
        out.push(',');
    }
    let _ = write!(out, "{}:{}", json_string(name), value);
}

/// Escapes a metric name for use as a JSON string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

/// JSON has no NaN/Infinity; non-finite values serialize as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Sim, SimDuration};

    #[test]
    fn counter_and_gauge_roundtrip() {
        let sim = Sim::new();
        let c = sim.stats().counter("test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying metric.
        assert_eq!(sim.stats().counter("test.count").get(), 5);
        let g = sim.stats().gauge("test.gauge");
        g.set(1.5);
        g.add(-0.5);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let sim = Sim::new();
        let h = sim.stats().histogram("test.hist", &[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        // v <= 1 → bucket 0; 1 < v <= 4 → bucket 1; 4 < v <= 16 → bucket 2;
        // v > 16 → overflow.
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1045);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let sim = Sim::new();
        let h = sim.stats().histogram("test.q", &[10, 100, 1000]);
        assert_eq!(h.p50(), 0.0, "empty histogram reads 0");
        // 100 observations spread 1..=100: half land in (0,10], half in
        // (10,100].
        for v in 1..=100u64 {
            h.observe(v.min(10) * if v <= 50 { 1 } else { 10 });
        }
        // 50 observations in bucket 0 (min=1..10), 50 in bucket 1 (=100).
        let p50 = h.p50();
        assert!(
            (1.0..=10.0).contains(&p50),
            "p50 within first bucket: {p50}"
        );
        let p99 = h.p99();
        assert!(
            (10.0..=100.0).contains(&p99),
            "p99 within second bucket: {p99}"
        );
        // Quantiles never leave [min, max].
        assert!(h.quantile(0.0) >= 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        // Overflow bucket clamps to the observed max.
        let o = sim.stats().histogram("test.over", &[2]);
        o.observe(50);
        o.observe(70);
        assert_eq!(o.quantile(1.0), 70.0);
        assert!(o.p50() <= 70.0 && o.p50() >= 50.0);
        // Deterministic JSON includes the readbacks.
        let json = sim.stats().to_json();
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p95\":"));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let sim = Sim::new();
        sim.stats().histogram("bad", &[4, 4]);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let sim = Sim::new();
        sim.stats().gauge("x");
        sim.stats().counter("x");
    }

    #[test]
    fn time_weighted_mean_integrates_virtual_time() {
        let sim = Sim::new();
        let depth = sim.stats().time_weighted("test.depth");
        let s = sim.clone();
        let d2 = depth.clone();
        sim.run_until(async move {
            d2.set(4.0); // 4 for the first 1 ms…
            s.sleep(SimDuration::from_millis(1)).await;
            d2.set(0.0); // …0 for the remaining 3 ms.
            s.sleep(SimDuration::from_millis(3)).await;
        });
        assert_eq!(depth.mean(), 1.0);
        assert_eq!(depth.peak(), 4.0);
        assert_eq!(depth.value(), 0.0);
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sorted() {
        let build = || {
            let sim = Sim::new();
            // Register out of order; output must be sorted.
            sim.stats().counter("z.last").add(2);
            sim.stats().counter("a.first").inc();
            sim.stats().gauge("m.gauge").set(0.25);
            sim.stats().histogram("h.sizes", &[2, 8]).observe(3);
            let tw = sim.stats().time_weighted("q.depth");
            let s = sim.clone();
            sim.run_until(async move {
                tw.set(2.0);
                s.sleep(SimDuration::from_millis(1)).await;
            });
            sim.stats().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "identical runs produce byte-identical JSON");
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
        assert!(a.contains("\"h.sizes\":{\"edges\":[2,8],\"counts\":[0,1,0]"));
    }

    #[test]
    fn stream_ids_are_sequential_from_one() {
        let sim = Sim::new();
        assert_eq!(sim.stats().alloc_stream(), 1);
        assert_eq!(sim.stats().alloc_stream(), 2);
        let other = Sim::new();
        assert_eq!(other.stats().alloc_stream(), 1, "per-Sim allocator");
    }

    #[test]
    fn stream_counters_are_labelled_and_enumerable() {
        let sim = Sim::new();
        let st = sim.stats();
        st.stream_counter("disk.bytes", 2).add(10);
        st.stream_counter("disk.bytes", 0).add(5);
        st.stream_counter("disk.bytes", 11).add(1);
        st.counter("disk.bytes").add(99); // unlabelled sibling, not a stream
        st.stream_counter("other.bytes", 3).add(7);
        assert_eq!(
            st.stream_counter_values("disk.bytes"),
            vec![(0, 5), (2, 10), (11, 1)]
        );
        assert_eq!(st.stream_counter_sum("disk.bytes"), 16);
        assert_eq!(st.counter_value("disk.bytes{stream=2}"), 10);
        let json = st.to_json();
        assert!(json.contains("\"disk.bytes{stream=2}\":10"));
    }

    #[test]
    fn stream_histograms_share_a_namespace_per_stream() {
        let sim = Sim::new();
        let h = sim.stats().stream_histogram("c.len", 4, &[1, 8]);
        h.observe(6);
        let again = sim.stats().stream_histogram("c.len", 4, &[1, 8]);
        assert_eq!(again.count(), 1);
        assert_eq!(
            sim.stats().histogram_totals("c.len{stream=4}"),
            Some((1, 6))
        );
        assert_eq!(sim.stats().histogram_totals("absent"), None);
    }

    #[test]
    fn shared_recorder_keeps_take_semantics() {
        let sim = Sim::new();
        let rec = sim.recorder::<&'static str>();
        let rec2 = sim.recorder::<&'static str>();
        rec.record("one");
        rec2.record("two");
        // Both handles see one shared log, typed by E.
        assert_eq!(rec.events(), vec!["one", "two"]);
        let drained = rec.take();
        assert_eq!(drained.len(), 2);
        assert!(rec2.is_empty());
        // A different event type gets a different log.
        let other = sim.recorder::<u32>();
        other.record(7);
        assert_eq!(other.len(), 1);
        assert!(rec.is_empty());
    }
}
