//! # simkit — deterministic discrete-event simulation kernel
//!
//! The substrate every other crate in this repository runs on: a
//! single-threaded async executor driven by a **virtual clock**. Simulated
//! activities (user processes, the pageout daemon, the disk mechanism) are
//! ordinary Rust futures; time advances only when no task is runnable, by
//! jumping to the earliest pending timer.
//!
//! Why a simulator: the paper ("Extent-like Performance from a UNIX File
//! System", McVoy & Kleiman, USENIX Winter 1991) measures kernel code on a
//! 1990 SPARCstation. Its results are driven by the *relative* timing of
//! CPU code paths and disk mechanics, which a virtual-time simulation
//! reproduces exactly and deterministically.
//!
//! ## Pieces
//!
//! - [`Sim`] — executor + clock ([`SimTime`], [`SimDuration`])
//! - [`sync::Event`] — one-shot completion signal (I/O done)
//! - [`sync::Semaphore`] — FIFO counting semaphore (the paper's write limit)
//! - [`channel()`] — mpsc work queues (e.g. dirty-page cleaner)
//! - [`Cpu`] — serialized compute-time charging with per-tag accounting
//! - [`Recorder`] — timestamped event logs for trace-exact tests
//! - [`Tracer`] — per-request span tracing across layers (zero-cost when
//!   disabled), behind `iobench --trace`
//! - [`stats`] — the per-`Sim` metrics registry (counters, gauges,
//!   histograms, time-weighted means) with deterministic JSON snapshots
//! - [`perfmon`] — the host-side observatory: wall-clock phase profiler
//!   (process-global, off by default) and the per-`Sim` virtual-time
//!   telemetry sampler ([`Telemetry`], `sim.telemetry()`)
//!
//! ## Invariants
//!
//! - No wall-clock input anywhere; identical runs produce identical traces.
//! - Single-threaded: shared state uses `Rc<RefCell<_>>`; no borrow may be
//!   held across an `.await`.

pub mod channel;
pub mod cpu;
pub mod executor;
pub mod host;
pub mod perfmon;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;

pub use channel::{channel, Receiver, SendError, Sender};
pub use cpu::{Cpu, TagStat};
pub use executor::{JoinHandle, Sim, Sleep, TaskId, TimeHandle, YieldNow};
pub use host::tune_host_allocator;
pub use perfmon::{PhaseGuard, PhaseRecord, Telemetry};
pub use rng::SimRng;
pub use stats::{Counter, Gauge, Histogram, NameId, StatsRegistry, TimeWeighted};
pub use sync::{Event, Notify, SemPermit, Semaphore};
pub use time::{SimDuration, SimTime};
pub use trace::{Recorder, Span, SpanId, Tracer};
