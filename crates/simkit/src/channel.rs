//! Unbounded multi-producer single-consumer channels between tasks.
//!
//! Used for work queues inside the simulated kernel, e.g. the dirty-page
//! cleaner queue that the pageout daemon feeds and a file system services.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Creates an unbounded mpsc channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let st = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (Sender { st: Rc::clone(&st) }, Receiver { st })
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// rejected value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Sending half; clonable.
pub struct Sender<T> {
    st: Rc<RefCell<ChanState<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.st.borrow_mut().senders += 1;
        Sender {
            st: Rc::clone(&self.st),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.st.borrow_mut();
        st.senders -= 1;
        if st.senders == 0 {
            if let Some(w) = st.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a value, waking the receiver if it is waiting.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.st.borrow_mut();
        if !st.receiver_alive {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        if let Some(w) = st.recv_waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.st.borrow().queue.len()
    }

    /// Returns `true` if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Receiving half.
pub struct Receiver<T> {
    st: Rc<RefCell<ChanState<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.st.borrow_mut().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Returns a future resolving to the next value, or `None` once all
    /// senders are dropped and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Takes the next value if one is queued.
    pub fn try_recv(&mut self) -> Option<T> {
        self.st.borrow_mut().queue.pop_front()
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.st.borrow().queue.len()
    }

    /// Returns `true` if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.rx.st.borrow_mut();
        if let Some(v) = st.queue.pop_front() {
            Poll::Ready(Some(v))
        } else if st.senders == 0 {
            Poll::Ready(None)
        } else {
            st.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn values_flow_in_order() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.sleep(SimDuration::from_millis(1)).await;
                tx.send(i).unwrap();
            }
        });
        let got = sim.run_until(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_when_senders_gone() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        let got = sim.run_until(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(got, (Some(9), None));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn clone_keeps_channel_open() {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(3).unwrap();
        drop(tx2);
        let got = sim.run_until(async move {
            let mut v = Vec::new();
            while let Some(x) = rx.recv().await {
                v.push(x);
            }
            v
        });
        assert_eq!(got, vec![3]);
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, mut rx) = channel::<u32>();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
    }
}
