//! A shared CPU resource that charges compute time against the virtual clock.
//!
//! The paper's rotational-delay argument is entirely about CPU time: the gap
//! between a block arriving from disk and the *next* request reaching the
//! drive is the CPU cost of the file system code path, and if that gap is
//! longer than the inter-block gap on the platter, the drive blows a full
//! revolution. Charging CPU time through this resource makes that physics
//! emerge naturally in the simulation.
//!
//! Charges are serialized FIFO (one simulated CPU) and are non-preemptive:
//! a charge runs to completion once granted. Model long computations as a
//! sequence of short charges if preemption points matter.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::executor::Sim;
use crate::sync::Semaphore;
use crate::time::{SimDuration, SimTime};

struct CpuInner {
    sim: Sim,
    gate: Semaphore,
    busy: Cell<SimDuration>,
    by_tag: RefCell<BTreeMap<&'static str, TagStat>>,
}

#[derive(Clone, Copy, Default, Debug)]
/// Accumulated charge statistics for one tag.
pub struct TagStat {
    /// Total virtual CPU time charged under this tag.
    pub time: SimDuration,
    /// Number of individual charges.
    pub count: u64,
}

/// Handle to the simulated CPU; cheap to clone.
#[derive(Clone)]
pub struct Cpu {
    inner: Rc<CpuInner>,
}

impl Cpu {
    /// Creates a single simulated CPU bound to `sim`'s clock.
    pub fn new(sim: &Sim) -> Self {
        Cpu {
            inner: Rc::new(CpuInner {
                sim: sim.clone(),
                gate: Semaphore::new(1),
                busy: Cell::new(SimDuration::ZERO),
                by_tag: RefCell::new(BTreeMap::new()),
            }),
        }
    }

    /// Occupies the CPU for `d` of virtual time, accounted under `tag`.
    ///
    /// If another task currently holds the CPU, this waits its turn (FIFO).
    pub async fn charge(&self, tag: &'static str, d: SimDuration) {
        if d.is_zero() {
            self.account(tag, d);
            return;
        }
        let _slot = self.inner.gate.acquire(1).await;
        self.inner.sim.sleep(d).await;
        self.account(tag, d);
    }

    fn account(&self, tag: &'static str, d: SimDuration) {
        self.inner.busy.set(self.inner.busy.get() + d);
        let mut tags = self.inner.by_tag.borrow_mut();
        let stat = tags.entry(tag).or_default();
        stat.time += d;
        stat.count += 1;
    }

    /// Total CPU time charged so far.
    pub fn busy(&self) -> SimDuration {
        self.inner.busy.get()
    }

    /// CPU utilization over the window from `since` to now (0.0–1.0 if the
    /// accounting window is consistent with the charges made in it).
    pub fn utilization_since(&self, since: SimTime, busy_at_since: SimDuration) -> f64 {
        let elapsed = self.inner.sim.now().duration_since(since);
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.busy() - busy_at_since).as_secs_f64() / elapsed.as_secs_f64()
    }

    /// Snapshot of per-tag accounting, sorted by tag.
    pub fn by_tag(&self) -> Vec<(&'static str, TagStat)> {
        self.inner
            .by_tag
            .borrow()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Resets the accumulated accounting (the clock is unaffected).
    pub fn reset_accounting(&self) {
        self.inner.busy.set(SimDuration::ZERO);
        self.inner.by_tag.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock_and_accounts() {
        let sim = Sim::new();
        let cpu = Cpu::new(&sim);
        let cpu2 = cpu.clone();
        sim.run_until(async move {
            cpu2.charge("copyout", SimDuration::from_millis(2)).await;
            cpu2.charge("copyout", SimDuration::from_millis(3)).await;
            cpu2.charge("bmap", SimDuration::from_micros(50)).await;
        });
        assert_eq!(sim.now().as_nanos(), 5_050_000);
        assert_eq!(cpu.busy(), SimDuration::from_micros(5050));
        let tags = cpu.by_tag();
        assert_eq!(tags.len(), 2);
        assert_eq!(tags[0].0, "bmap");
        assert_eq!(tags[0].1.count, 1);
        assert_eq!(tags[1].0, "copyout");
        assert_eq!(tags[1].1.time, SimDuration::from_millis(5));
    }

    #[test]
    fn concurrent_charges_serialize() {
        let sim = Sim::new();
        let cpu = Cpu::new(&sim);
        for _ in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(async move {
                cpu.charge("work", SimDuration::from_millis(10)).await;
            });
        }
        let end = sim.run();
        // One CPU: four 10 ms charges take 40 ms of virtual time, not 10.
        assert_eq!(end.as_nanos(), 40_000_000);
        assert_eq!(cpu.busy(), SimDuration::from_millis(40));
    }

    #[test]
    fn zero_charge_is_free_but_counted() {
        let sim = Sim::new();
        let cpu = Cpu::new(&sim);
        let cpu2 = cpu.clone();
        sim.run_until(async move {
            cpu2.charge("nop", SimDuration::ZERO).await;
        });
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(cpu.by_tag()[0].1.count, 1);
    }

    #[test]
    fn utilization_window() {
        let sim = Sim::new();
        let cpu = Cpu::new(&sim);
        let cpu2 = cpu.clone();
        let s = sim.clone();
        sim.run_until(async move {
            cpu2.charge("work", SimDuration::from_millis(25)).await;
            s.sleep(SimDuration::from_millis(75)).await;
        });
        let util = cpu.utilization_since(SimTime::ZERO, SimDuration::ZERO);
        assert!((util - 0.25).abs() < 1e-9, "got {util}");
    }

    #[test]
    fn reset_accounting_clears() {
        let sim = Sim::new();
        let cpu = Cpu::new(&sim);
        let cpu2 = cpu.clone();
        sim.run_until(async move {
            cpu2.charge("x", SimDuration::from_millis(1)).await;
        });
        cpu.reset_accounting();
        assert_eq!(cpu.busy(), SimDuration::ZERO);
        assert!(cpu.by_tag().is_empty());
    }
}
