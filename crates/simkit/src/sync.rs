//! Synchronization primitives for simulated tasks.
//!
//! All primitives are single-threaded (they live inside one [`crate::Sim`])
//! and deterministic: waiters are served strictly in FIFO order.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// A one-shot broadcast event: once signaled, every current and future
/// waiter resolves immediately (until [`Event::reset`]).
///
/// This models an I/O completion: the disk signals, the sleeping process
/// wakes.
#[derive(Clone, Default)]
pub struct Event {
    st: Rc<RefCell<EventState>>,
}

#[derive(Default)]
struct EventState {
    signaled: bool,
    waiters: Vec<Waker>,
}

impl Event {
    /// Creates an unsignaled event.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals the event, waking all waiters. Idempotent.
    pub fn signal(&self) {
        let mut st = self.st.borrow_mut();
        st.signaled = true;
        for w in st.waiters.drain(..) {
            w.wake();
        }
    }

    /// Returns `true` if [`Event::signal`] has been called since the last
    /// reset.
    pub fn is_signaled(&self) -> bool {
        self.st.borrow().signaled
    }

    /// Clears the signaled flag so the event can be reused.
    ///
    /// # Panics
    ///
    /// Panics if tasks are currently waiting; resetting under waiters would
    /// strand them.
    pub fn reset(&self) {
        let mut st = self.st.borrow_mut();
        assert!(
            st.waiters.is_empty(),
            "Event::reset while tasks are waiting"
        );
        st.signaled = false;
    }

    /// Returns a future that resolves once the event is signaled.
    pub fn wait(&self) -> EventWait {
        EventWait {
            st: Rc::clone(&self.st),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    st: Rc<RefCell<EventState>>,
}

impl Future for EventWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut st = self.st.borrow_mut();
        if st.signaled {
            Poll::Ready(())
        } else {
            st.waiters.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Wakes tasks that are currently waiting; has no memory.
///
/// The classic use is a server loop: check a work queue, and if it is empty,
/// `wait().await` for a producer's `notify_all()`. This is free of lost
/// wakeups **only** because the executor is single-threaded and cooperative:
/// there is no await point between the queue check and the first poll of the
/// wait future, so a producer cannot slip in between.
#[derive(Clone, Default)]
pub struct Notify {
    waiters: Rc<RefCell<Vec<NotifyWaiter>>>,
}

struct NotifyWaiter {
    waker: Waker,
    fired: Rc<std::cell::Cell<bool>>,
}

impl Notify {
    /// Creates a notifier with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes every task currently blocked in [`Notify::wait`].
    pub fn notify_all(&self) {
        for w in self.waiters.borrow_mut().drain(..) {
            w.fired.set(true);
            w.waker.wake();
        }
    }

    /// Returns a future that resolves at the next `notify_all` call.
    pub fn wait(&self) -> Notified {
        Notified {
            waiters: Rc::clone(&self.waiters),
            fired: None,
        }
    }
}

/// Future returned by [`Notify::wait`].
pub struct Notified {
    waiters: Rc<RefCell<Vec<NotifyWaiter>>>,
    fired: Option<Rc<std::cell::Cell<bool>>>,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match &self.fired {
            Some(flag) if flag.get() => Poll::Ready(()),
            Some(flag) => {
                // Spurious poll: refresh the stored waker.
                let flag = Rc::clone(flag);
                let mut waiters = self.waiters.borrow_mut();
                if let Some(w) = waiters.iter_mut().find(|w| Rc::ptr_eq(&w.fired, &flag)) {
                    w.waker = cx.waker().clone();
                }
                Poll::Pending
            }
            None => {
                let flag = Rc::new(std::cell::Cell::new(false));
                self.waiters.borrow_mut().push(NotifyWaiter {
                    waker: cx.waker().clone(),
                    fired: Rc::clone(&flag),
                });
                self.fired = Some(flag);
                Poll::Pending
            }
        }
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(flag) = &self.fired {
            if !flag.get() {
                self.waiters
                    .borrow_mut()
                    .retain(|w| !Rc::ptr_eq(&w.fired, flag));
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaiterState {
    Waiting,
    Granted,
    Cancelled,
}

struct SemWaiter {
    n: u64,
    state: WaiterState,
    waker: Option<Waker>,
}

struct SemState {
    permits: u64,
    queue: VecDeque<Rc<RefCell<SemWaiter>>>,
}

impl SemState {
    /// Grants queued waiters from the front while permits suffice.
    fn grant(&mut self) {
        while let Some(front) = self.queue.front() {
            let mut w = front.borrow_mut();
            match w.state {
                WaiterState::Cancelled => {
                    drop(w);
                    self.queue.pop_front();
                }
                WaiterState::Waiting if self.permits >= w.n => {
                    self.permits -= w.n;
                    w.state = WaiterState::Granted;
                    if let Some(waker) = w.waker.take() {
                        waker.wake();
                    }
                    drop(w);
                    self.queue.pop_front();
                }
                _ => break,
            }
        }
    }
}

/// A counted semaphore with strict FIFO granting.
///
/// The paper's per-file write limit is "essentially a counting semaphore in
/// the inode": writers acquire permits for the bytes they queue to disk and
/// the I/O completion releases them. FIFO granting keeps large acquisitions
/// from being starved by a stream of small ones.
#[derive(Clone)]
pub struct Semaphore {
    st: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Creates a semaphore holding `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            st: Rc::new(RefCell::new(SemState {
                permits,
                queue: VecDeque::new(),
            })),
        }
    }

    /// Currently available permits (not counting queued waiters).
    pub fn available(&self) -> u64 {
        self.st.borrow().permits
    }

    /// Number of queued waiters that have not yet been granted.
    pub fn waiters(&self) -> usize {
        self.st
            .borrow()
            .queue
            .iter()
            .filter(|w| w.borrow().state == WaiterState::Waiting)
            .count()
    }

    /// Acquires `n` permits without waiting, if immediately available and no
    /// earlier waiter is queued.
    pub fn try_acquire(&self, n: u64) -> Option<SemPermit> {
        let mut st = self.st.borrow_mut();
        if st.queue.is_empty() && st.permits >= n {
            st.permits -= n;
            Some(SemPermit {
                sem: self.clone(),
                n,
            })
        } else {
            None
        }
    }

    /// Returns a future that resolves to an RAII permit for `n` units.
    pub fn acquire(&self, n: u64) -> Acquire {
        Acquire {
            sem: self.clone(),
            n,
            waiter: None,
        }
    }

    /// Returns `n` permits to the pool, granting queued waiters in order.
    pub fn release(&self, n: u64) {
        let mut st = self.st.borrow_mut();
        st.permits += n;
        st.grant();
    }
}

/// RAII guard for permits acquired from a [`Semaphore`]; releases on drop.
pub struct SemPermit {
    sem: Semaphore,
    n: u64,
}

impl SemPermit {
    /// Number of permits held.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Drops the guard without returning the permits (they must be returned
    /// later with [`Semaphore::release`], e.g. from an I/O-done callback).
    pub fn forget(mut self) {
        self.n = 0;
    }
}

impl Drop for SemPermit {
    fn drop(&mut self) {
        if self.n > 0 {
            self.sem.release(self.n);
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    n: u64,
    waiter: Option<Rc<RefCell<SemWaiter>>>,
}

impl Future for Acquire {
    type Output = SemPermit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SemPermit> {
        let this = &mut *self;
        match &this.waiter {
            None => {
                let mut st = this.sem.st.borrow_mut();
                if st.queue.is_empty() && st.permits >= this.n {
                    st.permits -= this.n;
                    drop(st);
                    Poll::Ready(SemPermit {
                        sem: this.sem.clone(),
                        n: this.n,
                    })
                } else {
                    let w = Rc::new(RefCell::new(SemWaiter {
                        n: this.n,
                        state: WaiterState::Waiting,
                        waker: Some(cx.waker().clone()),
                    }));
                    st.queue.push_back(Rc::clone(&w));
                    drop(st);
                    this.waiter = Some(w);
                    Poll::Pending
                }
            }
            Some(w) => {
                let mut wb = w.borrow_mut();
                match wb.state {
                    WaiterState::Granted => {
                        wb.state = WaiterState::Cancelled; // Consumed; drop is a no-op.
                        drop(wb);
                        this.waiter = None;
                        Poll::Ready(SemPermit {
                            sem: this.sem.clone(),
                            n: this.n,
                        })
                    }
                    WaiterState::Waiting => {
                        wb.waker = Some(cx.waker().clone());
                        Poll::Pending
                    }
                    WaiterState::Cancelled => {
                        unreachable!("acquire polled after cancellation")
                    }
                }
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = self.waiter.take() {
            let state = {
                let mut wb = w.borrow_mut();
                let prev = wb.state;
                wb.state = WaiterState::Cancelled;
                prev
            };
            // If we were granted but never observed it, return the permits.
            if state == WaiterState::Granted {
                self.sem.release(self.n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn event_wait_after_signal_is_immediate() {
        let sim = Sim::new();
        let ev = Event::new();
        ev.signal();
        assert!(ev.is_signaled());
        sim.run_until(async move { ev.wait().await });
    }

    #[test]
    fn event_wakes_all_waiters() {
        let sim = Sim::new();
        let ev = Event::new();
        let count = Rc::new(RefCell::new(0));
        for _ in 0..4 {
            let ev = ev.clone();
            let count = Rc::clone(&count);
            sim.spawn(async move {
                ev.wait().await;
                *count.borrow_mut() += 1;
            });
        }
        let s = sim.clone();
        let ev2 = ev.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            ev2.signal();
        });
        sim.run();
        assert_eq!(*count.borrow(), 4);
    }

    #[test]
    fn event_reset_allows_reuse() {
        let sim = Sim::new();
        let ev = Event::new();
        ev.signal();
        sim.run_until({
            let ev = ev.clone();
            async move { ev.wait().await }
        });
        ev.reset();
        assert!(!ev.is_signaled());
    }

    #[test]
    fn notify_wakes_current_waiters_only() {
        let sim = Sim::new();
        let n = Notify::new();
        let hits = Rc::new(RefCell::new(0));
        for _ in 0..3 {
            let n = n.clone();
            let hits = Rc::clone(&hits);
            sim.spawn(async move {
                n.wait().await;
                *hits.borrow_mut() += 1;
            });
        }
        let s = sim.clone();
        let n2 = n.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            n2.notify_all();
        });
        sim.run();
        assert_eq!(*hits.borrow(), 3);
        // A notify with no waiters is a no-op (no memory).
        n.notify_all();
        let n3 = n.clone();
        let s = sim.clone();
        let late = sim.spawn(async move {
            // This wait must NOT complete from the earlier notify.
            let w = n3.wait();
            let t = s.sleep(SimDuration::from_millis(1));
            let mut w = Box::pin(w);
            let mut t = Box::pin(t);
            std::future::poll_fn(move |cx| {
                use std::future::Future as _;
                if w.as_mut().poll(cx).is_ready() {
                    return std::task::Poll::Ready(true);
                }
                if t.as_mut().poll(cx).is_ready() {
                    return std::task::Poll::Ready(false);
                }
                std::task::Poll::Pending
            })
            .await
        });
        sim.run();
        assert_eq!(late.try_take(), Some(false), "notify has no memory");
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(3);
        let p = sem.try_acquire(2).expect("2 of 3 available");
        assert_eq!(sem.available(), 1);
        assert!(sem.try_acquire(2).is_none());
        drop(p);
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn semaphore_fifo_order() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..3u32 {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                order.borrow_mut().push(tag);
            });
        }
        let s = sim.clone();
        let sem2 = sem.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            sem2.release(3);
        });
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn semaphore_large_request_not_starved() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        // A large request queues first; small requests queue behind it and
        // must not sneak past even when one permit is available.
        {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let _p = sem.acquire(3).await;
                order.borrow_mut().push("large");
            });
        }
        {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                order.borrow_mut().push("small");
            });
        }
        let s = sim.clone();
        let sem2 = sem.clone();
        sim.spawn(async move {
            for _ in 0..4 {
                s.sleep(SimDuration::from_millis(1)).await;
                sem2.release(1);
            }
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["large", "small"]);
    }

    #[test]
    fn semaphore_guard_forget_defers_release() {
        let sem = Semaphore::new(2);
        let p = sem.try_acquire(2).unwrap();
        p.forget();
        assert_eq!(sem.available(), 0, "forget keeps permits out");
        sem.release(2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn cancelled_waiter_is_skipped() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        // First waiter is dropped (cancelled) before permits arrive.
        {
            let sem = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let acq = sem.acquire(1);
                // Poll it once so it queues, then abandon it.
                let sleep = s.sleep(SimDuration::from_micros(500));
                futures_select_first(acq, sleep).await;
            });
        }
        {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                order.borrow_mut().push("second");
            });
        }
        let s = sim.clone();
        let sem2 = sem.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            sem2.release(1);
        });
        sim.run();
        assert_eq!(*order.borrow(), vec!["second"]);
        assert_eq!(sem.waiters(), 0);
    }

    /// Polls two futures, resolving when either does (a minimal `select`).
    async fn futures_select_first<A, B>(a: A, b: B)
    where
        A: std::future::Future,
        B: std::future::Future,
    {
        let mut a = Box::pin(a);
        let mut b = Box::pin(b);
        std::future::poll_fn(move |cx| {
            if a.as_mut().poll(cx).is_ready() || b.as_mut().poll(cx).is_ready() {
                std::task::Poll::Ready(())
            } else {
                std::task::Poll::Pending
            }
        })
        .await
    }

    #[test]
    fn granted_but_dropped_acquire_returns_permits() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        // Queue a waiter, grant it, but drop the future before it is polled
        // again; the permit must flow back.
        {
            let sem = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let acq = sem.acquire(1);
                let sleep = s.sleep(SimDuration::from_millis(10));
                // The sleep finishes *after* the grant, but the select drops
                // `acq` without observing readiness only if sleep wins the
                // race at the same poll; either way permits must balance.
                futures_select_first(acq, sleep).await;
            });
        }
        let s = sim.clone();
        let sem2 = sem.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            sem2.release(1);
        });
        sim.run();
        assert_eq!(sem.available(), 1, "no permit leaked");
    }
}
