//! Timestamped event recording for tests and table generation, and the
//! per-request span tracer.
//!
//! Crates define their own event enums (disk requests, page faults, cluster
//! pushes, ...) and record them here; tests then assert exact sequences, the
//! way the paper's Figures 3, 6 and 7 tabulate per-fault actions.
//!
//! The [`Tracer`] generalizes this: instead of flat per-crate event logs it
//! records **spans** — named virtual-time intervals with a stream label and
//! a parent — so one logical request (`read` → `getpage` → cluster read →
//! disk queue wait → disk service) nests end to end across layers. Spans
//! export to Chrome trace-event JSON (see `iobench --trace`) and feed the
//! latency-attribution analyzer.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::executor::{Sim, TimeHandle};
use crate::time::SimTime;

/// A shared, timestamped event log.
///
/// Standalone construction via [`Recorder::new`] still works, but the
/// registry surface (`sim.recorder::<E>()`) hands out one shared log per
/// event type, so experiments don't have to thread recorder clones by
/// hand. The recorder holds only a [`TimeHandle`], never a full `Sim`,
/// so the registry can store it without creating an `Rc` cycle.
pub struct Recorder<E> {
    time: TimeHandle,
    events: Rc<RefCell<Vec<(SimTime, E)>>>,
}

impl<E> Clone for Recorder<E> {
    fn clone(&self) -> Self {
        Recorder {
            time: self.time.clone(),
            events: Rc::clone(&self.events),
        }
    }
}

impl<E> Recorder<E> {
    /// Creates an empty recorder stamping events with `sim`'s clock.
    pub fn new(sim: &Sim) -> Self {
        Self::with_time(sim.time_handle())
    }

    pub(crate) fn with_time(time: TimeHandle) -> Self {
        Recorder {
            time,
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Appends an event stamped with the current virtual time.
    pub fn record(&self, event: E) {
        self.events.borrow_mut().push((self.time.now(), event));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all recorded events in order.
    pub fn take(&self) -> Vec<(SimTime, E)> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

impl<E: Clone> Recorder<E> {
    /// Returns a copy of the events (timestamps dropped).
    pub fn events(&self) -> Vec<E> {
        self.events
            .borrow()
            .iter()
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Returns a copy of the events with timestamps.
    pub fn timed_events(&self) -> Vec<(SimTime, E)> {
        self.events.borrow().clone()
    }
}

/// Identifies one span within a [`Tracer`].
///
/// Ids are handed out in creation order starting at 1. `SpanId::NONE` (0)
/// means "no span": it is what every tracing call returns while the tracer
/// is disabled, and it is a valid parent (a root span). Call sites thread
/// span ids unconditionally — no `Option` plumbing, no branching beyond the
/// tracer's own enabled check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SpanId(u64);

impl SpanId {
    /// The "no span" sentinel: returned when tracing is disabled, and the
    /// parent of root spans.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the [`SpanId::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw id (0 for `NONE`).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// One span: a named interval of virtual time attributed to a stream,
/// optionally nested under a parent span.
#[derive(Clone, Debug)]
pub struct Span {
    /// This span's id (never `NONE` in a recorded span).
    pub id: SpanId,
    /// Enclosing span, or `SpanId::NONE` for a root.
    pub parent: SpanId,
    /// What the span covers (e.g. `"disk.service"`). Static so the hot
    /// path never allocates.
    pub name: &'static str,
    /// The [`vfs` stream](crate::stats::StatsRegistry::alloc_stream) the
    /// work is attributed to; 0 is untagged/background.
    pub stream: u32,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time; `None` while the span is still open.
    pub end: Option<SimTime>,
    /// Optional numeric arguments (`("lbn", 42)`), shown in trace viewers.
    pub args: Vec<(&'static str, u64)>,
}

impl Span {
    /// The span's duration, or `None` while it is open.
    pub fn duration(&self) -> Option<crate::time::SimDuration> {
        self.end.map(|e| e.duration_since(self.start))
    }
}

struct TracerInner {
    time: TimeHandle,
    enabled: Cell<bool>,
    spans: RefCell<Vec<Span>>,
}

/// The per-[`Sim`] span tracer (`sim.tracer()`); cheap to clone.
///
/// **Zero-cost when disabled** (the default): every recording method checks
/// one `Cell<bool>` and returns [`SpanId::NONE`] without touching the span
/// store, so instrumented code costs a predictable branch and nothing else
/// — benchmark numbers with tracing off are identical to an untraced build.
/// Like [`Recorder`] and the stats registry, the tracer holds only a
/// [`TimeHandle`], never a full `Sim`, so the executor can own it without
/// an `Rc` cycle.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<TracerInner>,
}

impl Tracer {
    pub(crate) fn with_time(time: TimeHandle) -> Tracer {
        Tracer {
            inner: Rc::new(TracerInner {
                time,
                enabled: Cell::new(false),
                spans: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Creates a tracer stamping spans with `sim`'s clock (standalone use;
    /// normally you want the shared `sim.tracer()`).
    pub fn new(sim: &Sim) -> Tracer {
        Tracer::with_time(sim.time_handle())
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Turns recording on or off. Disabling does not discard already
    /// recorded spans.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    /// Opens a span starting now. Returns [`SpanId::NONE`] (and records
    /// nothing) while disabled.
    pub fn start(&self, name: &'static str, stream: u32, parent: SpanId) -> SpanId {
        if !self.inner.enabled.get() {
            return SpanId::NONE;
        }
        let now = self.inner.time.now();
        let mut spans = self.inner.spans.borrow_mut();
        let id = SpanId(spans.len() as u64 + 1);
        spans.push(Span {
            id,
            parent,
            name,
            stream,
            start: now,
            end: None,
            args: Vec::new(),
        });
        id
    }

    /// Closes `span` at the current virtual time. Ignores `NONE`; panics
    /// on a double close (that's an instrumentation bug worth hearing
    /// about).
    pub fn end(&self, span: SpanId) {
        if span.is_none() {
            return;
        }
        let now = self.inner.time.now();
        let mut spans = self.inner.spans.borrow_mut();
        let s = &mut spans[span.0 as usize - 1];
        assert!(s.end.is_none(), "span {:?} ({}) closed twice", span, s.name);
        s.end = Some(now);
    }

    /// Records a span whose bounds are already known — used where an
    /// interval is only discovered after the fact (a throttle stall, a
    /// disk request's queue wait). Returns the id, or `NONE` while
    /// disabled.
    pub fn record(
        &self,
        name: &'static str,
        stream: u32,
        parent: SpanId,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        if !self.inner.enabled.get() {
            return SpanId::NONE;
        }
        debug_assert!(start <= end, "span {name} ends before it starts");
        let mut spans = self.inner.spans.borrow_mut();
        let id = SpanId(spans.len() as u64 + 1);
        spans.push(Span {
            id,
            parent,
            name,
            stream,
            start,
            end: Some(end),
            args: Vec::new(),
        });
        id
    }

    /// Attaches a numeric argument to an open or closed span (no-op for
    /// `NONE`).
    pub fn arg(&self, span: SpanId, key: &'static str, value: u64) {
        if span.is_none() {
            return;
        }
        self.inner.spans.borrow_mut()[span.0 as usize - 1]
            .args
            .push((key, value));
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.spans.borrow().len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out all spans recorded so far, in id order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.spans.borrow().clone()
    }

    /// Drains and returns all recorded spans in id order. Span ids restart
    /// from 1 afterwards.
    pub fn take_spans(&self) -> Vec<Span> {
        std::mem::take(&mut *self.inner.spans.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn records_with_timestamps() {
        let sim = Sim::new();
        let rec: Recorder<&'static str> = Recorder::new(&sim);
        let rec2 = rec.clone();
        let s = sim.clone();
        sim.run_until(async move {
            rec2.record("start");
            s.sleep(SimDuration::from_millis(4)).await;
            rec2.record("after-sleep");
        });
        let got = rec.timed_events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (SimTime::ZERO, "start"));
        assert_eq!(
            got[1],
            (SimTime::ZERO + SimDuration::from_millis(4), "after-sleep")
        );
        assert_eq!(rec.events(), vec!["start", "after-sleep"]);
    }

    #[test]
    fn take_drains() {
        let sim = Sim::new();
        let rec: Recorder<u32> = Recorder::new(&sim);
        rec.record(1);
        rec.record(2);
        assert_eq!(rec.len(), 2);
        let drained = rec.take();
        assert_eq!(drained.len(), 2);
        assert!(rec.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let sim = Sim::new();
        let tr = sim.tracer().clone();
        assert!(!tr.enabled(), "tracing is off by default");
        let id = tr.start("read", 1, SpanId::NONE);
        assert!(id.is_none());
        tr.end(id); // No-op, no panic.
        tr.arg(id, "lbn", 7);
        let r = tr.record("stall", 1, SpanId::NONE, SimTime::ZERO, SimTime::ZERO);
        assert!(r.is_none());
        assert!(tr.is_empty());
    }

    #[test]
    fn spans_nest_and_stamp_virtual_time() {
        let sim = Sim::new();
        sim.tracer().set_enabled(true);
        let tr = sim.tracer().clone();
        let s = sim.clone();
        sim.run_until(async move {
            let root = tr.start("read", 3, SpanId::NONE);
            let child = tr.start("disk.service", 3, root);
            tr.arg(child, "lba", 128);
            s.sleep(SimDuration::from_millis(2)).await;
            tr.end(child);
            tr.end(root);
        });
        let spans = sim.tracer().take_spans();
        assert_eq!(spans.len(), 2);
        let (root, child) = (&spans[0], &spans[1]);
        assert_eq!(root.name, "read");
        assert_eq!(root.parent, SpanId::NONE);
        assert_eq!(child.parent, root.id);
        assert_eq!(child.stream, 3);
        assert_eq!(child.args, vec![("lba", 128)]);
        assert_eq!(child.duration(), Some(SimDuration::from_millis(2)));
        assert_eq!(root.start, SimTime::ZERO);
        assert_eq!(root.end, Some(SimTime::ZERO + SimDuration::from_millis(2)));
        assert!(sim.tracer().is_empty(), "take drains");
    }

    #[test]
    fn retroactive_record_keeps_given_bounds() {
        let sim = Sim::new();
        sim.tracer().set_enabled(true);
        let t0 = SimTime::ZERO + SimDuration::from_micros(5);
        let t1 = SimTime::ZERO + SimDuration::from_micros(9);
        let id = sim.tracer().record("disk.queue", 2, SpanId::NONE, t0, t1);
        assert!(!id.is_none());
        let spans = sim.tracer().spans();
        assert_eq!(spans[0].start, t0);
        assert_eq!(spans[0].end, Some(t1));
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn double_end_panics() {
        let sim = Sim::new();
        sim.tracer().set_enabled(true);
        let id = sim.tracer().start("x", 0, SpanId::NONE);
        sim.tracer().end(id);
        sim.tracer().end(id);
    }
}
