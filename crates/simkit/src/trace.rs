//! Timestamped event recording for tests and table generation.
//!
//! Crates define their own event enums (disk requests, page faults, cluster
//! pushes, ...) and record them here; tests then assert exact sequences, the
//! way the paper's Figures 3, 6 and 7 tabulate per-fault actions.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::{Sim, TimeHandle};
use crate::time::SimTime;

/// A shared, timestamped event log.
///
/// Standalone construction via [`Recorder::new`] still works, but the
/// registry surface (`sim.recorder::<E>()`) hands out one shared log per
/// event type, so experiments don't have to thread recorder clones by
/// hand. The recorder holds only a [`TimeHandle`], never a full `Sim`,
/// so the registry can store it without creating an `Rc` cycle.
pub struct Recorder<E> {
    time: TimeHandle,
    events: Rc<RefCell<Vec<(SimTime, E)>>>,
}

impl<E> Clone for Recorder<E> {
    fn clone(&self) -> Self {
        Recorder {
            time: self.time.clone(),
            events: Rc::clone(&self.events),
        }
    }
}

impl<E> Recorder<E> {
    /// Creates an empty recorder stamping events with `sim`'s clock.
    pub fn new(sim: &Sim) -> Self {
        Self::with_time(sim.time_handle())
    }

    pub(crate) fn with_time(time: TimeHandle) -> Self {
        Recorder {
            time,
            events: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Appends an event stamped with the current virtual time.
    pub fn record(&self, event: E) {
        self.events.borrow_mut().push((self.time.now(), event));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all recorded events in order.
    pub fn take(&self) -> Vec<(SimTime, E)> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
    }
}

impl<E: Clone> Recorder<E> {
    /// Returns a copy of the events (timestamps dropped).
    pub fn events(&self) -> Vec<E> {
        self.events
            .borrow()
            .iter()
            .map(|(_, e)| e.clone())
            .collect()
    }

    /// Returns a copy of the events with timestamps.
    pub fn timed_events(&self) -> Vec<(SimTime, E)> {
        self.events.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn records_with_timestamps() {
        let sim = Sim::new();
        let rec: Recorder<&'static str> = Recorder::new(&sim);
        let rec2 = rec.clone();
        let s = sim.clone();
        sim.run_until(async move {
            rec2.record("start");
            s.sleep(SimDuration::from_millis(4)).await;
            rec2.record("after-sleep");
        });
        let got = rec.timed_events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (SimTime::ZERO, "start"));
        assert_eq!(
            got[1],
            (SimTime::ZERO + SimDuration::from_millis(4), "after-sleep")
        );
        assert_eq!(rec.events(), vec!["start", "after-sleep"]);
    }

    #[test]
    fn take_drains() {
        let sim = Sim::new();
        let rec: Recorder<u32> = Recorder::new(&sim);
        rec.record(1);
        rec.record(2);
        assert_eq!(rec.len(), 2);
        let drained = rec.take();
        assert_eq!(drained.len(), 2);
        assert!(rec.is_empty());
    }
}
