//! Host-side performance observatory.
//!
//! Everything else in `simkit` explains *virtual* nanoseconds; this module
//! explains *wall-clock* ones — where the host process actually spends its
//! time when it executes a simulation, which is the question behind "why
//! does `--jobs N` run slower than `--jobs 1`". Two independent halves:
//!
//! 1. **Wall-clock phase profiler** (process-global, off by default):
//!    [`phase`] opens a named wall-clock span on the current thread;
//!    records land in a per-thread buffer (no locking on the record path)
//!    and are merged post-run by [`take_records`]. Each record also carries
//!    the thread's allocation delta over the span (see [`CountingAlloc`])
//!    so allocation churn can be attributed to phases. [`timed_lock`] is a
//!    contention probe: it times a `Mutex` acquisition and records the
//!    wait, but only when the lock was actually contended.
//!
//! 2. **Virtual-time telemetry sampler** ([`Telemetry`], per-[`Sim`]):
//!    a simulated task that periodically snapshots every numeric metric in
//!    the registry into per-run time series — cache occupancy, dirty
//!    pages, disk queue depth, throttle stalls — the continuous view the
//!    end-of-run snapshot can't give. Sampling only *reads* the registry
//!    and only *observes* virtual time, so enabling it must not (and does
//!    not — tests pin this) change a single byte of the stats snapshot,
//!    the trace, or the rendered tables.
//!
//! The profiler deliberately never touches virtual time and the sampler
//! deliberately never touches the wall clock: the paper's numbers stay a
//! pure function of the simulation with the observatory fully armed.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::executor::Sim;
use crate::stats::StatsRegistry;
use crate::time::SimDuration;

// ---------------------------------------------------------------------------
// Wall-clock phase profiler
// ---------------------------------------------------------------------------

/// Worker id reported for threads that never called [`set_worker`] (the
/// process's main/orchestrating thread).
pub const MAIN_THREAD: u32 = u32::MAX;

/// Cap on records buffered per thread; once full, further records are
/// counted in [`PhaseRecord`]-less `dropped` tallies instead of growing
/// without bound (a ring that drops the newest — by the time a run
/// overflows it, the report is already saturated with detail).
const THREAD_BUF_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Total records dropped on full thread buffers, surfaced in reports so a
/// truncated profile never masquerades as a complete one.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// One closed wall-clock phase span recorded on some thread.
#[derive(Clone, Debug)]
pub struct PhaseRecord {
    /// Phase name (`"run.drive"`, `"runner.pickup"`, `"lock.outcome"`...).
    pub name: &'static str,
    /// Optional free-form label (e.g. the run id a `run.drive` executed).
    pub label: Option<Box<str>>,
    /// Worker id ([`set_worker`]), or [`MAIN_THREAD`].
    pub worker: u32,
    /// Wall-clock bounds in nanoseconds since the profiler epoch.
    pub start_ns: u64,
    pub end_ns: u64,
    /// Heap allocations performed by this thread while the span was open.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl PhaseRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

struct ThreadBuf {
    worker: Cell<u32>,
    records: RefCell<Vec<PhaseRecord>>,
}

impl ThreadBuf {
    const fn new() -> ThreadBuf {
        ThreadBuf {
            worker: Cell::new(MAIN_THREAD),
            records: RefCell::new(Vec::new()),
        }
    }
}

/// Flushes the thread's buffered records into the global collector when
/// the thread exits, so worker-thread profiles survive the join.
struct FlushOnExit;

impl Drop for FlushOnExit {
    fn drop(&mut self) {
        flush_thread();
    }
}

thread_local! {
    static BUF: ThreadBuf = const { ThreadBuf::new() };
    static FLUSH: RefCell<Option<FlushOnExit>> = const { RefCell::new(None) };
}

fn collector() -> &'static Mutex<Vec<PhaseRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<PhaseRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arms (or disarms) the wall-clock profiler for the whole process. The
/// epoch is pinned on the first enable so record timestamps from every
/// thread share one origin. Cheap to call; recording while disabled is a
/// single relaxed atomic load.
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ALLOC_COUNTING.store(on, Ordering::Relaxed);
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the profiler is recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_nanos() as u64)
        .unwrap_or(0)
}

/// Tags the current thread as worker `k` for subsequent records. Threads
/// that never call this report as [`MAIN_THREAD`].
pub fn set_worker(k: u32) {
    BUF.with(|b| b.worker.set(k));
}

/// An open wall-clock phase on the current thread; recording happens on
/// drop. Returned by [`phase`] / [`phase_labeled`].
pub struct PhaseGuard {
    name: &'static str,
    label: Option<Box<str>>,
    start_ns: u64,
    allocs0: u64,
    bytes0: u64,
    /// Disarmed guards (profiler off at open) record nothing on drop.
    armed: bool,
}

/// Opens the wall-clock phase `name` on this thread, closed when the
/// returned guard drops. Zero-cost (one atomic load) while the profiler
/// is disabled.
pub fn phase(name: &'static str) -> PhaseGuard {
    phase_inner(name, None)
}

/// Like [`phase`], with a free-form label attached to the record (e.g.
/// the id of the run a `run.drive` phase executed).
pub fn phase_labeled(name: &'static str, label: &str) -> PhaseGuard {
    phase_inner(name, Some(label.into()))
}

fn phase_inner(name: &'static str, label: Option<Box<str>>) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard {
            name,
            label: None,
            start_ns: 0,
            allocs0: 0,
            bytes0: 0,
            armed: false,
        };
    }
    let (allocs0, bytes0) = thread_alloc_counts();
    PhaseGuard {
        name,
        label,
        // Snapshot the clock *after* the label allocation so the span
        // excludes the guard's own setup.
        start_ns: now_ns(),
        allocs0,
        bytes0,
        armed: true,
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = now_ns();
        let (allocs1, bytes1) = thread_alloc_counts();
        let rec = PhaseRecord {
            name: self.name,
            label: self.label.take(),
            worker: 0, // stamped below with the thread's tag
            start_ns: self.start_ns,
            end_ns,
            allocs: allocs1.saturating_sub(self.allocs0),
            alloc_bytes: bytes1.saturating_sub(self.bytes0),
        };
        push_record(rec);
    }
}

fn push_record(mut rec: PhaseRecord) {
    // `try_with`: never panic if the thread is already tearing down.
    let _ = BUF.try_with(|b| {
        rec.worker = b.worker.get();
        let mut records = b.records.borrow_mut();
        if records.len() >= THREAD_BUF_CAP {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if records.is_empty() {
            // First record on this thread: arm the exit flush. Only when
            // not already armed — overwriting would drop the old armer,
            // re-entering `flush_thread` while `records` is borrowed.
            let _ = FLUSH.try_with(|f| {
                let mut slot = f.borrow_mut();
                if slot.is_none() {
                    *slot = Some(FlushOnExit);
                }
            });
        }
        records.push(rec);
    });
}

/// Records an already-measured interval (used by [`timed_lock`] and by
/// callers that discover a phase only after the fact).
pub fn record(name: &'static str, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    push_record(PhaseRecord {
        name,
        label: None,
        worker: 0,
        start_ns,
        end_ns,
        allocs: 0,
        alloc_bytes: 0,
    });
}

/// Pushes the current thread's buffered records into the global collector.
/// Worker threads flush automatically on exit; the main thread should call
/// this (via [`take_records`]) before building a report.
pub fn flush_thread() {
    let drained: Vec<PhaseRecord> = BUF
        .try_with(|b| std::mem::take(&mut *b.records.borrow_mut()))
        .unwrap_or_default();
    if drained.is_empty() {
        return;
    }
    collector()
        .lock()
        .expect("perfmon collector poisoned")
        .extend(drained);
}

/// Flushes the calling thread and drains every record collected so far,
/// sorted by `(worker, start)` so reports are stable regardless of which
/// thread flushed first. Also returns the number of records dropped on
/// full buffers (0 for a trustworthy profile).
pub fn take_records() -> (Vec<PhaseRecord>, u64) {
    flush_thread();
    let mut records = std::mem::take(&mut *collector().lock().expect("perfmon collector poisoned"));
    records.sort_by_key(|r| (r.worker, r.start_ns, r.end_ns));
    (records, DROPPED.swap(0, Ordering::Relaxed))
}

/// Contention probe: acquires `m`, and if the lock was contended (the
/// uncontended `try_lock` failed), records the wait as a `name` phase
/// record. The uncontended fast path adds one `try_lock` and, while the
/// profiler is disabled, nothing else.
pub fn timed_lock<'a, T>(m: &'a Mutex<T>, name: &'static str) -> MutexGuard<'a, T> {
    if let Ok(g) = m.try_lock() {
        return g;
    }
    let start = now_ns();
    let g = m.lock().expect("timed_lock: mutex poisoned");
    record(name, start, now_ns());
    g
}

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

static ALLOC_COUNTING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// `(allocations, bytes)` performed by this thread since it started, as
/// counted by [`CountingAlloc`]. Zeros unless the binary installed the
/// counting allocator and the profiler has been enabled at least once.
pub fn thread_alloc_counts() -> (u64, u64) {
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}

/// A [`std::alloc::System`] wrapper that counts per-thread allocation
/// traffic for the profiler. Install it in a binary's root:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: simkit::perfmon::CountingAlloc = simkit::perfmon::CountingAlloc;
/// ```
///
/// Until the profiler is first enabled the counting branch is a single
/// relaxed load, so uninstrumented runs pay nothing measurable. Counters
/// are plain thread-local `Cell`s (no allocation, no locking), safe to
/// bump from inside the allocator itself.
pub struct CountingAlloc;

// SAFETY: delegates allocation to `System` verbatim; the bookkeeping
// touches only const-initialized thread-local `Cell`s, which never
// allocate or unwind.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
            let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        }
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
            let grown = new_size.saturating_sub(layout.size()) as u64;
            let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + grown));
        }
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

// ---------------------------------------------------------------------------
// Virtual-time telemetry sampler
// ---------------------------------------------------------------------------

/// One metric's sampled time series: `(virtual ns, value)` points, sparse
/// (a point is recorded only when the value changed since the previous
/// sample, plus the first sighting), ascending in time.
pub type Series = (String, Vec<(u64, f64)>);

struct TelemetryInner {
    series: RefCell<Vec<SeriesSlot>>,
    /// `name` → index into `series`, so each tick is a lookup per metric,
    /// not a re-sort.
    index: RefCell<std::collections::HashMap<String, usize>>,
    sample_every_ns: Cell<u64>,
    samples: Cell<u64>,
    active: Cell<bool>,
    truncated: Cell<bool>,
}

struct SeriesSlot {
    name: String,
    last: f64,
    points: Vec<(u64, f64)>,
}

/// Per-[`Sim`] telemetry store (`sim.telemetry()`); cheap to clone.
/// Inert until [`Telemetry::start`] spawns the sampling task.
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<TelemetryInner>,
}

impl Telemetry {
    pub(crate) fn new() -> Telemetry {
        Telemetry {
            inner: Rc::new(TelemetryInner {
                series: RefCell::new(Vec::new()),
                index: RefCell::new(std::collections::HashMap::new()),
                sample_every_ns: Cell::new(0),
                samples: Cell::new(0),
                active: Cell::new(false),
                truncated: Cell::new(false),
            }),
        }
    }

    /// Spawns the sampling task on `sim`: every `every` of *virtual* time
    /// it snapshots all numeric registry metrics into this store, up to
    /// `max_samples` ticks (a bound, so a deadlocked simulation still
    /// quiesces and a runaway run can't produce an unbounded timeline;
    /// hitting it sets [`Telemetry::truncated`]).
    ///
    /// The sampler is an observer: it reads metrics and virtual time and
    /// writes neither, so every other output of the run is byte-identical
    /// with sampling on or off.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero or the sampler was already started.
    pub fn start(&self, sim: &Sim, every: SimDuration, max_samples: u64) {
        assert!(!every.is_zero(), "telemetry sample interval must be > 0");
        assert!(
            !self.inner.active.get(),
            "telemetry sampler already started"
        );
        self.inner.active.set(true);
        self.inner.sample_every_ns.set(every.as_nanos());
        let tele = self.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let stats = sim2.stats().clone();
            loop {
                if tele.inner.samples.get() >= max_samples {
                    tele.inner.truncated.set(true);
                    return;
                }
                tele.sample_now(&stats, sim2.now().as_nanos());
                sim2.sleep(every).await;
            }
        });
    }

    /// Whether [`Telemetry::start`] has been called on this store.
    pub fn is_active(&self) -> bool {
        self.inner.active.get()
    }

    /// The configured sampling interval in virtual nanoseconds (0 before
    /// [`Telemetry::start`]).
    pub fn sample_every_ns(&self) -> u64 {
        self.inner.sample_every_ns.get()
    }

    /// Number of sampling ticks taken so far.
    pub fn samples(&self) -> u64 {
        self.inner.samples.get()
    }

    /// Whether the sampler stopped early at its `max_samples` bound.
    pub fn truncated(&self) -> bool {
        self.inner.truncated.get()
    }

    fn sample_now(&self, stats: &StatsRegistry, t_ns: u64) {
        self.inner.samples.set(self.inner.samples.get() + 1);
        let mut series = self.inner.series.borrow_mut();
        let mut index = self.inner.index.borrow_mut();
        stats.for_each_numeric(|name, value| match index.get(name) {
            Some(&i) => {
                let slot = &mut series[i];
                if slot.last != value {
                    slot.last = value;
                    slot.points.push((t_ns, value));
                }
            }
            None => {
                index.insert(name.to_string(), series.len());
                series.push(SeriesSlot {
                    name: name.to_string(),
                    last: value,
                    points: vec![(t_ns, value)],
                });
            }
        });
    }

    /// Drains the sampled series, sorted by metric name (the sampling
    /// order is registration order, which is deterministic but not
    /// alphabetical; sorting keeps exports diff-friendly).
    pub fn take_series(&self) -> Vec<Series> {
        self.inner.index.borrow_mut().clear();
        let mut slots = std::mem::take(&mut *self.inner.series.borrow_mut());
        slots.sort_by(|a, b| a.name.cmp(&b.name));
        slots.into_iter().map(|s| (s.name, s.points)).collect()
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};

    #[test]
    fn phases_record_on_named_workers_and_merge() {
        set_enabled(true);
        let _ = take_records(); // Discard records from other tests.
        {
            let _g = phase("test.outer");
            std::thread::scope(|s| {
                s.spawn(|| {
                    set_worker(3);
                    let _p = phase_labeled("test.inner", "run/x");
                });
            });
        }
        let (records, dropped) = take_records();
        set_enabled(false);
        assert_eq!(dropped, 0);
        let inner = records.iter().find(|r| r.name == "test.inner").unwrap();
        assert_eq!(inner.worker, 3);
        assert_eq!(inner.label.as_deref(), Some("run/x"));
        let outer = records.iter().find(|r| r.name == "test.outer").unwrap();
        assert_eq!(outer.worker, MAIN_THREAD);
        assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        set_enabled(false);
        {
            let _g = phase("test.ghost");
            record("test.ghost2", 0, 1);
        }
        let (records, _) = take_records();
        assert!(
            records.iter().all(|r| !r.name.starts_with("test.ghost")),
            "disabled profiler must not record"
        );
    }

    #[test]
    fn timed_lock_returns_guard() {
        let m = Mutex::new(5u32);
        *timed_lock(&m, "lock.test") += 1;
        assert_eq!(*m.lock().unwrap(), 6);
    }

    #[test]
    fn sampler_records_changing_series_without_perturbing_stats() {
        let run = |sample: bool| {
            let sim = Sim::new();
            if sample {
                sim.telemetry()
                    .start(&sim, SimDuration::from_millis(1), 1000);
            }
            let c = sim.stats().counter("t.count");
            let s = sim.clone();
            sim.run_until(async move {
                for _ in 0..5 {
                    c.inc();
                    s.sleep(SimDuration::from_millis(2)).await;
                }
            });
            (sim.stats().to_json(), sim.telemetry().take_series())
        };
        let (stats_off, series_off) = run(false);
        let (stats_on, series_on) = run(true);
        assert_eq!(stats_off, stats_on, "sampling perturbed the metrics");
        assert!(series_off.is_empty());
        let (name, points) = &series_on[0];
        assert_eq!(name, "t.count");
        assert!(
            points.len() >= 5,
            "counter changes were sampled: {points:?}"
        );
        // Change-only: values strictly increase across recorded points.
        assert!(points.windows(2).all(|w| w[0].1 < w[1].1));
        // Virtual timestamps, ascending.
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sampler_stops_at_its_cap() {
        let sim = Sim::new();
        sim.telemetry().start(&sim, SimDuration::from_millis(1), 3);
        sim.stats().counter("x").inc();
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_millis(10)).await;
        });
        assert!(sim.telemetry().samples() <= 3);
    }

    #[test]
    fn identical_runs_sample_identical_series() {
        let run = || {
            let sim = Sim::new();
            sim.telemetry()
                .start(&sim, SimDuration::from_millis(1), 1000);
            let g = sim.stats().gauge("t.g");
            let s = sim.clone();
            sim.run_until(async move {
                for i in 0..4 {
                    g.set(i as f64);
                    s.sleep(SimDuration::from_millis(3)).await;
                }
            });
            sim.telemetry().take_series()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for ((na, pa), (nb, pb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(pa, pb);
        }
    }
}
