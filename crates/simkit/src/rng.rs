//! Seeded deterministic random numbers for simulated components.
//!
//! The simulation's core invariant is that identical runs produce
//! byte-identical output, so nothing in the tree may consult the host's
//! entropy. Components that need randomness — the fault injector's torn
//! writes, workload generators — take an explicit seed and draw from this
//! splitmix64 generator. It is the same core the vendored `rand` stand-in
//! uses, but lives here so low-level crates (diskmodel) get seeded draws
//! without a dev-dependency cycle.

/// A splitmix64 PRNG: tiny state, full 64-bit period, deterministic across
/// platforms. Not cryptographic — simulation only.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be positive.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range with zero bound");
        // Multiply-shift reduction: unbiased enough for simulation use and
        // identical on every platform.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `num / den`.
    pub fn gen_bool(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
