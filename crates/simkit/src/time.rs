//! Virtual time: instants and durations measured in simulated nanoseconds.
//!
//! The simulation never consults the wall clock. All timing comes from
//! [`SimTime`] values handed out by the executor, which advances time only
//! when no task is runnable. Nanosecond resolution comfortably covers the
//! scales this repository cares about (disk sector times are hundreds of
//! microseconds; full runs are minutes of virtual time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time since the epoch as a duration.
    pub const fn elapsed_since_epoch(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Returns the duration from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time is monotone,
    /// so a negative span indicates a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: negative virtual time span"),
        )
    }

    /// Returns the duration from `earlier` to `self`, or zero if `earlier`
    /// is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns this instant as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "from_secs_f64: duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Builds a duration from fractional milliseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a fraction, rounding to nanoseconds.
    pub fn mul_f64(self, x: f64) -> SimDuration {
        SimDuration((self.0 as f64 * x).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis_f64(4.0).as_nanos(), 4_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_nanos(), 10_000_000);
        let u = t + SimDuration::from_millis(5);
        assert_eq!(u.duration_since(t), SimDuration::from_millis(5));
        assert_eq!(u - t, SimDuration::from_millis(5));
        assert_eq!(
            t.saturating_duration_since(u),
            SimDuration::ZERO,
            "future instants saturate to zero"
        );
    }

    #[test]
    #[should_panic(expected = "negative virtual time span")]
    fn duration_since_panics_on_reversal() {
        let t = SimTime::from_nanos(5);
        let u = SimTime::from_nanos(10);
        let _ = t.duration_since(u);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert_eq!((a + b).as_millis_f64(), 5.0);
        assert_eq!((a - b).as_millis_f64(), 1.0);
        assert_eq!((a * 4).as_millis_f64(), 12.0);
        assert_eq!((a / 3).as_millis_f64(), 1.0);
        assert_eq!(a.mul_f64(0.5).as_millis_f64(), 1.5);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total.as_millis_f64(), 8.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_nanos(1500)), "t+1.500us");
    }
}
