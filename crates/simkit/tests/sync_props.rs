//! Property tests for the synchronization primitives: permit conservation,
//! FIFO service, and channel ordering under arbitrary schedules.

use proptest::prelude::*;
use simkit::{channel, Semaphore, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Permits are conserved: after any mix of holders acquiring random
    /// amounts for random durations, everything returns to the pool.
    #[test]
    fn semaphore_conserves_permits(
        jobs in proptest::collection::vec((1u64..8, 0u16..500), 1..25),
        initial in 4u64..16,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(initial);
        let peak = Rc::new(RefCell::new(0u64));
        for (n, hold_us) in jobs.clone() {
            let n = n.min(initial); // Larger-than-pool requests would starve.
            let sem = sem.clone();
            let s = sim.clone();
            let peak = Rc::clone(&peak);
            sim.spawn(async move {
                let p = sem.acquire(n).await;
                {
                    let mut pk = peak.borrow_mut();
                    *pk = (*pk).max(initial - sem.available());
                }
                s.sleep(SimDuration::from_micros(hold_us as u64)).await;
                drop(p);
            });
        }
        sim.run();
        prop_assert_eq!(sem.available(), initial, "permits leaked or forged");
        prop_assert_eq!(sem.waiters(), 0);
        prop_assert!(*peak.borrow() <= initial, "over-admission");
    }

    /// FIFO: completion order of same-size acquisitions on a 1-permit
    /// semaphore equals submission order.
    #[test]
    fn semaphore_is_fifo_for_uniform_requests(
        n_tasks in 2usize..20,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..n_tasks {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire(1).await;
                s.sleep(SimDuration::from_micros(10)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        let expect: Vec<usize> = (0..n_tasks).collect();
        prop_assert_eq!(&*order.borrow(), &expect);
    }

    /// Channels deliver every value exactly once, in per-sender order.
    #[test]
    fn channel_preserves_per_sender_order(
        batches in proptest::collection::vec(1u8..20, 1..6),
    ) {
        let sim = Sim::new();
        let (tx, mut rx) = channel::<(usize, u8)>();
        for (sender, &count) in batches.iter().enumerate() {
            let tx = tx.clone();
            let s = sim.clone();
            sim.spawn(async move {
                for seq in 0..count {
                    // Stagger sends so senders interleave.
                    s.sleep(SimDuration::from_micros(seq as u64 * 3 + sender as u64)).await;
                    tx.send((sender, seq)).unwrap();
                }
            });
        }
        drop(tx);
        let received = sim.run_until(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        let total: usize = batches.iter().map(|&c| c as usize).sum();
        prop_assert_eq!(received.len(), total);
        for (sender, &count) in batches.iter().enumerate() {
            let seqs: Vec<u8> = received
                .iter()
                .filter(|(s, _)| *s == sender)
                .map(|(_, q)| *q)
                .collect();
            let expect: Vec<u8> = (0..count).collect();
            prop_assert_eq!(seqs, expect, "sender {} out of order", sender);
        }
    }
}
