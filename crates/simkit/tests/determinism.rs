//! Determinism guarantees: identical programs produce identical traces,
//! whatever mixture of timers, tasks and synchronization they use. Every
//! number in EXPERIMENTS.md rests on this property.

use proptest::prelude::*;
use simkit::{channel, Cpu, Event, Semaphore, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A little concurrent program parameterized by a schedule.
fn run_program(delays: &[u16], permits: u64) -> Vec<(u64, usize)> {
    let sim = Sim::new();
    let trace: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    let sem = Semaphore::new(permits.max(1));
    let ev = Event::new();
    let (tx, mut rx) = channel::<usize>();
    let cpu = Cpu::new(&sim);

    for (i, &d) in delays.iter().enumerate() {
        let s = sim.clone();
        let trace = Rc::clone(&trace);
        let sem = sem.clone();
        let ev = ev.clone();
        let tx = tx.clone();
        let cpu = cpu.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_micros(d as u64)).await;
            let _p = sem.acquire(1).await;
            cpu.charge("work", SimDuration::from_micros((d as u64 % 7) + 1))
                .await;
            trace.borrow_mut().push((s.now().as_nanos(), i));
            if i == 0 {
                ev.signal();
            } else {
                ev.wait().await;
            }
            let _ = tx.send(i);
        });
    }
    drop(tx);
    let collector = sim.spawn(async move {
        let mut order = Vec::new();
        while let Some(v) = rx.recv().await {
            order.push(v);
        }
        order
    });
    sim.run();
    let mut result = trace.borrow().clone();
    if let Some(order) = collector.try_take() {
        for (j, v) in order.into_iter().enumerate() {
            result.push((j as u64, v + 1000));
        }
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two executions of the same program are bit-identical.
    #[test]
    fn identical_programs_produce_identical_traces(
        delays in proptest::collection::vec(any::<u16>(), 1..20),
        permits in 1u64..4,
    ) {
        let a = run_program(&delays, permits);
        let b = run_program(&delays, permits);
        prop_assert_eq!(a, b);
    }

    /// Virtual time is monotone in the trace.
    #[test]
    fn trace_times_are_monotone(
        delays in proptest::collection::vec(any::<u16>(), 1..20),
    ) {
        let t = run_program(&delays, 2);
        let times: Vec<u64> = t.iter().filter(|(_, i)| *i < 1000).map(|(t, _)| *t).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "virtual time went backwards");
        }
    }
}

#[test]
fn cpu_serialization_is_exact() {
    // N tasks charging d each on one CPU finish at exactly N*d.
    let sim = Sim::new();
    let cpu = Cpu::new(&sim);
    for _ in 0..10 {
        let cpu = cpu.clone();
        sim.spawn(async move {
            cpu.charge("x", SimDuration::from_micros(100)).await;
        });
    }
    let end = sim.run();
    assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(1));
    assert_eq!(cpu.busy(), SimDuration::from_millis(1));
}
