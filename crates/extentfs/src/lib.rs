//! # extentfs — the comparator the paper argues against
//!
//! An extent-based file system: file data lives in large, physically
//! contiguous extents indexed by a per-file B+-tree, preallocated in
//! user-chosen units (the paper: "Typically, the user can control the size
//! of these extents... it is unlikely that a user will be able to choose
//! the 'right' extent size"). I/O is performed in extent-sized units, so
//! per-call CPU overhead is amortized exactly as in an extent file system.
//!
//! This crate exists for the title claim: clustered UFS should match
//! extent-based throughput *without* the on-disk format change and without
//! exposing extent sizing to users. The ablation benches mount this next to
//! UFS on identical hardware.
//!
//! The format is deliberately simple (and incompatible with UFS — that is
//! the point): a header block, a fixed inode table with names stored in the
//! inodes (flat namespace), free-space maps, then data. Three pieces are
//! real-extent-file-system shaped rather than toys:
//!
//! - each file's mapping is a B+-tree of `(logical, physical, len)` records
//!   ([`tree`]) with no fixed extent cap — splits and merges as it grows;
//! - free space is managed by per-group buddy/bitmap structures with
//!   goal-block placement and best-fit-by-order search ([`alloc`]), the
//!   ext4 mballoc shape, replacing the old linear-scan bitmap;
//! - files at or below [`ExtentFsParams::inline_max`] bytes live *in the
//!   inode record* and spill into the tree on growth — the small-file case
//!   the paper's clustering explicitly does not help.
//!
//! The inode table and maps are held in core; only the data path is
//! simulated in full, because only the data path is measured.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use clufs::{DelayedWrite, PrefetchPolicy, WriteAction};
use diskmodel::{BlockDeviceExt, SharedDevice};
use pagecache::{PageCache, PageId, PageKey};
use simkit::stats::{Counter, Gauge};
use simkit::{Cpu, Sim, SpanId};
use ufs::CpuCosts;
use vfs::iopath::{
    BlockMap, Executed, FileStream, IoCosts, IoIntent, IoPath, ReadReason, ReadRuns, WriteCluster,
    WriteReason,
};
use vfs::{AccessMode, FileSystem, FsError, FsResult, StreamId, Vnode, VnodeId};

pub mod alloc;
pub mod tree;

use alloc::BuddyAllocator;
use tree::{ExtentRec, ExtentTree};

/// Bytes per file system block (same as UFS for apples-to-apples).
pub const BLOCK_SIZE: usize = 8192;
const SECTORS_PER_BLOCK: u32 = (BLOCK_SIZE / 512) as u32;
/// Maximum file name length (stored in the inode).
pub const NAME_MAX: usize = 59;

/// Mount parameters.
#[derive(Clone)]
pub struct ExtentFsParams {
    /// The user-chosen extent size, in blocks — the knob the paper says
    /// users cannot choose correctly.
    pub extent_blocks: u32,
    /// Files at or below this many bytes are stored inline in the inode
    /// record; the first write growing past it spills into the extent
    /// tree (one-way).
    pub inline_max: usize,
    /// CPU cost model (use the same as the UFS mount being compared).
    pub costs: CpuCosts,
    /// Sequential read-ahead of the next I/O unit.
    pub readahead: bool,
    /// Which prefetch engine the read path runs (only meaningful while
    /// `readahead` is true; `Fixed` is the paper's predictor).
    pub prefetch: PrefetchPolicy,
    /// Page-cache identity namespace.
    pub mount_id: u64,
}

impl ExtentFsParams {
    /// A mount with the given extent size and SPARCstation costs.
    pub fn with_extent_blocks(extent_blocks: u32) -> ExtentFsParams {
        ExtentFsParams {
            extent_blocks: extent_blocks.max(1),
            inline_max: 512,
            costs: CpuCosts::sparcstation_1(),
            readahead: true,
            prefetch: PrefetchPolicy::Fixed,
            mount_id: 0x0e,
        }
    }
}

/// Where a file's bytes live.
enum FileData {
    /// At most `inline_max` bytes, stored in the inode record itself.
    Inline(Vec<u8>),
    /// Block-backed, mapped by the extent tree.
    Extents(ExtentTree),
}

struct ExtInode {
    name: String,
    size: u64,
    data: FileData,
}

struct OpenState {
    dw: RefCell<DelayedWrite>,
    /// Stream identity + pending-write quiesce (extentfs has no write
    /// limit, so the stream's throttle is unlimited).
    io: Rc<FileStream>,
}

/// Running fragmentation totals behind the registry gauges.
#[derive(Default, Clone, Copy)]
struct FragTotals {
    inline_files: u64,
    extent_files: u64,
    extents: u64,
    extent_blocks: u64,
}

/// Registry instruments for the aging study (`extentfs.*` in
/// `--stats-json`).
struct FragGauges {
    short_extents: Counter,
    mean_extent_blocks: Gauge,
    extents_per_file: Gauge,
    inline_files: Gauge,
    totals: RefCell<FragTotals>,
}

impl FragGauges {
    fn new(sim: &Sim) -> FragGauges {
        let s = sim.stats();
        FragGauges {
            short_extents: s.counter("extentfs.short_extents"),
            mean_extent_blocks: s.gauge("extentfs.mean_extent_blocks"),
            extents_per_file: s.gauge("extentfs.extents_per_file"),
            inline_files: s.gauge("extentfs.inline_files"),
            totals: RefCell::new(FragTotals::default()),
        }
    }

    fn update(&self, f: impl FnOnce(&mut FragTotals)) {
        let mut t = self.totals.borrow_mut();
        f(&mut t);
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        self.mean_extent_blocks
            .set(ratio(t.extent_blocks, t.extents));
        self.extents_per_file.set(ratio(t.extents, t.extent_files));
        self.inline_files.set(t.inline_files as f64);
    }
}

struct Inner {
    sim: Sim,
    cpu: Cpu,
    disk: SharedDevice,
    cache: PageCache,
    params: ExtentFsParams,
    /// Shared I/O executor (the same engine UFS drives).
    iopath: IoPath,
    data_start: u64,
    alloc: RefCell<BuddyAllocator>,
    inodes: RefCell<Vec<Option<ExtInode>>>,
    open: RefCell<HashMap<u32, Rc<OpenState>>>,
    stats: RefCell<ExtentFsStats>,
    frag: FragGauges,
}

/// [`BlockMap`] view of one extent file: translation is a tree walk, the
/// transfer cap is the mount's extent unit.
struct ExtMap<'a> {
    fs: &'a ExtentFs,
    ino: u32,
}

impl BlockMap for ExtMap<'_> {
    async fn extent(&self, lbn: u64, cap: u32) -> FsResult<Option<(u32, u32)>> {
        Ok(self
            .fs
            .translate(self.ino, lbn)
            .map(|(pbn, len)| (pbn, len.min(cap))))
    }

    async fn runs(&self, lbn: u64, blocks: u32) -> FsResult<Vec<(u32, u32)>> {
        let inodes = self.fs.inner.inodes.borrow();
        let inode = inodes[self.ino as usize]
            .as_ref()
            .ok_or(FsError::NotFound)?;
        Ok(match &inode.data {
            FileData::Extents(t) => t.runs(lbn, blocks),
            FileData::Inline(_) => Vec::new(),
        })
    }

    fn max_cluster(&self) -> u32 {
        self.fs.inner.params.extent_blocks
    }
}

/// Mount-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExtentFsStats {
    /// Extent-unit reads issued.
    pub unit_reads: u64,
    /// Extent-unit writes issued.
    pub unit_writes: u64,
    /// Blocks moved by reads.
    pub blocks_read: u64,
    /// Blocks moved by writes.
    pub blocks_written: u64,
    /// Preallocation attempts that had to settle for a shorter extent.
    pub short_extents: u64,
    /// Files currently stored inline in their inode.
    pub inline_files: u64,
}

/// A mounted extent file system. Clones share the mount.
#[derive(Clone)]
pub struct ExtentFs {
    inner: Rc<Inner>,
}

/// An open file.
pub struct ExtFile {
    fs: ExtentFs,
    ino: u32,
    state: Rc<OpenState>,
}

impl ExtentFs {
    /// Formats `disk` and mounts a fresh, empty volume.
    ///
    /// `ninodes` bounds the file count. Header/inode-table/map blocks are
    /// reserved at the front of the device so data placement is comparable
    /// with UFS.
    pub fn format(
        sim: &Sim,
        cpu: &Cpu,
        cache: &PageCache,
        disk: &SharedDevice,
        ninodes: u32,
        params: ExtentFsParams,
    ) -> FsResult<ExtentFs> {
        assert_eq!(cache.page_size(), BLOCK_SIZE);
        assert!(
            params.inline_max <= BLOCK_SIZE,
            "inline files must fit one block"
        );
        let total_blocks = disk.total_sectors() / SECTORS_PER_BLOCK as u64;
        let inode_blocks = (ninodes as u64 * 512).div_ceil(BLOCK_SIZE as u64);
        let bitmap_blocks = total_blocks.div_ceil(BLOCK_SIZE as u64 * 8);
        let data_start = 1 + inode_blocks + bitmap_blocks;
        if data_start >= total_blocks {
            return Err(FsError::Invalid);
        }
        let data_blocks = total_blocks - data_start;
        let iopath = IoPath::new(
            sim,
            cpu,
            disk,
            cache,
            IoCosts {
                io_setup: params.costs.io_setup,
                io_intr: params.costs.io_intr,
            },
        );
        iopath.set_prefetch(
            if params.readahead {
                params.prefetch
            } else {
                PrefetchPolicy::Off
            },
            params.extent_blocks,
        );
        Ok(ExtentFs {
            inner: Rc::new(Inner {
                sim: sim.clone(),
                cpu: cpu.clone(),
                disk: disk.clone(),
                cache: cache.clone(),
                params,
                iopath,
                data_start,
                alloc: RefCell::new(BuddyAllocator::new(data_blocks)),
                inodes: RefCell::new((0..ninodes).map(|_| None).collect()),
                open: RefCell::new(HashMap::new()),
                stats: RefCell::new(ExtentFsStats::default()),
                frag: FragGauges::new(sim),
            }),
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExtentFsStats {
        let mut s = *self.inner.stats.borrow();
        s.inline_files = self.inner.frag.totals.borrow().inline_files;
        s
    }

    /// Data blocks on the volume.
    pub fn capacity_blocks(&self) -> u64 {
        self.inner.alloc.borrow().capacity()
    }

    /// Data blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.inner.alloc.borrow().free_blocks()
    }

    /// Blocks currently allocated to `ino` (tests and experiments).
    pub fn allocated_blocks(&self, ino: u32) -> u64 {
        let inodes = self.inner.inodes.borrow();
        inodes[ino as usize]
            .as_ref()
            .map(|i| match &i.data {
                FileData::Inline(_) => 0,
                FileData::Extents(t) => t.total_blocks(),
            })
            .unwrap_or(0)
    }

    async fn charge(&self, tag: &'static str, d: simkit::SimDuration) {
        self.inner.cpu.charge(tag, d).await;
    }

    fn vid(&self, ino: u32) -> VnodeId {
        (self.inner.params.mount_id << 32) | ino as u64
    }

    /// Returns `[pbn, pbn+len)` to the allocator. A double free surfaces
    /// as `Err(FsError::Corrupt)` — reported to the caller, not asserted.
    fn free_extent(&self, pbn: u32, len: u32) -> FsResult<()> {
        self.inner
            .alloc
            .borrow_mut()
            .free_run(pbn as u64 - self.inner.data_start, len)
    }

    /// Translates `lbn` to `(pbn, contiguous len)` within the file's
    /// extent tree. An extent file system's bmap is a tree walk over
    /// in-core records — that is its CPU advantage, reflected by charging
    /// only the base bmap cost.
    fn translate(&self, ino: u32, lbn: u64) -> Option<(u32, u32)> {
        let inodes = self.inner.inodes.borrow();
        match &inodes[ino as usize].as_ref()?.data {
            FileData::Inline(_) => None,
            FileData::Extents(t) => t.lookup(lbn),
        }
    }

    /// Goal block for a file's first extent: inodes spread across the
    /// volume (the UFS cylinder-group idea), so fresh streams start in
    /// open space and goal extension keeps them contiguous. Without this,
    /// best-fit-by-order would seed every file on the exact-order tail
    /// fragments of the buddy decomposition.
    fn first_goal(&self, ino: u32) -> u64 {
        let cap = self.inner.alloc.borrow().capacity();
        let n = self.inner.inodes.borrow().len() as u64;
        ino as u64 * cap / n.max(1)
    }

    /// Grows the file's allocation to cover `blocks` logical blocks by
    /// preallocating extents of the mount's extent size, goal-placed at
    /// the end of the previous extent so sequential growth merges into
    /// long runs.
    fn ensure_allocated(&self, ino: u32, blocks: u64) -> FsResult<()> {
        loop {
            let (allocated, goal) = {
                let inodes = self.inner.inodes.borrow();
                let inode = inodes[ino as usize].as_ref().ok_or(FsError::NotFound)?;
                let FileData::Extents(t) = &inode.data else {
                    return Err(FsError::Corrupt); // Inline files have no blocks.
                };
                (
                    t.total_blocks(),
                    Some(
                        t.last()
                            .map(|r| r.pbn as u64 + r.len as u64 - self.inner.data_start)
                            .unwrap_or_else(|| self.first_goal(ino)),
                    ),
                )
            };
            if allocated >= blocks {
                return Ok(());
            }
            let run = self
                .inner
                .alloc
                .borrow_mut()
                .alloc(self.inner.params.extent_blocks, goal)?;
            if run.short {
                self.inner.stats.borrow_mut().short_extents += 1;
                self.inner.frag.short_extents.inc();
            }
            let mut inodes = self.inner.inodes.borrow_mut();
            let inode = inodes[ino as usize].as_mut().ok_or(FsError::NotFound)?;
            let FileData::Extents(t) = &mut inode.data else {
                return Err(FsError::Corrupt);
            };
            let before = t.nextents();
            t.insert(ExtentRec {
                logical: allocated,
                pbn: (self.inner.data_start + run.start) as u32,
                len: run.len,
            });
            let d_extents = t.nextents() as i64 - before as i64;
            drop(inodes);
            self.inner.frag.update(|f| {
                f.extents = f.extents.wrapping_add_signed(d_extents);
                f.extent_blocks += run.len as u64;
            });
        }
    }

    fn open_state(&self, ino: u32) -> Rc<OpenState> {
        let mut open = self.inner.open.borrow_mut();
        Rc::clone(open.entry(ino).or_insert_with(|| {
            Rc::new(OpenState {
                dw: RefCell::new(DelayedWrite::new()),
                io: FileStream::new(&self.inner.sim, self.vid(ino), None),
            })
        }))
    }

    /// Reads the I/O unit containing `lbn` into the cache (plus read-ahead
    /// of the next unit) and returns the page.
    async fn getpage(
        &self,
        f: &ExtFile,
        lbn: u64,
        eof_blocks: u64,
        parent: SpanId,
    ) -> FsResult<PageId> {
        let tracer = self.inner.sim.tracer();
        let span = tracer.start("fs.getpage", f.state.io.id().as_u32(), parent);
        tracer.arg(span, "lbn", lbn);
        let r = self.getpage_inner(f, lbn, eof_blocks, span).await;
        self.inner.sim.tracer().end(span);
        r
    }

    async fn getpage_inner(
        &self,
        f: &ExtFile,
        lbn: u64,
        eof_blocks: u64,
        span: SpanId,
    ) -> FsResult<PageId> {
        let costs = self.inner.params.costs;
        let key = PageKey {
            vnode: self.vid(f.ino),
            offset: lbn * BLOCK_SIZE as u64,
        };
        let cached = self
            .inner
            .cache
            .lookup_traced(key, f.state.io.id().as_u32(), span);
        if cached.is_some() {
            self.inner.iopath.take_ra_pending(key);
        }
        self.charge(
            "fault",
            if cached.is_some() {
                costs.page_hit
            } else {
                costs.fault
            },
        )
        .await;
        self.charge("bmap", costs.bmap).await;
        let unit = self.inner.params.extent_blocks;
        if self.translate(f.ino, lbn).is_none() {
            return Err(FsError::Corrupt);
        }
        // The unit containing `lbn` may be physically fragmented on an
        // aged volume; the batched intent below still moves it in one
        // setup, so availability is clipped by the unit and EOF only.
        let avail = |probe: u64| -> u32 {
            if probe >= eof_blocks || self.translate(f.ino, probe).is_none() {
                0
            } else {
                (eof_blocks - probe).min(unit as u64) as u32
            }
        };
        // Extent lookups are synchronous here, so the plan commits in one
        // call (no lazy-probe dry run as in UFS).
        let plan =
            self.inner
                .iopath
                .prefetch_commit(f.state.io.id(), lbn, cached.is_some(), avail, 0);
        let map = ExtMap {
            fs: self,
            ino: f.ino,
        };
        let mut sync_io = None;
        if cached.is_none() {
            let run = plan.sync.expect("uncached read plans I/O");
            debug_assert_eq!(run.lbn, lbn);
            let intent = IoIntent::ReadRuns(ReadRuns {
                lbn: run.lbn,
                len: run.blocks,
                reason: ReadReason::Demand,
                sieve: None,
            });
            let io = match self
                .inner
                .iopath
                .execute_traced(&f.state.io, &map, intent, span)
                .await?
            {
                Executed::BatchIssued(io) => io,
                _ => unreachable!("demand reads are issued"),
            };
            {
                let mut st = self.inner.stats.borrow_mut();
                st.unit_reads += 1;
                st.blocks_read += io.blocks() as u64;
            }
            sync_io = Some(io);
        }
        for run in &plan.runs {
            // Sieving runs already chose their span; exact runs are
            // re-clipped by EOF/mapping availability.
            let n = if run.sieve.is_some() {
                run.blocks
            } else {
                run.blocks.min(avail(run.lbn))
            };
            if n > 0 {
                let intent = IoIntent::ReadRuns(ReadRuns {
                    lbn: run.lbn,
                    len: n,
                    reason: ReadReason::Readahead,
                    sieve: run.sieve,
                });
                if let Executed::ReadaheadIssued { blocks } =
                    self.inner.iopath.execute(&f.state.io, &map, intent).await?
                {
                    let mut st = self.inner.stats.borrow_mut();
                    st.unit_reads += 1;
                    st.blocks_read += blocks as u64;
                }
            }
        }
        match (cached, sync_io) {
            (Some(id), _) => {
                // The page was cached when we looked, but the CPU charges
                // and read-ahead planning above are awaits, during which
                // the pageout daemon may have evicted and recycled it.
                // Re-resolve; if it vanished, retry the whole getpage —
                // the classic pagein retry loop.
                let current = if self.inner.cache.is_current(id) {
                    Some(id)
                } else {
                    self.inner.cache.lookup(key)
                };
                match current {
                    Some(id) => {
                        self.inner.cache.wait_unbusy(id).await;
                        if self.inner.cache.is_current(id) {
                            self.inner.cache.set_referenced(id);
                            Ok(id)
                        } else {
                            Box::pin(self.getpage_inner(f, lbn, eof_blocks, span)).await
                        }
                    }
                    None => Box::pin(self.getpage_inner(f, lbn, eof_blocks, span)).await,
                }
            }
            (None, Some(io)) => self.inner.iopath.finish_batch(io, lbn).await,
            (None, None) => unreachable!(),
        }
    }

    /// Pushes the dirty pages of `[range)` through the shared executor,
    /// one extent-contiguous unit at a time.
    async fn flush_range(
        &self,
        f: &ExtFile,
        range: std::ops::Range<u64>,
        reason: WriteReason,
    ) -> FsResult<()> {
        let map = ExtMap {
            fs: self,
            ino: f.ino,
        };
        let intent = IoIntent::WriteCluster(WriteCluster {
            range,
            reason,
            free_behind: false,
        });
        match self.inner.iopath.execute(&f.state.io, &map, intent).await? {
            Executed::Wrote { cluster_blocks } => {
                let mut st = self.inner.stats.borrow_mut();
                for n in cluster_blocks {
                    st.unit_writes += 1;
                    st.blocks_written += n as u64;
                }
                Ok(())
            }
            _ => unreachable!("write sweeps resolve to Wrote"),
        }
    }

    fn find(&self, name: &str) -> Option<u32> {
        self.inner
            .inodes
            .borrow()
            .iter()
            .position(|slot| slot.as_ref().map(|i| i.name == name).unwrap_or(false))
            .map(|i| i as u32)
    }

    /// Verifies allocator-vs-tree consistency (a lightweight fsck).
    pub fn check(&self) -> Vec<String> {
        let alloc = self.inner.alloc.borrow();
        let mut errors = alloc.check();
        let mut claimed = vec![false; alloc.capacity() as usize];
        for (ino, slot) in self.inner.inodes.borrow().iter().enumerate() {
            let Some(inode) = slot else { continue };
            match &inode.data {
                FileData::Inline(buf) => {
                    if inode.size != buf.len() as u64 || buf.len() > self.inner.params.inline_max {
                        errors.push(format!("ino {ino}: inline size out of bounds"));
                    }
                }
                FileData::Extents(t) => {
                    errors.extend(t.check().into_iter().map(|e| format!("ino {ino}: {e}")));
                    if inode.size.div_ceil(BLOCK_SIZE as u64) > t.total_blocks() {
                        errors.push(format!("ino {ino}: size exceeds allocation"));
                    }
                    for r in t.records() {
                        for b in 0..r.len as u64 {
                            let idx = (r.pbn as u64 - self.inner.data_start + b) as usize;
                            if claimed[idx] {
                                errors.push(format!("block {idx}: doubly claimed"));
                            }
                            claimed[idx] = true;
                            if !alloc.is_allocated(idx as u64) {
                                errors.push(format!("block {idx}: claimed but free"));
                            }
                        }
                    }
                }
            }
        }
        for (idx, &cl) in claimed.iter().enumerate() {
            if alloc.is_allocated(idx as u64) && !cl {
                errors.push(format!("block {idx}: allocated but unclaimed"));
            }
        }
        errors
    }
}

impl Vnode for ExtFile {
    fn id(&self) -> VnodeId {
        self.fs.vid(self.ino)
    }

    fn size(&self) -> u64 {
        self.fs.inner.inodes.borrow()[self.ino as usize]
            .as_ref()
            .map(|i| i.size)
            .unwrap_or(0)
    }

    fn stream(&self) -> StreamId {
        self.state.io.id()
    }

    async fn read_into(&self, off: u64, buf: &mut [u8], mode: AccessMode) -> FsResult<usize> {
        // One root span per request, same shape as UFS (`fs.read`), so the
        // trace analyzer treats both mounts identically.
        let tracer = self.fs.inner.sim.tracer();
        let span = tracer.start("fs.read", self.state.io.id().as_u32(), SpanId::NONE);
        tracer.arg(span, "off", off);
        tracer.arg(span, "bytes", buf.len() as u64);
        let r = self.read_into_inner(off, buf, mode, span).await;
        self.fs.inner.sim.tracer().end(span);
        r
    }

    async fn write(&self, off: u64, data: &[u8], mode: AccessMode) -> FsResult<()> {
        let tracer = self.fs.inner.sim.tracer();
        let span = tracer.start("fs.write", self.state.io.id().as_u32(), SpanId::NONE);
        tracer.arg(span, "off", off);
        tracer.arg(span, "bytes", data.len() as u64);
        let r = self.write_inner(off, data, mode, span).await;
        self.fs.inner.sim.tracer().end(span);
        r
    }

    async fn fsync(&self) -> FsResult<()> {
        let pending = self.state.dw.borrow_mut().flush();
        if let Some(r) = pending {
            self.fs.flush_range(self, r, WriteReason::Fsync).await?;
        }
        let offsets = self.fs.inner.cache.dirty_offsets(self.id());
        if let (Some(&first), Some(&last)) = (offsets.first(), offsets.last()) {
            let range = first / BLOCK_SIZE as u64..last / BLOCK_SIZE as u64 + 1;
            self.fs.flush_range(self, range, WriteReason::Fsync).await?;
        }
        self.state.io.quiesce().await;
        // Deferred writes fail with no caller to tell; the sticky stream
        // error makes this fsync the one that reports the loss.
        if self.state.io.take_io_error() {
            return Err(FsError::Io);
        }
        Ok(())
    }

    async fn truncate(&self, size: u64) -> FsResult<()> {
        self.truncate_impl(size).await
    }
}

impl ExtFile {
    /// The file's extent records as `(logical block, physical block, len)`
    /// — same shape as `ufs`'s probe API, for the aging study. Inline
    /// files have none.
    pub async fn extents(&self) -> FsResult<Vec<(u64, u64, u32)>> {
        let inodes = self.fs.inner.inodes.borrow();
        let inode = inodes[self.ino as usize]
            .as_ref()
            .ok_or(FsError::NotFound)?;
        Ok(match &inode.data {
            FileData::Inline(_) => Vec::new(),
            FileData::Extents(t) => t
                .records()
                .into_iter()
                .map(|r| (r.logical, r.pbn as u64, r.len))
                .collect(),
        })
    }

    /// Reads the inline buffer, if this file is inline.
    fn inline_read(&self, off: u64, buf: &mut [u8]) -> Option<usize> {
        let inodes = self.fs.inner.inodes.borrow();
        let inode = inodes[self.ino as usize].as_ref()?;
        let FileData::Inline(bytes) = &inode.data else {
            return None;
        };
        if off >= bytes.len() as u64 {
            return Some(0);
        }
        let n = buf.len().min(bytes.len() - off as usize);
        buf[..n].copy_from_slice(&bytes[off as usize..off as usize + n]);
        Some(n)
    }

    async fn read_into_inner(
        &self,
        off: u64,
        buf: &mut [u8],
        mode: AccessMode,
        span: SpanId,
    ) -> FsResult<usize> {
        let costs = self.fs.inner.params.costs;
        self.fs.charge("syscall", costs.syscall).await;
        if let Some(n) = self.inline_read(off, buf) {
            // Inode-resident data: no page cache, no disk — just the copy.
            if mode == AccessMode::Copy && n > 0 {
                self.fs.charge("copy", costs.copy(n)).await;
            }
            return Ok(n);
        }
        let size = self.size();
        if off >= size {
            return Ok(0);
        }
        let len = buf.len().min((size - off) as usize);
        let eof_blocks = size.div_ceil(BLOCK_SIZE as u64);
        let mut pos = off;
        let mut dst = 0usize;
        let end = off + len as u64;
        while pos < end {
            let lbn = pos / BLOCK_SIZE as u64;
            let in_page = (pos % BLOCK_SIZE as u64) as usize;
            let n = ((BLOCK_SIZE - in_page) as u64).min(end - pos) as usize;
            let pid = self.fs.getpage(self, lbn, eof_blocks, span).await?;
            self.fs.charge("map_unmap", costs.map_unmap).await;
            if mode == AccessMode::Copy {
                self.fs.charge("copy", costs.copy(n)).await;
            }
            self.fs
                .inner
                .cache
                .read_at(pid, in_page, &mut buf[dst..dst + n]);
            pos += n as u64;
            dst += n;
        }
        Ok(len)
    }

    async fn write_inner(
        &self,
        off: u64,
        data: &[u8],
        mode: AccessMode,
        span: SpanId,
    ) -> FsResult<()> {
        let costs = self.fs.inner.params.costs;
        self.fs.charge("syscall", costs.syscall).await;
        if data.is_empty() {
            return Ok(());
        }
        let end = off + data.len() as u64;
        // Inline fast path / spill decision.
        enum Route {
            Inline,
            Spill(Vec<u8>),
            Extents,
        }
        let route = {
            let mut inodes = self.fs.inner.inodes.borrow_mut();
            let inode = inodes[self.ino as usize]
                .as_mut()
                .ok_or(FsError::NotFound)?;
            match &mut inode.data {
                FileData::Inline(buf) => {
                    if end as usize <= self.fs.inner.params.inline_max {
                        Route::Inline
                    } else {
                        // Spill: the file outgrew the inode record. One-way.
                        let old = std::mem::take(buf);
                        inode.data = FileData::Extents(ExtentTree::new());
                        Route::Spill(old)
                    }
                }
                FileData::Extents(_) => Route::Extents,
            }
        };
        match route {
            Route::Inline => {
                if mode == AccessMode::Copy {
                    self.fs.charge("copy", costs.copy(data.len())).await;
                }
                let mut inodes = self.fs.inner.inodes.borrow_mut();
                let inode = inodes[self.ino as usize]
                    .as_mut()
                    .ok_or(FsError::NotFound)?;
                let FileData::Inline(buf) = &mut inode.data else {
                    return Err(FsError::Corrupt);
                };
                if buf.len() < end as usize {
                    buf.resize(end as usize, 0);
                }
                buf[off as usize..end as usize].copy_from_slice(data);
                inode.size = inode.size.max(end);
                Ok(())
            }
            Route::Spill(old) => {
                self.fs.inner.frag.update(|f| {
                    f.inline_files -= 1;
                    f.extent_files += 1;
                });
                if !old.is_empty() {
                    self.extent_write(0, &old, AccessMode::Copy, span).await?;
                }
                self.extent_write(off, data, mode, span).await
            }
            Route::Extents => self.extent_write(off, data, mode, span).await,
        }
    }

    async fn extent_write(
        &self,
        off: u64,
        data: &[u8],
        mode: AccessMode,
        span: SpanId,
    ) -> FsResult<()> {
        let costs = self.fs.inner.params.costs;
        let end = off + data.len() as u64;
        self.fs
            .ensure_allocated(self.ino, end.div_ceil(BLOCK_SIZE as u64))?;
        let old_size = self.size();
        let old_blocks = old_size.div_ceil(BLOCK_SIZE as u64);
        // Extent file systems have no holes: a write past EOF must
        // zero-fill the gap blocks, or reads would expose whatever the
        // recycled disk blocks last held. (UFS avoids this cost with real
        // holes — one of the paper's points in its favor.)
        if off > old_size {
            let first_gap = old_size.div_ceil(BLOCK_SIZE as u64);
            let gap_end = off / BLOCK_SIZE as u64; // Write loop covers off's own block.
            for lbn in first_gap..gap_end {
                let key = PageKey {
                    vnode: self.id(),
                    offset: lbn * BLOCK_SIZE as u64,
                };
                let pid = match self.fs.inner.cache.lookup(key) {
                    Some(pid) => {
                        self.fs.inner.cache.wait_unbusy(pid).await;
                        self.fs.inner.cache.write_at(pid, 0, &[0u8; BLOCK_SIZE]);
                        pid
                    }
                    None => {
                        let pid = self
                            .fs
                            .inner
                            .cache
                            .create_traced(key, self.state.io.id().as_u32(), span)
                            .await;
                        self.fs.inner.cache.unbusy(pid); // Created zeroed.
                        pid
                    }
                };
                self.fs.inner.cache.mark_dirty(pid);
            }
        }
        let mut pos = off;
        let mut src = 0usize;
        while pos < end {
            let lbn = pos / BLOCK_SIZE as u64;
            let in_page = (pos % BLOCK_SIZE as u64) as usize;
            let n = ((BLOCK_SIZE - in_page) as u64).min(end - pos) as usize;
            self.fs.charge("bmap", costs.bmap).await;
            let key = PageKey {
                vnode: self.id(),
                offset: lbn * BLOCK_SIZE as u64,
            };
            let full = in_page == 0 && n == BLOCK_SIZE;
            let pid = match self.fs.inner.cache.lookup(key) {
                Some(pid) => {
                    self.fs.inner.cache.wait_unbusy(pid).await;
                    pid
                }
                None => {
                    let pid = self
                        .fs
                        .inner
                        .cache
                        .create_traced(key, self.state.io.id().as_u32(), span)
                        .await;
                    if !full && lbn < old_blocks {
                        // Read-modify-write of an existing partial block.
                        let (pbn, _) = self.fs.translate(self.ino, lbn).ok_or(FsError::Corrupt)?;
                        self.fs.charge("io_setup", costs.io_setup).await;
                        let old = self
                            .fs
                            .inner
                            .disk
                            .read(pbn as u64 * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK)
                            .await;
                        self.fs.charge("io_intr", costs.io_intr).await;
                        self.fs.inner.cache.write_at(pid, 0, &old);
                    }
                    self.fs.inner.cache.unbusy(pid);
                    pid
                }
            };
            self.fs.charge("map_unmap", costs.map_unmap).await;
            if mode == AccessMode::Copy {
                self.fs.charge("copy", costs.copy(n)).await;
            }
            self.fs
                .inner
                .cache
                .write_at(pid, in_page, &data[src..src + n]);
            self.fs.inner.cache.mark_dirty(pid);
            {
                let mut inodes = self.fs.inner.inodes.borrow_mut();
                let inode = inodes[self.ino as usize]
                    .as_mut()
                    .ok_or(FsError::NotFound)?;
                if pos + n as u64 > inode.size {
                    inode.size = pos + n as u64;
                }
            }
            let action = self
                .state
                .dw
                .borrow_mut()
                .on_putpage(lbn, self.fs.inner.params.extent_blocks);
            match action {
                WriteAction::Delay => {}
                WriteAction::Push(r) | WriteAction::PushThenDelay(r) => {
                    self.fs.flush_range(self, r, WriteReason::Flush).await?;
                }
            }
            pos += n as u64;
            src += n;
        }
        Ok(())
    }

    async fn truncate_impl(&self, size: u64) -> FsResult<()> {
        self.fsync().await?;
        let keep_blocks = size.div_ceil(BLOCK_SIZE as u64);
        let freed: Vec<(u32, u32)> = {
            let mut inodes = self.fs.inner.inodes.borrow_mut();
            let inode = inodes[self.ino as usize]
                .as_mut()
                .ok_or(FsError::NotFound)?;
            inode.size = size.min(inode.size);
            match &mut inode.data {
                FileData::Inline(buf) => {
                    buf.truncate(size as usize);
                    return Ok(());
                }
                FileData::Extents(t) => {
                    let before = t.nextents();
                    let freed = t.truncate_to(keep_blocks);
                    let d_extents = before as i64 - t.nextents() as i64;
                    let d_blocks: u64 = freed.iter().map(|&(_, l)| l as u64).sum();
                    self.fs.inner.frag.update(|f| {
                        f.extents -= d_extents as u64;
                        f.extent_blocks -= d_blocks;
                    });
                    freed
                }
            }
        };
        self.fs
            .inner
            .cache
            .invalidate_vnode(self.id(), keep_blocks * BLOCK_SIZE as u64);
        for (pbn, len) in freed {
            self.fs.free_extent(pbn, len)?;
        }
        // Zero the tail of the kept final partial block so a later
        // extension does not expose stale bytes.
        let tail = (size % BLOCK_SIZE as u64) as usize;
        if tail != 0 {
            let last_lbn = size / BLOCK_SIZE as u64;
            if let Some((pbn, _)) = self.fs.translate(self.ino, last_lbn) {
                let key = PageKey {
                    vnode: self.id(),
                    offset: last_lbn * BLOCK_SIZE as u64,
                };
                let pid = match self.fs.inner.cache.lookup(key) {
                    Some(pid) => {
                        self.fs.inner.cache.wait_unbusy(pid).await;
                        pid
                    }
                    None => {
                        let pid = self.fs.inner.cache.create(key).await;
                        let old = self
                            .fs
                            .inner
                            .disk
                            .read(pbn as u64 * SECTORS_PER_BLOCK as u64, SECTORS_PER_BLOCK)
                            .await;
                        self.fs.inner.cache.write_at(pid, 0, &old);
                        self.fs.inner.cache.unbusy(pid);
                        pid
                    }
                };
                self.fs
                    .inner
                    .cache
                    .write_at(pid, tail, &vec![0u8; BLOCK_SIZE - tail]);
                self.fs.inner.cache.mark_dirty(pid);
            }
        }
        Ok(())
    }
}

impl FileSystem for ExtentFs {
    type File = ExtFile;

    async fn create(&self, path: &str) -> FsResult<ExtFile> {
        let name = path.trim_start_matches('/');
        if name.is_empty() || name.len() > NAME_MAX || name.contains('/') {
            return Err(FsError::Invalid);
        }
        if let Some(ino) = self.find(name) {
            let f = ExtFile {
                fs: self.clone(),
                ino,
                state: self.open_state(ino),
            };
            f.truncate(0).await?;
            return Ok(f);
        }
        let slot = {
            let mut inodes = self.inner.inodes.borrow_mut();
            let slot = inodes
                .iter()
                .position(|s| s.is_none())
                .ok_or(FsError::NoInodes)?;
            inodes[slot] = Some(ExtInode {
                name: name.to_string(),
                size: 0,
                data: FileData::Inline(Vec::new()),
            });
            slot as u32
        };
        self.inner.frag.update(|f| f.inline_files += 1);
        Ok(ExtFile {
            fs: self.clone(),
            ino: slot,
            state: self.open_state(slot),
        })
    }

    async fn open(&self, path: &str) -> FsResult<ExtFile> {
        let name = path.trim_start_matches('/');
        let ino = self.find(name).ok_or(FsError::NotFound)?;
        Ok(ExtFile {
            fs: self.clone(),
            ino,
            state: self.open_state(ino),
        })
    }

    async fn remove(&self, path: &str) -> FsResult<()> {
        let name = path.trim_start_matches('/');
        let ino = self.find(name).ok_or(FsError::NotFound)?;
        let f = ExtFile {
            fs: self.clone(),
            ino,
            state: self.open_state(ino),
        };
        f.truncate(0).await?;
        self.inner.cache.invalidate_vnode(self.vid(ino), 0);
        let was_inline = {
            let mut inodes = self.inner.inodes.borrow_mut();
            let inode = inodes[ino as usize].take().ok_or(FsError::NotFound)?;
            matches!(inode.data, FileData::Inline(_))
        };
        self.inner.frag.update(|f| {
            if was_inline {
                f.inline_files -= 1;
            } else {
                f.extent_files -= 1;
            }
        });
        self.inner.open.borrow_mut().remove(&ino);
        Ok(())
    }

    async fn sync(&self) -> FsResult<()> {
        let inos: Vec<u32> = self.inner.open.borrow().keys().copied().collect();
        for ino in inos {
            let f = ExtFile {
                fs: self.clone(),
                ino,
                state: self.open_state(ino),
            };
            f.fsync().await?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::DiskParams;
    use pagecache::PageCacheParams;

    fn world(sim: &Sim, extent_blocks: u32) -> (ExtentFs, SharedDevice) {
        let cpu = Cpu::new(sim);
        let disk: SharedDevice = Rc::new(diskmodel::Disk::new(sim, DiskParams::small_test()));
        let cache = PageCache::new(sim, PageCacheParams::small_test());
        // A pageout daemon keeps page allocation from deadlocking when a
        // test touches more pages than the (tiny) cache holds. Dirty
        // victims are not cleaned here (tests fsync explicitly).
        let (_daemon, _rx) = pagecache::PageoutDaemon::spawn(
            sim,
            &cache,
            None,
            pagecache::PageoutParams::small_test(),
        );
        std::mem::forget(_rx); // Keep the cleaner channel open.
        let mut params = ExtentFsParams::with_extent_blocks(extent_blocks);
        params.costs = CpuCosts::free();
        let fs = ExtentFs::format(sim, &cpu, &cache, &disk, 64, params).unwrap();
        (fs, disk)
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn roundtrip_and_preallocation() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 8);
            let f = fs.create("data").await.unwrap();
            let data = pattern(100_000, 1);
            f.write(0, &data, AccessMode::Copy).await.unwrap();
            assert_eq!(f.size(), 100_000);
            let back = f.read(0, 100_000, AccessMode::Copy).await.unwrap();
            assert_eq!(back, data);
            // 100 KB = 13 blocks, preallocated in 8-block extents → 16.
            assert_eq!(fs.allocated_blocks(f.ino), 16);
            assert!(fs.check().is_empty(), "{:?}", fs.check());
        });
    }

    #[test]
    fn small_files_stay_inline() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, disk) = world(&s, 8);
            let f = fs.create("tiny").await.unwrap();
            let data = pattern(300, 7);
            f.write(0, &data, AccessMode::Copy).await.unwrap();
            f.fsync().await.unwrap();
            assert_eq!(fs.allocated_blocks(f.ino), 0, "inline: no blocks");
            assert_eq!(fs.stats().inline_files, 1);
            assert_eq!(disk.stats().reads + disk.stats().writes, 0, "no disk I/O");
            let back = f.read(0, 300, AccessMode::Copy).await.unwrap();
            assert_eq!(back, data);
            // Sparse inline extension zero-fills the gap.
            f.write(400, &[9u8; 10], AccessMode::Copy).await.unwrap();
            let back = f.read(0, 410, AccessMode::Copy).await.unwrap();
            assert!(back[300..400].iter().all(|&b| b == 0));
            assert_eq!(&back[400..], &[9u8; 10]);
            assert!(fs.check().is_empty(), "{:?}", fs.check());
        });
    }

    #[test]
    fn inline_spill_preserves_contents() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 4);
            let f = fs.create("grow").await.unwrap();
            let head = pattern(500, 2);
            f.write(0, &head, AccessMode::Copy).await.unwrap();
            assert_eq!(fs.allocated_blocks(f.ino), 0);
            // This write crosses the inline threshold: the file spills.
            let tail = pattern(20_000, 3);
            f.write(500, &tail, AccessMode::Copy).await.unwrap();
            assert!(fs.allocated_blocks(f.ino) > 0, "spilled to the tree");
            assert_eq!(fs.stats().inline_files, 0);
            let back = f.read(0, 20_500, AccessMode::Copy).await.unwrap();
            assert_eq!(&back[..500], &head[..]);
            assert_eq!(&back[500..], &tail[..]);
            assert!(fs.check().is_empty(), "{:?}", fs.check());
        });
    }

    #[test]
    fn double_free_is_reported_not_aborted() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 8);
            let f = fs.create("data").await.unwrap();
            f.write(0, &pattern(100_000, 1), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            let extents = f.extents().await.unwrap();
            let (_, pbn, len) = extents[0];
            fs.free_extent(pbn as u32, len).unwrap();
            // The blocks are already free: the second free must surface as
            // an error, not a panic.
            assert_eq!(fs.free_extent(pbn as u32, len), Err(FsError::Corrupt));
        });
    }

    #[test]
    fn extent_units_amortize_io() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, disk) = world(&s, 8);
            let f = fs.create("seq").await.unwrap();
            f.write(0, &pattern(16 * BLOCK_SIZE, 2), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            fs.inner.cache.invalidate_vnode(f.id(), 0);
            disk.reset_stats();
            f.read(0, 16 * BLOCK_SIZE, AccessMode::Copy).await.unwrap();
            let st = disk.stats();
            assert_eq!(st.reads, 2, "16 blocks in 8-block units");
            let fst = fs.stats();
            assert_eq!(fst.blocks_written, 16);
        });
    }

    #[test]
    fn remove_returns_space() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 4);
            let f = fs.create("gone").await.unwrap();
            f.write(0, &pattern(50_000, 3), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            drop(f);
            fs.remove("gone").await.unwrap();
            assert!(fs.check().is_empty());
            assert_eq!(fs.free_blocks(), fs.capacity_blocks(), "all blocks freed");
            assert!(fs.open("gone").await.is_err());
        });
    }

    #[test]
    fn truncate_partial_extent() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 8);
            let f = fs.create("t").await.unwrap();
            f.write(0, &pattern(12 * BLOCK_SIZE, 4), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            f.truncate(3 * BLOCK_SIZE as u64).await.unwrap();
            assert_eq!(f.size(), 3 * BLOCK_SIZE as u64);
            assert_eq!(fs.allocated_blocks(f.ino), 3);
            assert!(fs.check().is_empty(), "{:?}", fs.check());
            let back = f.read(0, 3 * BLOCK_SIZE, AccessMode::Copy).await.unwrap();
            assert_eq!(back, pattern(12 * BLOCK_SIZE, 4)[..3 * BLOCK_SIZE]);
        });
    }

    #[test]
    fn fragmentation_forces_short_extents() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 4);
            // Fill the volume with large files, then shave the tail off
            // each one: free space becomes a sieve of sub-extent holes.
            let mut names = Vec::new();
            'fill: for i in 0..64 {
                let name = format!("f{i}");
                let f = fs.create(&name).await.unwrap();
                for b in 0..40u64 {
                    if f.write(
                        b * 4 * BLOCK_SIZE as u64,
                        &pattern(4 * BLOCK_SIZE, i as u8),
                        AccessMode::Copy,
                    )
                    .await
                    .is_err()
                    {
                        f.fsync().await.unwrap();
                        names.push(name);
                        break 'fill;
                    }
                }
                f.fsync().await.unwrap();
                names.push(name);
            }
            // Shave 2 blocks off each file: only 2-block holes exist now.
            for name in &names {
                let f = fs.open(name).await.unwrap();
                let keep = f.size().saturating_sub(2 * BLOCK_SIZE as u64);
                f.truncate(keep).await.unwrap();
            }
            let before = fs.stats().short_extents;
            let f = fs.create("late").await.unwrap();
            // 12 blocks = three 4-block extent requests; at most one
            // contiguous 4-run survives the shaving, so shorts must occur.
            f.write(0, &pattern(12 * BLOCK_SIZE, 5), AccessMode::Copy)
                .await
                .unwrap();
            // A 4-block extent request cannot be satisfied on this aged
            // volume (the paper's point about fixed extent sizes).
            assert!(
                fs.stats().short_extents > before,
                "expected short extents on a fragmented volume"
            );
            assert!(fs.check().is_empty(), "{:?}", fs.check());
        });
    }

    #[test]
    fn truncate_then_extend_reads_zero_tail() {
        // Regression: shrinking to a mid-block size then extending must
        // not expose the stale bytes that used to follow the new EOF.
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 4);
            let f = fs.create("t").await.unwrap();
            f.write(0, &pattern(20_000, 9), AccessMode::Copy)
                .await
                .unwrap();
            f.truncate(100).await.unwrap();
            // Extend with a hole by writing far beyond EOF.
            f.write(50_000, &[7u8; 10], AccessMode::Copy).await.unwrap();
            let back = f.read(0, 50_010, AccessMode::Copy).await.unwrap();
            assert_eq!(&back[..100], &pattern(20_000, 9)[..100]);
            assert!(
                back[100..50_000].iter().all(|&b| b == 0),
                "stale tail visible after truncate+extend"
            );
            assert_eq!(&back[50_000..], &[7u8; 10]);
        });
    }

    #[test]
    fn fragmented_read_batches_into_one_unit() {
        // A file whose extent unit spans discontiguous physical runs must
        // still read in one batched intent: one setup, one disk read per
        // run, one logical unit read in the counters.
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, disk) = world(&s, 8);
            // A plug file soaks up every data block, then two isolated
            // 4-block holes are punched well apart. The only free space
            // left is those holes, so the next allocation cannot find a
            // contiguous 8-block run.
            let plug = fs.create("plug").await.unwrap();
            let mut off = 0u64;
            loop {
                match plug
                    .write(off, &pattern(8 * BLOCK_SIZE, 9), AccessMode::Copy)
                    .await
                {
                    Ok(()) => off += 8 * BLOCK_SIZE as u64,
                    Err(FsError::NoSpace) => break,
                    Err(e) => panic!("plug write: {e}"),
                }
                plug.fsync().await.unwrap();
            }
            assert_eq!(fs.free_blocks(), 0, "plug should exhaust the volume");
            let pbn0 = plug.extents().await.unwrap()[0].1 as u32;
            fs.free_extent(pbn0 + 40, 4).unwrap();
            fs.free_extent(pbn0 + 52, 4).unwrap();
            // This 8-block file lands in the scattered 4-block holes.
            let f = fs.create("frag").await.unwrap();
            f.write(0, &pattern(8 * BLOCK_SIZE, 42), AccessMode::Copy)
                .await
                .unwrap();
            f.fsync().await.unwrap();
            let extents = f.extents().await.unwrap();
            assert!(extents.len() >= 2, "expected a fragmented file");
            fs.inner.cache.invalidate_vnode(f.id(), 0);
            disk.reset_stats();
            let before = fs.stats();
            let back = f.read(0, 8 * BLOCK_SIZE, AccessMode::Copy).await.unwrap();
            assert_eq!(back, pattern(8 * BLOCK_SIZE, 42));
            let st = fs.stats();
            assert_eq!(
                st.unit_reads - before.unit_reads,
                1,
                "one batched unit read"
            );
            assert_eq!(st.blocks_read - before.blocks_read, 8);
            assert_eq!(
                disk.stats().reads,
                extents.len() as u64,
                "one transfer per physical run"
            );
        });
    }

    #[test]
    fn flat_namespace_rules() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let (fs, _disk) = world(&s, 4);
            assert!(fs.create("a/b").await.is_err(), "no subdirectories");
            assert!(fs.create("").await.is_err());
            let f = fs.create("ok").await.unwrap();
            drop(f);
            let f2 = fs.create("ok").await.unwrap(); // Truncates.
            assert_eq!(f2.size(), 0);
        });
    }
}
