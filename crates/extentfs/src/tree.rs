//! The per-file extent index: a B+-tree over `(logical, physical, len)`
//! records.
//!
//! Real extent file systems (ext4, XFS) index a file's extents in a B+-tree
//! rooted in the inode: a handful of records live inline, and past that the
//! index grows levels. This in-core version keeps the same shape — sorted
//! leaf records, internal nodes of `(min logical key, child)` fan-out
//! [`NODE_CAP`], split on overflow, merge on underflow — with no cap on the
//! extent count (the old flat `Vec<Extent>` topped out at 40 and returned
//! `TooBig`). The node capacity is deliberately small so multi-level trees
//! appear at test scale; depth grows by one each time the root splits.
//!
//! Insert coalesces: a record that is logically and physically adjacent to
//! its predecessor or successor is merged rather than stored, so a file
//! grown by repeated goal-directed allocations keeps a one-record tree.

/// Children (or records) per node; splits keep nodes in
/// `[NODE_CAP/2, NODE_CAP]` except the root.
pub const NODE_CAP: usize = 8;
const NODE_MIN: usize = NODE_CAP / 2;

/// One extent record: `len` blocks at physical `pbn`, mapping the logical
/// block range `[logical, logical + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtentRec {
    /// First logical block covered.
    pub logical: u64,
    /// First physical block.
    pub pbn: u32,
    /// Length in blocks.
    pub len: u32,
}

impl ExtentRec {
    fn end(&self) -> u64 {
        self.logical + self.len as u64
    }
}

enum Node {
    Leaf(Vec<ExtentRec>),
    /// `(min logical key of child, child)`, sorted by key.
    Internal(Vec<(u64, Box<Node>)>),
}

impl Node {
    fn min_key(&self) -> u64 {
        match self {
            Node::Leaf(recs) => recs[0].logical,
            Node::Internal(ch) => ch[0].0,
        }
    }

    fn entries(&self) -> usize {
        match self {
            Node::Leaf(recs) => recs.len(),
            Node::Internal(ch) => ch.len(),
        }
    }

    /// Splits off the upper half, returning the new right sibling.
    fn split(&mut self) -> Node {
        match self {
            Node::Leaf(recs) => Node::Leaf(recs.split_off(recs.len() / 2)),
            Node::Internal(ch) => Node::Internal(ch.split_off(ch.len() / 2)),
        }
    }

    /// Appends all entries of `right` (its keys are all larger).
    fn absorb(&mut self, right: Node) {
        match (self, right) {
            (Node::Leaf(l), Node::Leaf(mut r)) => l.append(&mut r),
            (Node::Internal(l), Node::Internal(mut r)) => l.append(&mut r),
            _ => unreachable!("siblings are at the same level"),
        }
    }
}

/// Child index whose subtree may contain `lbn` (the last child whose min
/// key is `<= lbn`, clamped to the first).
fn child_for(ch: &[(u64, Box<Node>)], lbn: u64) -> usize {
    ch.partition_point(|(k, _)| *k <= lbn).saturating_sub(1)
}

fn insert_rec(node: &mut Node, rec: ExtentRec) -> Option<Node> {
    let spilled = match node {
        Node::Leaf(recs) => {
            let pos = recs.partition_point(|r| r.logical < rec.logical);
            recs.insert(pos, rec);
            recs.len() > NODE_CAP
        }
        Node::Internal(ch) => {
            let pos = child_for(ch, rec.logical);
            if let Some(right) = insert_rec(&mut ch[pos].1, rec) {
                ch.insert(pos + 1, (right.min_key(), Box::new(right)));
            }
            ch[pos].0 = ch[pos].1.min_key();
            ch.len() > NODE_CAP
        }
    };
    spilled.then(|| node.split())
}

fn remove_rec(node: &mut Node, logical: u64) -> Option<ExtentRec> {
    match node {
        Node::Leaf(recs) => {
            let pos = recs.partition_point(|r| r.logical < logical);
            (pos < recs.len() && recs[pos].logical == logical).then(|| recs.remove(pos))
        }
        Node::Internal(ch) => {
            let pos = child_for(ch, logical);
            let removed = remove_rec(&mut ch[pos].1, logical)?;
            if ch[pos].1.entries() < NODE_MIN && ch.len() > 1 {
                // Merge with a sibling; re-split if the merge overflows
                // (that is the borrow case).
                let l = if pos + 1 < ch.len() { pos } else { pos - 1 };
                let (_, rnode) = ch.remove(l + 1);
                ch[l].1.absorb(*rnode);
                if ch[l].1.entries() > NODE_CAP {
                    let right = ch[l].1.split();
                    ch.insert(l + 1, (right.min_key(), Box::new(right)));
                }
            }
            for (k, c) in ch.iter_mut() {
                *k = c.min_key();
            }
            Some(removed)
        }
    }
}

/// A file's extent index.
pub struct ExtentTree {
    root: Node,
    depth: u32,
    nextents: usize,
    total_blocks: u64,
}

impl Default for ExtentTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtentTree {
    /// An empty index.
    pub fn new() -> ExtentTree {
        ExtentTree {
            root: Node::Leaf(Vec::new()),
            depth: 1,
            nextents: 0,
            total_blocks: 0,
        }
    }

    /// Number of extent records.
    pub fn nextents(&self) -> usize {
        self.nextents
    }

    /// Total mapped blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Tree levels (a leaf-only root is depth 1).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Maps `lbn` to `(pbn, blocks contiguous from lbn)`.
    pub fn lookup(&self, lbn: u64) -> Option<(u32, u32)> {
        self.record_containing(lbn).map(|r| {
            let off = (lbn - r.logical) as u32;
            (r.pbn + off, r.len - off)
        })
    }

    /// The record whose logical range contains `lbn`.
    pub fn record_containing(&self, lbn: u64) -> Option<ExtentRec> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal(ch) => node = &ch[child_for(ch, lbn)].1,
                Node::Leaf(recs) => {
                    let pos = recs.partition_point(|r| r.logical <= lbn);
                    let r = recs.get(pos.checked_sub(1)?)?;
                    return (lbn < r.end()).then_some(*r);
                }
            }
        }
    }

    /// The record starting exactly at `logical`, if any.
    fn record_at(&self, logical: u64) -> Option<ExtentRec> {
        self.record_containing(logical)
            .filter(|r| r.logical == logical)
    }

    /// The highest-logical record.
    pub fn last(&self) -> Option<ExtentRec> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal(ch) => node = &ch.last()?.1,
                Node::Leaf(recs) => return recs.last().copied(),
            }
        }
    }

    /// Grows the record starting at `logical` by `extra` blocks in place
    /// (no key changes, so no rebalancing).
    fn grow(&mut self, logical: u64, extra: u32) {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Internal(ch) => {
                    let pos = child_for(ch, logical);
                    node = &mut ch[pos].1;
                }
                Node::Leaf(recs) => {
                    let pos = recs.partition_point(|r| r.logical < logical);
                    recs[pos].len += extra;
                    self.total_blocks += extra as u64;
                    return;
                }
            }
        }
    }

    fn insert_plain(&mut self, rec: ExtentRec) {
        if let Some(right) = insert_rec(&mut self.root, rec) {
            let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            self.root = Node::Internal(vec![
                (old.min_key(), Box::new(old)),
                (right.min_key(), Box::new(right)),
            ]);
            self.depth += 1;
        }
        self.nextents += 1;
        self.total_blocks += rec.len as u64;
    }

    fn remove_plain(&mut self, logical: u64) -> Option<ExtentRec> {
        let removed = remove_rec(&mut self.root, logical)?;
        while let Node::Internal(ch) = &mut self.root {
            if ch.len() != 1 {
                break;
            }
            self.root = *ch.pop().unwrap().1;
            self.depth -= 1;
        }
        self.nextents -= 1;
        self.total_blocks -= removed.len as u64;
        Some(removed)
    }

    /// Inserts a record, coalescing with logically *and* physically
    /// adjacent neighbors. The range must not overlap any mapped range.
    pub fn insert(&mut self, rec: ExtentRec) {
        debug_assert!(rec.len > 0);
        // Merge into the predecessor when contiguous on both axes.
        if rec.logical > 0 {
            if let Some(pred) = self.record_containing(rec.logical - 1) {
                if pred.end() == rec.logical && pred.pbn + pred.len == rec.pbn {
                    self.grow(pred.logical, rec.len);
                    // The grown record may now also abut its successor.
                    if let Some(succ) = self.record_at(rec.end()) {
                        if rec.pbn + rec.len == succ.pbn {
                            self.remove_plain(succ.logical);
                            self.grow(pred.logical, succ.len);
                        }
                    }
                    return;
                }
            }
        }
        // No predecessor merge: try the successor alone.
        if let Some(succ) = self.record_at(rec.end()) {
            if rec.pbn + rec.len == succ.pbn {
                self.remove_plain(succ.logical);
                self.insert_plain(ExtentRec {
                    logical: rec.logical,
                    pbn: rec.pbn,
                    len: rec.len + succ.len,
                });
                return;
            }
        }
        self.insert_plain(rec);
    }

    /// Removes the record starting exactly at `logical`.
    pub fn remove(&mut self, logical: u64) -> Option<ExtentRec> {
        self.remove_plain(logical)
    }

    /// Drops the mapping beyond the first `keep_blocks` logical blocks,
    /// splitting a straddling record; returns the freed `(pbn, len)` runs.
    pub fn truncate_to(&mut self, keep_blocks: u64) -> Vec<(u32, u32)> {
        let mut freed = Vec::new();
        while let Some(last) = self.last() {
            if last.end() <= keep_blocks {
                break;
            }
            self.remove_plain(last.logical);
            if last.logical < keep_blocks {
                let keep = (keep_blocks - last.logical) as u32;
                self.insert_plain(ExtentRec {
                    logical: last.logical,
                    pbn: last.pbn,
                    len: keep,
                });
                freed.push((last.pbn + keep, last.len - keep));
            } else {
                freed.push((last.pbn, last.len));
            }
        }
        freed
    }

    /// The file's physical run-list from `from_lbn`, up to `max_blocks`
    /// logical blocks, stopping at the first logical discontinuity. This is
    /// what the batched read path hands to the I/O executor in one go.
    pub fn runs(&self, from_lbn: u64, max_blocks: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut lbn = from_lbn;
        let mut left = max_blocks;
        while left > 0 {
            let Some((pbn, contig)) = self.lookup(lbn) else {
                break;
            };
            let n = contig.min(left);
            out.push((pbn, n));
            lbn += n as u64;
            left -= n;
        }
        out
    }

    /// Every record in logical order.
    pub fn records(&self) -> Vec<ExtentRec> {
        fn walk(node: &Node, out: &mut Vec<ExtentRec>) {
            match node {
                Node::Leaf(recs) => out.extend_from_slice(recs),
                Node::Internal(ch) => ch.iter().for_each(|(_, c)| walk(c, out)),
            }
        }
        let mut out = Vec::with_capacity(self.nextents);
        walk(&self.root, &mut out);
        out
    }

    /// Structural audit for tests: ordering, key integrity, fan-out
    /// bounds, and counter consistency.
    pub fn check(&self) -> Vec<String> {
        fn walk(node: &Node, root: bool, depth: u32, errors: &mut Vec<String>) -> u32 {
            match node {
                Node::Leaf(recs) => {
                    if !root && !(NODE_MIN..=NODE_CAP).contains(&recs.len()) {
                        errors.push(format!("leaf fan-out {} out of bounds", recs.len()));
                    }
                    for w in recs.windows(2) {
                        if w[0].end() > w[1].logical {
                            errors.push(format!("overlap: {:?} / {:?}", w[0], w[1]));
                        }
                    }
                    depth
                }
                Node::Internal(ch) => {
                    if ch.len() < 2 && root || !root && !(NODE_MIN..=NODE_CAP).contains(&ch.len()) {
                        errors.push(format!("internal fan-out {} out of bounds", ch.len()));
                    }
                    let mut max_depth = 0;
                    for (k, c) in ch {
                        if *k != c.min_key() {
                            errors.push(format!("stale key {k} != child min {}", c.min_key()));
                        }
                        max_depth = max_depth.max(walk(c, false, depth + 1, errors));
                    }
                    if !ch.windows(2).all(|w| w[0].0 < w[1].0) {
                        errors.push("internal keys not strictly increasing".into());
                    }
                    max_depth
                }
            }
        }
        let mut errors = Vec::new();
        let d = walk(&self.root, true, 1, &mut errors);
        if d != self.depth {
            errors.push(format!("depth counter {} != actual {d}", self.depth));
        }
        let recs = self.records();
        if recs.len() != self.nextents {
            errors.push(format!(
                "nextents {} != record count {}",
                self.nextents,
                recs.len()
            ));
        }
        if recs.iter().map(|r| r.len as u64).sum::<u64>() != self.total_blocks {
            errors.push("total_blocks out of sync".into());
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(logical: u64, pbn: u32, len: u32) -> ExtentRec {
        ExtentRec { logical, pbn, len }
    }

    #[test]
    fn contiguous_growth_stays_one_record() {
        let mut t = ExtentTree::new();
        for i in 0..100u64 {
            t.insert(rec(i * 8, 1000 + i as u32 * 8, 8));
        }
        assert_eq!(t.nextents(), 1);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.total_blocks(), 800);
        assert_eq!(t.lookup(799), Some((1000 + 799, 1)));
        assert!(t.check().is_empty(), "{:?}", t.check());
    }

    #[test]
    fn fragmented_file_grows_a_deep_tree() {
        let mut t = ExtentTree::new();
        // Physically scattered runs never merge: one record each.
        for i in 0..200u64 {
            t.insert(rec(i * 4, (i as u32 * 1000) % 65521, 4));
        }
        assert_eq!(t.nextents(), 200);
        assert!(
            t.depth() >= 2,
            "200 records must split: depth {}",
            t.depth()
        );
        for i in 0..200u64 {
            let (pbn, contig) = t.lookup(i * 4 + 1).unwrap();
            assert_eq!(pbn, (i as u32 * 1000) % 65521 + 1);
            assert_eq!(contig, 3);
        }
        assert!(t.check().is_empty(), "{:?}", t.check());
    }

    #[test]
    fn successor_merge_fills_gaps() {
        let mut t = ExtentTree::new();
        t.insert(rec(10, 110, 5));
        t.insert(rec(0, 100, 5));
        assert_eq!(t.nextents(), 2);
        // [5, 10) at pbn 105 bridges both neighbors into one record.
        t.insert(rec(5, 105, 5));
        assert_eq!(t.nextents(), 1);
        assert_eq!(t.lookup(0), Some((100, 15)));
        assert!(t.check().is_empty(), "{:?}", t.check());
    }

    #[test]
    fn truncate_splits_straddler_and_returns_freed_runs() {
        let mut t = ExtentTree::new();
        t.insert(rec(0, 100, 10));
        t.insert(rec(10, 500, 10));
        let freed = t.truncate_to(4);
        assert_eq!(freed, vec![(500, 10), (104, 6)]);
        assert_eq!(t.total_blocks(), 4);
        assert_eq!(t.lookup(3), Some((103, 1)));
        assert_eq!(t.lookup(4), None);
        assert!(t.check().is_empty(), "{:?}", t.check());
    }

    #[test]
    fn deep_tree_shrinks_back_down() {
        let mut t = ExtentTree::new();
        for i in 0..300u64 {
            t.insert(rec(i * 2, i as u32 * 7919 % 99991, 1));
        }
        assert!(t.depth() >= 3);
        for i in (1..300u64).rev() {
            assert!(t.remove(i * 2).is_some());
            assert!(t.check().is_empty(), "{:?}", t.check());
        }
        assert_eq!(t.depth(), 1);
        assert_eq!(t.nextents(), 1);
    }

    #[test]
    fn runs_walk_stops_at_logical_holes() {
        let mut t = ExtentTree::new();
        t.insert(rec(0, 100, 4));
        t.insert(rec(4, 900, 4)); // Physically discontiguous: second run.
        t.insert(rec(20, 50, 4)); // Logical hole before this one.
        assert_eq!(t.runs(0, 64), vec![(100, 4), (900, 4)]);
        assert_eq!(t.runs(2, 3), vec![(102, 2), (900, 1)]);
        assert_eq!(t.runs(20, 64), vec![(50, 4)]);
    }
}
