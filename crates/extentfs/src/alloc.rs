//! The ext4-style free-space allocator: per-group buddy/bitmap structures.
//!
//! Free space is split into fixed-size block groups. Each group carries a
//! block bitmap (one bit per block, set = allocated) and a buddy index: for
//! every order `o` in `0..=MAX_ORDER`, a bitmap of which naturally aligned
//! `2^o`-block chunks are *entirely free and not covered by a free chunk of
//! the next order up* — the classic buddy representation ext4's mballoc
//! keeps per group. Allocation is goal-directed (try to extend the caller's
//! previous extent in place), then best-fit-by-order (the smallest free
//! chunk order that still satisfies the request, searched circularly from
//! the goal's group); freeing coalesces buddies back up to `MAX_ORDER`, so
//! delete-heavy churn restores large chunks instead of leaving the sieve of
//! holes the old linear-scan bitmap accumulated — that linear rescan on
//! every allocation was the `aging_extents` hot spot.
//!
//! Double frees are *reported, not aborted*: [`BuddyAllocator::free_run`]
//! returns `Err(FsError::Corrupt)` and leaves the maps untouched, so a
//! confused caller can fail the operation while the mount stays usable.

use vfs::{FsError, FsResult};

/// Largest buddy order: chunks of `2^MAX_ORDER` blocks (128 blocks = 1 MB
/// at 8 KB blocks, matching ext4's practical preallocation ceiling).
pub const MAX_ORDER: u32 = 7;

/// Blocks per group (a whole number of max-order chunks).
pub const GROUP_BLOCKS: u32 = 2048;

const ORDERS: usize = (MAX_ORDER + 1) as usize;

/// One block group: bitmap + buddy index + per-order free-chunk counts.
struct Group {
    /// Blocks managed by this group (the last group may be short).
    nblocks: u32,
    /// Block bitmap: bit set = allocated. Indexed by group-relative block.
    bitmap: Vec<u64>,
    /// `buddy[o]` has one bit per aligned `2^o` chunk; set = that chunk is
    /// free as a unit (and not merged into a free order-`o+1` chunk).
    buddy: [Vec<u64>; ORDERS],
    /// Number of set bits in `buddy[o]` (the mballoc `bb_counters`).
    counts: [u32; ORDERS],
    /// Free blocks in the group.
    free: u32,
}

fn word_get(bits: &[u64], i: u32) -> bool {
    bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0
}

fn word_set(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] |= 1u64 << (i % 64);
}

fn word_clear(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] &= !(1u64 << (i % 64));
}

impl Group {
    fn new(nblocks: u32) -> Group {
        let words = GROUP_BLOCKS.div_ceil(64) as usize;
        let mut g = Group {
            nblocks,
            bitmap: vec![0; words],
            buddy: std::array::from_fn(|o| vec![0; (GROUP_BLOCKS >> o).div_ceil(64) as usize]),
            counts: [0; ORDERS],
            free: 0,
        };
        // Blocks past the device end are permanently allocated.
        for b in nblocks..GROUP_BLOCKS {
            word_set(&mut g.bitmap, b);
        }
        if nblocks > 0 {
            g.release(0, nblocks);
            g.free = nblocks;
        }
        g
    }

    fn block_allocated(&self, rel: u32) -> bool {
        word_get(&self.bitmap, rel)
    }

    /// Returns free space `[rel, rel+len)` to the buddy index (bitmap is
    /// managed by the caller), decomposing the run into aligned chunks and
    /// coalescing each with its buddy as far up as it will go.
    fn release(&mut self, mut rel: u32, len: u32) {
        let end = rel + len;
        while rel < end {
            // Largest aligned chunk that starts at `rel` and fits.
            let align = if rel == 0 {
                MAX_ORDER
            } else {
                rel.trailing_zeros().min(MAX_ORDER)
            };
            let mut o = align.min((end - rel).ilog2()).min(MAX_ORDER);
            let mut idx = rel >> o;
            rel += 1 << o;
            // Coalesce with the buddy while it is also free.
            while o < MAX_ORDER {
                let buddy = idx ^ 1;
                if !word_get(&self.buddy[o as usize], buddy) {
                    break;
                }
                word_clear(&mut self.buddy[o as usize], buddy);
                self.counts[o as usize] -= 1;
                idx >>= 1;
                o += 1;
            }
            word_set(&mut self.buddy[o as usize], idx);
            self.counts[o as usize] += 1;
        }
    }

    /// Removes the free chunk of `order` containing group-relative block
    /// `rel` from the buddy index, splitting larger chunks as needed, and
    /// returns the chunk's start. `rel` must lie inside a free chunk.
    fn seize_containing(&mut self, rel: u32) -> (u32, u32) {
        for o in 0..ORDERS {
            let idx = rel >> o;
            if word_get(&self.buddy[o], idx) {
                word_clear(&mut self.buddy[o], idx);
                self.counts[o] -= 1;
                return ((idx << o), o as u32);
            }
        }
        unreachable!("seize_containing: block {rel} is not in any free chunk");
    }

    /// Takes the first free chunk of exactly `order`, preferring the lowest
    /// address (deterministic). Returns its group-relative start.
    fn take_chunk(&mut self, order: u32) -> u32 {
        let o = order as usize;
        debug_assert!(self.counts[o] > 0);
        for (w, &word) in self.buddy[o].iter().enumerate() {
            if word != 0 {
                let idx = w as u32 * 64 + word.trailing_zeros();
                word_clear(&mut self.buddy[o], idx);
                self.counts[o] -= 1;
                return idx << order;
            }
        }
        unreachable!("buddy counts out of sync with bitmap");
    }

    /// Smallest free-chunk order `>= want`, if any.
    fn best_order(&self, want: u32) -> Option<u32> {
        (want..=MAX_ORDER).find(|&o| self.counts[o as usize] > 0)
    }

    /// Largest free-chunk order in the group, if any block is free.
    fn max_order(&self) -> Option<u32> {
        (0..=MAX_ORDER).rev().find(|&o| self.counts[o as usize] > 0)
    }

    /// Marks `[rel, rel+len)` allocated in the block bitmap.
    fn mark_allocated(&mut self, rel: u32, len: u32) {
        for b in rel..rel + len {
            debug_assert!(!word_get(&self.bitmap, b));
            word_set(&mut self.bitmap, b);
        }
        self.free -= len;
    }

    /// Length of the free run starting at `rel`, clipped to `cap`.
    fn free_run_len(&self, rel: u32, cap: u32) -> u32 {
        let mut n = 0;
        while n < cap && rel + n < self.nblocks && !word_get(&self.bitmap, rel + n) {
            n += 1;
        }
        n
    }

    /// Carves the exact free range `[rel, rel+len)` out of the buddy index
    /// (every block must be free) and marks it allocated.
    fn carve(&mut self, rel: u32, len: u32) {
        let end = rel + len;
        let mut p = rel;
        while p < end {
            let (start, o) = self.seize_containing(p);
            let chunk_end = start + (1 << o);
            if start < p {
                self.release(start, p - start);
            }
            if chunk_end > end {
                self.release(end, chunk_end - end);
            }
            p = chunk_end;
        }
        self.mark_allocated(rel, len);
    }
}

/// A contiguous allocation handed out by [`BuddyAllocator::alloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// First block (allocator-relative).
    pub start: u64,
    /// Length in blocks.
    pub len: u32,
    /// Whether the request had to settle for fewer blocks than asked.
    pub short: bool,
}

/// The mount-wide allocator over `nblocks` data blocks.
pub struct BuddyAllocator {
    groups: Vec<Group>,
    nblocks: u64,
    free: u64,
}

impl BuddyAllocator {
    /// An allocator over `nblocks` fully free blocks.
    pub fn new(nblocks: u64) -> BuddyAllocator {
        let ngroups = nblocks.div_ceil(GROUP_BLOCKS as u64) as usize;
        let groups = (0..ngroups)
            .map(|g| {
                let base = g as u64 * GROUP_BLOCKS as u64;
                Group::new((nblocks - base).min(GROUP_BLOCKS as u64) as u32)
            })
            .collect();
        BuddyAllocator {
            groups,
            nblocks,
            free: nblocks,
        }
    }

    /// Total managed blocks.
    pub fn capacity(&self) -> u64 {
        self.nblocks
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.free
    }

    /// Whether `block` is currently allocated.
    pub fn is_allocated(&self, block: u64) -> bool {
        let (g, rel) = self.split(block);
        self.groups[g].block_allocated(rel)
    }

    /// Largest free-chunk order anywhere (None when completely full).
    pub fn max_free_order(&self) -> Option<u32> {
        self.groups.iter().filter_map(|g| g.max_order()).max()
    }

    fn split(&self, block: u64) -> (usize, u32) {
        (
            (block / GROUP_BLOCKS as u64) as usize,
            (block % GROUP_BLOCKS as u64) as u32,
        )
    }

    /// Allocates a contiguous run of up to `want` blocks (at least 1).
    ///
    /// Placement policy, in order:
    /// 1. **Goal extension** — if `goal` names a free block, take the free
    ///    run starting there (up to `want`), so sequential growth stays
    ///    physically contiguous across calls.
    /// 2. **Best fit by order** — starting from the goal's group and
    ///    scanning circularly, take a chunk of the smallest order that
    ///    covers `want`, preferring exact-order groups over oversized ones.
    /// 3. **Settle short** — no chunk covers `want`: take the largest free
    ///    chunk anywhere (the caller counts this as a short extent).
    pub fn alloc(&mut self, want: u32, goal: Option<u64>) -> FsResult<Run> {
        debug_assert!(want >= 1);
        if self.free == 0 {
            return Err(FsError::NoSpace);
        }
        let max_chunk = 1u32 << MAX_ORDER;
        let want = want.max(1).min(max_chunk);
        // 1. Goal extension: stay contiguous with the previous extent.
        if let Some(goal) = goal {
            if goal < self.nblocks {
                let (gi, rel) = self.split(goal);
                let g = &mut self.groups[gi];
                if !g.block_allocated(rel) {
                    let run = g.free_run_len(rel, want.min(GROUP_BLOCKS - rel));
                    if run > 0 {
                        g.carve(rel, run);
                        self.free -= run as u64;
                        return Ok(Run {
                            start: goal,
                            len: run,
                            short: false, // Contiguity beats length here.
                        });
                    }
                }
            }
        }
        // 2. Best fit by order, circular from the goal's group.
        let want_order = want.next_power_of_two().ilog2();
        let start_group = goal
            .map(|g| self.split(g.min(self.nblocks - 1)).0)
            .unwrap_or(0);
        let n = self.groups.len();
        let mut best: Option<(usize, u32)> = None;
        for i in 0..n {
            let gi = (start_group + i) % n;
            if let Some(o) = self.groups[gi].best_order(want_order) {
                if o == want_order {
                    best = Some((gi, o));
                    break; // Exact order: nothing beats it.
                }
                if best.map(|(_, bo)| o < bo).unwrap_or(true) {
                    best = Some((gi, o));
                }
            }
        }
        if let Some((gi, o)) = best {
            let g = &mut self.groups[gi];
            let rel = g.take_chunk(o);
            let chunk = 1u32 << o;
            if chunk > want {
                g.release(rel + want, chunk - want);
            }
            g.mark_allocated(rel, want);
            self.free -= want as u64;
            return Ok(Run {
                start: gi as u64 * GROUP_BLOCKS as u64 + rel as u64,
                len: want,
                short: false,
            });
        }
        // 3. Nothing covers the request: settle for the largest chunk.
        let (gi, o) = self
            .groups
            .iter()
            .enumerate()
            .filter_map(|(gi, g)| g.max_order().map(|o| (gi, o)))
            .max_by_key(|&(gi, o)| (o, std::cmp::Reverse(gi)))
            .ok_or(FsError::NoSpace)?;
        let g = &mut self.groups[gi];
        let rel = g.take_chunk(o);
        let len = 1u32 << o;
        g.mark_allocated(rel, len);
        self.free -= len as u64;
        Ok(Run {
            start: gi as u64 * GROUP_BLOCKS as u64 + rel as u64,
            len,
            short: true,
        })
    }

    /// Frees the run `[start, start+len)`, coalescing buddies.
    ///
    /// A block that is already free makes the whole call fail with
    /// [`FsError::Corrupt`] *before* any state changes — a double free is
    /// reported to the caller, never `panic!`ed over.
    pub fn free_run(&mut self, start: u64, len: u32) -> FsResult<()> {
        if len == 0 {
            return Ok(());
        }
        if start + len as u64 > self.nblocks {
            return Err(FsError::Invalid);
        }
        // Validate first so a double free leaves the maps untouched.
        for b in start..start + len as u64 {
            let (gi, rel) = self.split(b);
            if !self.groups[gi].block_allocated(rel) {
                return Err(FsError::Corrupt);
            }
        }
        let mut b = start;
        let end = start + len as u64;
        while b < end {
            let (gi, rel) = self.split(b);
            let g = &mut self.groups[gi];
            let n = ((end - b) as u32).min(GROUP_BLOCKS - rel);
            for r in rel..rel + n {
                word_clear(&mut g.bitmap, r);
            }
            g.release(rel, n);
            g.free += n;
            b += n as u64;
        }
        self.free += len as u64;
        Ok(())
    }

    /// Internal-consistency audit for tests and `fsck`: per-order counts
    /// match the buddy bitmaps, free totals match the block bitmap, and no
    /// free chunk covers an allocated block.
    pub fn check(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let mut free_total = 0u64;
        for (gi, g) in self.groups.iter().enumerate() {
            let mut covered = 0u32;
            for o in 0..ORDERS {
                let mut count = 0;
                for (w, &word) in g.buddy[o].iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let idx = w as u32 * 64 + word.trailing_zeros();
                        word &= word - 1;
                        count += 1;
                        let start = idx << o;
                        for b in start..start + (1 << o) {
                            if b >= g.nblocks || g.block_allocated(b) {
                                errors.push(format!(
                                    "group {gi}: free chunk order {o} at {start} covers allocated block {b}"
                                ));
                            }
                        }
                        covered += 1 << o;
                    }
                }
                if count != g.counts[o] {
                    errors.push(format!(
                        "group {gi}: order {o} count {} != bitmap population {count}",
                        g.counts[o]
                    ));
                }
            }
            let bitmap_free = (0..g.nblocks).filter(|&b| !g.block_allocated(b)).count() as u32;
            if covered != bitmap_free || g.free != bitmap_free {
                errors.push(format!(
                    "group {gi}: buddy covers {covered}, bitmap says {bitmap_free}, counter {}",
                    g.free
                ));
            }
            free_total += g.free as u64;
        }
        if free_total != self.free {
            errors.push(format!(
                "free counter {} != group total {free_total}",
                self.free
            ));
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_max_order() {
        let a = BuddyAllocator::new(4096);
        assert_eq!(a.free_blocks(), 4096);
        assert_eq!(a.max_free_order(), Some(MAX_ORDER));
        assert!(a.check().is_empty(), "{:?}", a.check());
    }

    #[test]
    fn goal_extension_keeps_growth_contiguous() {
        let mut a = BuddyAllocator::new(4096);
        let first = a.alloc(15, None).unwrap();
        let second = a.alloc(15, Some(first.start + first.len as u64)).unwrap();
        assert_eq!(second.start, first.start + first.len as u64);
        assert!(!second.short);
        assert!(a.check().is_empty(), "{:?}", a.check());
    }

    #[test]
    fn double_free_is_reported_not_aborted() {
        let mut a = BuddyAllocator::new(1024);
        let r = a.alloc(8, None).unwrap();
        a.free_run(r.start, r.len).unwrap();
        let before = a.free_blocks();
        assert_eq!(a.free_run(r.start, r.len), Err(FsError::Corrupt));
        assert_eq!(a.free_blocks(), before, "failed free must not change state");
        assert!(a.check().is_empty(), "{:?}", a.check());
    }

    #[test]
    fn partial_double_free_leaves_state_untouched() {
        let mut a = BuddyAllocator::new(1024);
        let r = a.alloc(8, None).unwrap();
        // Free the tail half, then try to free the whole run: the overlap
        // must be detected before any block of the head is freed.
        a.free_run(r.start + 4, 4).unwrap();
        assert_eq!(a.free_run(r.start, 8), Err(FsError::Corrupt));
        assert_eq!(a.free_blocks(), 1024 - 4);
        a.free_run(r.start, 4).unwrap();
        assert_eq!(a.free_blocks(), 1024);
        assert_eq!(a.max_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn merge_on_free_restores_max_order() {
        let mut a = BuddyAllocator::new(2048);
        let mut runs = Vec::new();
        while let Ok(r) = a.alloc(8, None) {
            runs.push(r);
        }
        assert_eq!(a.free_blocks(), 0);
        for r in runs {
            a.free_run(r.start, r.len).unwrap();
        }
        assert_eq!(a.free_blocks(), 2048);
        assert_eq!(a.max_free_order(), Some(MAX_ORDER));
        assert!(a.check().is_empty(), "{:?}", a.check());
    }

    #[test]
    fn short_allocation_settles_for_largest_chunk() {
        let mut a = BuddyAllocator::new(256);
        // Allocate everything in 4-block runs, then free every other run:
        // the largest free chunk is 4 blocks.
        let mut runs = Vec::new();
        while let Ok(r) = a.alloc(4, None) {
            runs.push(r);
        }
        for r in runs.iter().step_by(2) {
            a.free_run(r.start, r.len).unwrap();
        }
        let r = a.alloc(64, None).unwrap();
        assert!(r.short);
        assert_eq!(r.len, 4);
        assert!(a.check().is_empty(), "{:?}", a.check());
    }

    #[test]
    fn short_last_group_is_bounded() {
        let mut a = BuddyAllocator::new(2048 + 100);
        let mut total = 0u64;
        while let Ok(r) = a.alloc(128, None) {
            total += r.len as u64;
            assert!(r.start + r.len as u64 <= 2148);
        }
        assert_eq!(total, 2148);
        assert!(a.check().is_empty(), "{:?}", a.check());
    }
}
