//! Property tests for the extent tree, the buddy allocator, and the
//! inline-file spill path.
//!
//! Three invariant groups (see DESIGN.md "Extent trees, inline files, and
//! aging"):
//!
//! 1. The B+-tree is an exact map: any insert/remove sequence leaves it
//!    agreeing with a `BTreeMap` model record-for-record and
//!    lookup-for-lookup, with structural invariants (`check()`) intact
//!    through splits, merges, and root collapses.
//! 2. The allocator never hands out a block twice: live runs are disjoint,
//!    the free counter is exact, and freeing everything merges buddies all
//!    the way back to a max-order chunk.
//! 3. Inline files spill losslessly: whatever bytes were in the inode
//!    record are still readable after the file grows into the tree.

use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

use diskmodel::{DiskParams, SharedDevice};
use extentfs::alloc::{BuddyAllocator, MAX_ORDER};
use extentfs::tree::{ExtentRec, ExtentTree, NODE_CAP};
use extentfs::{ExtentFs, ExtentFsParams};
use pagecache::{PageCache, PageCacheParams, PageoutDaemon, PageoutParams};
use proptest::prelude::*;
use simkit::{Cpu, Sim};
use ufs::CpuCosts;
use vfs::{AccessMode, FileSystem, Vnode};

// ---------------------------------------------------------------------------
// 1. Extent tree vs BTreeMap model
// ---------------------------------------------------------------------------

/// Records live in fixed logical "slots" so generated inserts can never
/// overlap: slot `i` covers `[i * SLOT_SPAN, i * SLOT_SPAN + len)` with
/// `len <= SLOT_SPAN`. Physical addresses are spread so no two slots are
/// ever physically adjacent — insert-time coalescing stays out of the
/// model's way (it gets its own test below).
const SLOT_SPAN: u64 = 8;
const NSLOTS: u64 = 96; // > NODE_CAP^2: full sequences force depth 3.

#[derive(Clone, Debug)]
enum TreeOp {
    Insert { slot: u64, len: u32 },
    Remove { slot: u64 },
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    // 3:2 insert:remove mix (the vendored prop_oneof! has no weights).
    (0..5u8, 0..NSLOTS, 1..SLOT_SPAN as u32 + 1).prop_map(|(kind, slot, len)| {
        if kind < 3 {
            TreeOp::Insert { slot, len }
        } else {
            TreeOp::Remove { slot }
        }
    })
}

fn slot_rec(slot: u64, len: u32) -> ExtentRec {
    ExtentRec {
        logical: slot * SLOT_SPAN,
        // Distinct non-adjacent physical homes per slot.
        pbn: slot as u32 * 1000 + 1,
        len,
    }
}

/// A deterministic Fisher–Yates permutation of `0..n` (the vendored
/// proptest has no shuffle strategy).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, next() as usize % (i + 1));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Arbitrary insert/remove sequences: the tree agrees with a BTreeMap
    /// keyed by logical start, and `check()` stays clean through every
    /// split, merge, and root collapse.
    #[test]
    fn tree_matches_btreemap_model(
        ops in proptest::collection::vec(tree_op(), 1..200),
    ) {
        let mut tree = ExtentTree::new();
        let mut model: BTreeMap<u64, ExtentRec> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert { slot, len } => {
                    let rec = slot_rec(slot, len);
                    // The tree forbids overlapping inserts; the model
                    // decides whether the slot is free.
                    model.entry(rec.logical).or_insert_with(|| {
                        tree.insert(rec);
                        rec
                    });
                }
                TreeOp::Remove { slot } => {
                    let logical = slot * SLOT_SPAN;
                    prop_assert_eq!(tree.remove(logical), model.remove(&logical));
                }
            }
            prop_assert!(tree.check().is_empty(), "{:?}", tree.check());
        }

        prop_assert_eq!(tree.nextents(), model.len());
        prop_assert_eq!(
            tree.total_blocks(),
            model.values().map(|r| r.len as u64).sum::<u64>()
        );
        prop_assert_eq!(tree.records(), model.values().copied().collect::<Vec<_>>());

        // Lookups agree block-for-block, including the holes.
        for slot in 0..NSLOTS {
            let base = slot * SLOT_SPAN;
            for off in 0..SLOT_SPAN {
                let want = model.get(&base).and_then(|r| {
                    (off < r.len as u64)
                        .then(|| (r.pbn + off as u32, r.len - off as u32))
                });
                prop_assert_eq!(tree.lookup(base + off), want);
            }
        }
    }

    /// A file written as adjacent fragments coalesces to one record no
    /// matter the arrival order: insert merges with both neighbors.
    #[test]
    fn adjacent_inserts_coalesce_to_one_record(
        lens in proptest::collection::vec(1..16u32, 2..24),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // Fragment i starts where fragment i-1 ends, logically and
        // physically.
        let mut starts = Vec::with_capacity(lens.len());
        let mut at = 0u64;
        for &len in &lens {
            starts.push(at);
            at += len as u64;
        }
        let order = shuffled(lens.len(), shuffle_seed);
        let mut tree = ExtentTree::new();
        for &i in &order {
            tree.insert(ExtentRec {
                logical: starts[i],
                pbn: 7 + starts[i] as u32,
                len: lens[i],
            });
            prop_assert!(tree.check().is_empty(), "{:?}", tree.check());
        }
        prop_assert_eq!(tree.nextents(), 1);
        prop_assert_eq!(
            tree.records(),
            vec![ExtentRec { logical: 0, pbn: 7, len: at as u32 }]
        );
    }

    /// Bulk insert then drain: depth must actually grow past a root leaf
    /// (NSLOTS > NODE_CAP²) and collapse back to 1 as records drain.
    #[test]
    fn splits_then_merges_collapse_the_root(keep in 0..NSLOTS) {
        let mut tree = ExtentTree::new();
        for slot in 0..NSLOTS {
            tree.insert(slot_rec(slot, 1));
        }
        prop_assert!(tree.depth() >= 3, "depth {} at {} records", tree.depth(), NSLOTS);
        prop_assert!(tree.nextents() > NODE_CAP * NODE_CAP);
        for slot in 0..NSLOTS {
            if slot != keep {
                prop_assert!(tree.remove(slot * SLOT_SPAN).is_some());
                prop_assert!(tree.check().is_empty(), "{:?}", tree.check());
            }
        }
        prop_assert_eq!(tree.depth(), 1);
        prop_assert_eq!(tree.records(), vec![slot_rec(keep, 1)]);
    }
}

// ---------------------------------------------------------------------------
// 2. Buddy allocator: disjoint runs, exact accounting, merge-on-free
// ---------------------------------------------------------------------------

const ALLOC_BLOCKS: u64 = 4096; // Two full groups.

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc { want: u32, goal: Option<u64> },
    Free { sel: usize },
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    // 3:2 alloc:free mix; goal is present half the time.
    (0..5u8, 1..129u32, 0..2u8, 0..ALLOC_BLOCKS, 0usize..64).prop_map(
        |(kind, want, has_goal, goal, sel)| {
            if kind < 3 {
                AllocOp::Alloc {
                    want,
                    goal: (has_goal == 1).then_some(goal),
                }
            } else {
                AllocOp::Free { sel }
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Arbitrary alloc/free interleavings: no block is ever handed out
    /// twice, the free counter matches a block-set model exactly, and once
    /// everything is freed the buddies merge back to a max-order chunk.
    #[test]
    fn allocator_runs_stay_disjoint_and_merge_on_free(
        ops in proptest::collection::vec(alloc_op(), 1..120),
    ) {
        let mut alloc = BuddyAllocator::new(ALLOC_BLOCKS);
        let mut live = Vec::new();
        let mut taken: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                AllocOp::Alloc { want, goal } => {
                    let Ok(run) = alloc.alloc(want, goal) else {
                        // NoSpace is legal under pressure; never with a
                        // whole free group outstanding.
                        prop_assert!(
                            alloc.free_blocks() < ALLOC_BLOCKS / 2,
                            "alloc({want}) failed with {} free",
                            alloc.free_blocks()
                        );
                        continue;
                    };
                    prop_assert!(run.len >= 1 && run.len <= want);
                    // `short` marks the settle-for-largest path; goal
                    // extension may also under-deliver but is not short
                    // (contiguity beats length).
                    prop_assert!(!run.short || run.len < want);
                    prop_assert!(run.start + run.len as u64 <= ALLOC_BLOCKS);
                    for b in run.start..run.start + run.len as u64 {
                        prop_assert!(taken.insert(b), "block {b} double-allocated");
                        prop_assert!(alloc.is_allocated(b));
                    }
                    live.push(run);
                }
                AllocOp::Free { sel } => {
                    if live.is_empty() {
                        continue;
                    }
                    let run = live.swap_remove(sel % live.len());
                    alloc.free_run(run.start, run.len).unwrap();
                    for b in run.start..run.start + run.len as u64 {
                        prop_assert!(taken.remove(&b));
                        prop_assert!(!alloc.is_allocated(b));
                    }
                }
            }
            prop_assert_eq!(alloc.free_blocks(), ALLOC_BLOCKS - taken.len() as u64);
            prop_assert!(alloc.check().is_empty(), "{:?}", alloc.check());
        }

        // Merge-on-free: drain the survivors and the buddy chains must
        // reassemble a max-order chunk (and satisfy a max-order alloc).
        for run in live.drain(..) {
            alloc.free_run(run.start, run.len).unwrap();
        }
        prop_assert_eq!(alloc.free_blocks(), ALLOC_BLOCKS);
        prop_assert_eq!(alloc.max_free_order(), Some(MAX_ORDER));
        let max = alloc.alloc(1 << MAX_ORDER, None).unwrap();
        prop_assert_eq!(max.len, 1 << MAX_ORDER);
        prop_assert!(!max.short);
    }
}

// ---------------------------------------------------------------------------
// 3. Inline files spill into the tree without losing a byte
// ---------------------------------------------------------------------------

fn spill_world(sim: &Sim) -> ExtentFs {
    let cpu = Cpu::new(sim);
    let disk: SharedDevice = Rc::new(diskmodel::Disk::new(sim, DiskParams::small_test()));
    let cache = PageCache::new(sim, PageCacheParams::small_test());
    let (_daemon, rx) = PageoutDaemon::spawn(sim, &cache, None, PageoutParams::small_test());
    std::mem::forget(rx);
    let mut params = ExtentFsParams::with_extent_blocks(8);
    params.costs = CpuCosts::free();
    ExtentFs::format(sim, &cpu, &cache, &disk, 64, params).unwrap()
}

proptest! {
    // Each case spins a full simulated world; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Write a head that fits inline, then a tail that crosses the
    /// threshold: the head bytes must survive the inode→tree spill, and
    /// the gap (if the tail lands past EOF) must read back as zeros.
    /// (Panics inside the simulation surface as proptest failures.)
    #[test]
    fn inline_spill_preserves_contents(
        head_len in 1usize..513,
        tail_off in 0usize..513,
        tail_len in 1usize..20_000,
        seed in 0u8..255,
    ) {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let fs = spill_world(&s);
            let f = fs.create("grow").await.unwrap();
            let head: Vec<u8> = (0..head_len).map(|i| (i as u8) ^ seed).collect();
            f.write(0, &head, AccessMode::Copy).await.unwrap();
            assert!(f.extents().await.unwrap().is_empty(), "head should be inline");
            assert_eq!(fs.stats().inline_files, 1);

            let tail: Vec<u8> =
                (0..tail_len).map(|i| (i as u8).wrapping_add(seed) | 1).collect();
            f.write(tail_off as u64, &tail, AccessMode::Copy).await.unwrap();
            f.fsync().await.unwrap();

            let total = (tail_off + tail_len).max(head_len);
            if total > 512 {
                assert!(
                    !f.extents().await.unwrap().is_empty(),
                    "file should have spilled into the tree"
                );
                assert_eq!(fs.stats().inline_files, 0, "no inline files after spill");
            }
            let back = f.read(0, total, AccessMode::Copy).await.unwrap();
            let mut want = vec![0u8; total];
            want[..head_len].copy_from_slice(&head);
            want[tail_off..tail_off + tail_len].copy_from_slice(&tail);
            assert_eq!(back, want, "contents differ after spill");
            assert!(fs.check().is_empty(), "{:?}", fs.check());
        });
    }
}
