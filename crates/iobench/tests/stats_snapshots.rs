//! Experiment-level assertions on the metrics-registry snapshots exported
//! by `iobench --stats-json` (schema `iobench-stats/v8`).
//!
//! These pin the paper's mechanisms to observable counters: clustering
//! shrinks the number of disk requests, free-behind takes page freeing away
//! from the pageout daemon, and the drive's track buffer is exercised by
//! sequential reads.

use iobench::experiments::{fig10_cell, free_behind_run, RunScale, StatsSink};
use iobench::runner::Runner;
use iobench::{Config, IoKind};

/// Extracts a counter value from a registry JSON snapshot. The registry
/// serializes counters as `"name":value` with sorted, unique keys, so a
/// plain substring search is unambiguous.
fn counter(json: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let i = json
        .find(&pat)
        .unwrap_or_else(|| panic!("counter {name} missing from snapshot"));
    json[i + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("counter {name} is not a number"))
}

/// One Figure 10 cell's registry snapshot (covers the preparation and the
/// measured phase — the whole simulated run).
fn cell_snapshot(config: Config, kind: IoKind) -> String {
    let sink = StatsSink::new();
    fig10_cell(config, kind, RunScale::quick(), Some(&sink));
    sink.runs().remove(0).1
}

/// Two identical runs must serialize to byte-identical documents: the
/// whole stack is virtual-time deterministic and the registry iterates in
/// sorted order.
#[test]
fn identical_runs_export_identical_json() {
    let a = || {
        let sink = StatsSink::new();
        fig10_cell(Config::A, IoKind::SeqRead, RunScale::quick(), Some(&sink));
        sink.to_json("fig10")
    };
    let first = a();
    let second = a();
    assert!(!first.is_empty());
    assert_eq!(first, second, "snapshot JSON must be deterministic");
}

/// The paper's core claim, in request counts: clustered config A moves the
/// same file in far fewer (larger) disk reads than block-at-a-time
/// config D on the sequential-read workload.
#[test]
fn clustering_issues_fewer_disk_reads_on_fsr() {
    let a = cell_snapshot(Config::A, IoKind::SeqRead);
    let d = cell_snapshot(Config::D, IoKind::SeqRead);
    let (ra, rd) = (counter(&a, "disk.reads"), counter(&d, "disk.reads"));
    assert!(
        ra < rd,
        "config A should need fewer disk reads than D: {ra} vs {rd}"
    );
    // And the clusters it reads should be more than one block on average.
    let blocks_a = counter(&a, "ufs.blocks_read");
    assert!(
        blocks_a > ra,
        "A's reads should carry multiple blocks: {blocks_a} blocks in {ra} reads"
    );
}

/// Sequential reads hit the drive's track buffer: after the first sector
/// of a track is read, the rest of the track is served from the buffer.
#[test]
fn sequential_reads_hit_the_track_buffer() {
    let d = cell_snapshot(Config::D, IoKind::SeqRead);
    let hits = counter(&d, "disk.trackbuf_hits");
    assert!(
        hits > 0,
        "block-at-a-time sequential read never hit the track buffer"
    );
}

/// "The pageout daemon no longer wakes up to free pages when the system is
/// heavily I/O bound, since the I/O bound processes are doing it
/// themselves": with free-behind on, the reader frees more pages than the
/// daemon does.
#[test]
fn free_behind_frees_more_pages_than_the_daemon() {
    let sink = StatsSink::new();
    free_behind_run(RunScale::quick(), &Runner::serial(Some(&sink)));
    let runs = sink.runs();
    let (_, on) = runs
        .iter()
        .find(|(id, _)| id == "free-behind/on")
        .expect("free-behind/on run captured");
    let freed_by_reader = counter(on, "ufs.free_behind_pages");
    let freed_by_daemon = counter(on, "pageout.freed");
    assert!(
        freed_by_reader > freed_by_daemon,
        "free-behind ({freed_by_reader}) should out-free the daemon ({freed_by_daemon})"
    );
}
