//! Invariants of the host-side profiler (`iobench --perf`) and the
//! virtual-time telemetry sampler (`iobench --timeline`).
//!
//! The profiler is only trustworthy if it is a pure observer: enabling it
//! must not move a byte of any virtual-time output surface (tables,
//! `--stats-json`, `--trace`, `--timeline`), at any `--jobs` count. And
//! the profile itself must hold up structurally — every phase closes,
//! per-worker phase time fits inside the worker's lifetime, and the named
//! top-level phases attribute (nearly) all measured wall-clock time.

use std::sync::Mutex;

use iobench::experiments::{fig10_run, fig10_table, fig11_table, RunScale, StatsSink};
use iobench::perfout::{is_top_phase, HostProfile};
use iobench::runner::Runner;
use iobench::traceout;
use simkit::perfmon;

/// perfmon state (the enabled flag, the record buffers) is process-global;
/// tests that enable and drain it must not interleave.
static PERFMON: Mutex<()> = Mutex::new(());

/// A scale small enough to run the full 20-cell Figure 10 matrix in a
/// debug-build test (mirrors `jobs_determinism.rs`).
fn tiny() -> RunScale {
    RunScale {
        file_bytes: 1 << 20,
        random_ops: 32,
        cpu_file_bytes: 1 << 20,
    }
}

/// Every output surface of a sampled + traced fig10 run:
/// `(fig10 table, fig11 table, stats JSON, trace JSON, timeline JSON)`.
fn fig10_outputs(jobs: usize) -> (String, String, String, String, String) {
    let sink = StatsSink::with_capture(true, Some(simkit::SimDuration::from_millis(50)));
    let runner = Runner::new(jobs, Some(&sink));
    let data = fig10_run(tiny(), &runner);
    let t10 = fig10_table(&data);
    let t11 = fig11_table(&data);
    let stats = sink.to_json("fig10");
    let timeline = sink.timeline_json("fig10");
    let trace = traceout::chrome_trace_json_with_counters(&sink.traces(), &sink.timelines());
    (t10, t11, stats, trace, timeline)
}

#[test]
fn profiler_is_a_pure_observer_and_attributes_wall_clock() {
    let _serialize = PERFMON.lock().unwrap();
    // Baseline: profiler off.
    let base = fig10_outputs(4);

    perfmon::set_enabled(true);
    let _ = perfmon::take_records(); // drop any leftovers from other code
    let serial = fig10_outputs(1);
    perfmon::flush_thread();
    let (serial_records, serial_dropped) = perfmon::take_records();
    let par = fig10_outputs(4);
    perfmon::flush_thread();
    let (par_records, par_dropped) = perfmon::take_records();
    perfmon::set_enabled(false);

    // Observer contract: byte-identical outputs with profiling on vs off
    // and across jobs counts — tables, stats, trace, and timeline alike.
    assert_eq!(base, par, "profiling must not perturb any output surface");
    assert_eq!(serial, par, "outputs must not depend on --jobs");
    // Guard against the vacuous pass: sampled series actually present.
    assert!(par.4.contains("\"schema\":\"iobench-timeline/v1\""));
    assert!(
        par.4.matches("\"id\":\"fig10/").count() == 20,
        "{}",
        par.4.len()
    );
    assert!(
        par.3.contains("\"ph\":\"C\""),
        "counter tracks reach the trace"
    );

    // Every recorded phase closed sanely (a PhaseGuard that never dropped
    // would simply be missing; what's here must be well-formed).
    for r in par_records.iter().chain(&serial_records) {
        assert!(r.start_ns <= r.end_ns, "phase {} runs backwards", r.name);
    }

    // Parallel profile structure: 4 workers, complete record set, the
    // top-level phases covering (nearly) all measured wall-clock time.
    let p = HostProfile::build(&par_records, par_dropped);
    assert_eq!(p.dropped, 0, "tiny runs must not overflow thread buffers");
    assert_eq!(p.workers.len(), 4);
    for w in &p.workers {
        assert!(
            w.busy_ns + w.pickup_ns <= w.lifetime_ns,
            "worker {} phase time {} + {} exceeds lifetime {}",
            w.worker,
            w.busy_ns,
            w.pickup_ns,
            w.lifetime_ns
        );
        assert!((0.0..=1.0).contains(&w.utilization));
    }
    assert!(
        p.coverage >= 0.9,
        "top-level phases must attribute >=90% of wall-clock, got {}",
        p.coverage
    );
    // One setup/drive/capture triple per plan, one lifetime per worker.
    assert_eq!(p.phases["run.setup"].count, 20);
    assert_eq!(p.phases["run.drive"].count, 20);
    assert_eq!(p.phases["run.capture"].count, 20);
    assert_eq!(p.phases["runner.pickup"].count, 20);
    assert_eq!(p.phases["worker.lifetime"].count, 4);
    assert_eq!(p.phases["runner.fanout_wait"].count, 1);
    assert_eq!(p.phases["runner.emit"].count, 1);
    // Every run id surfaces with its drive time.
    assert_eq!(p.runs.len(), 20);
    assert!(p.runs.iter().all(|(id, _)| id.starts_with("fig10/")));
    // The report serializes with the advertised schema.
    let json = p.to_json("fig10", 4);
    assert!(json.contains("\"schema\":\"iobench-perf/v1\""));

    // Serial profile shares the same shape: the loop reports as worker 0.
    let ps = HostProfile::build(&serial_records, serial_dropped);
    assert_eq!(ps.workers.len(), 1);
    assert_eq!(ps.workers[0].worker, 0);
    assert!(ps.coverage >= 0.9, "serial coverage {}", ps.coverage);

    // The coverage numerator is exactly the documented top-phase set.
    for name in ["runner.pickup", "run.setup", "run.drive", "run.capture"] {
        assert!(is_top_phase(name));
    }
    for name in [
        "worker.lifetime",
        "world.build",
        "runner.emit",
        "lock.queue",
    ] {
        assert!(!is_top_phase(name));
    }
}

#[test]
fn disabled_profiler_records_nothing_during_runs() {
    let _serialize = PERFMON.lock().unwrap();
    assert!(!perfmon::enabled());
    let _ = perfmon::take_records();
    let sink = StatsSink::new();
    let runner = Runner::new(2, Some(&sink));
    let plans = (0..4)
        .map(|i| {
            iobench::RunPlan::new(format!("test/{i}"), move |sim: &simkit::Sim| {
                let c = sim.stats().counter("t.noop");
                sim.run_until(async move { c.inc() });
            })
        })
        .collect();
    runner.run(plans);
    perfmon::flush_thread();
    let (records, dropped) = perfmon::take_records();
    assert!(records.is_empty(), "disabled profiler recorded {records:?}");
    assert_eq!(dropped, 0);
    assert_eq!(sink.len(), 4);
}
