//! Invariants of the span traces exported by `iobench --trace`.
//!
//! A trace is only trustworthy if its structure holds up: every span must
//! close, children must lie within their parents, and the trace must agree
//! with the independently-maintained metrics registry (per-stream disk
//! busy time). Tracing must also be an observer — turning it on must not
//! move a single counter.

use std::collections::BTreeMap;

use iobench::experiments::{fig10_cell, RunScale, StatsSink};
use iobench::traceout::chrome_trace_json;
use iobench::{Config, IoKind};
use simkit::Span;

/// One traced Figure 10 cell: `(registry JSON, spans)`.
fn traced_cell(config: Config, kind: IoKind) -> (String, Vec<Span>) {
    let sink = StatsSink::with_tracing();
    fig10_cell(config, kind, RunScale::quick(), Some(&sink));
    let stats = sink.runs().remove(0).1;
    let spans = sink.traces().remove(0).1;
    (stats, spans)
}

fn counter(json: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let i = json
        .find(&pat)
        .unwrap_or_else(|| panic!("counter {name} missing from snapshot"));
    json[i + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("counter {name} is not a number"))
}

#[test]
fn every_span_closes_and_children_nest() {
    let (_stats, spans) = traced_cell(Config::A, IoKind::SeqWrite);
    assert!(!spans.is_empty(), "a traced run records spans");
    for s in &spans {
        let end = s
            .end
            .unwrap_or_else(|| panic!("span {} ({:?}) never closed", s.name, s.id));
        assert!(s.start <= end, "span {} ends before it starts", s.name);
        if !s.parent.is_none() {
            let p = &spans[s.parent.as_u64() as usize - 1];
            let pend = p.end.expect("parent closed");
            assert!(
                p.start <= s.start && end <= pend,
                "child {} [{}, {}] escapes parent {} [{}, {}]",
                s.name,
                s.start.as_nanos(),
                end.as_nanos(),
                p.name,
                p.start.as_nanos(),
                pend.as_nanos(),
            );
        }
    }
}

/// The trace and the metrics registry are two independent observers of the
/// same disk: per stream, the `disk.service` span durations must sum to
/// exactly the registry's `disk.busy_ns{stream=N}` counter.
#[test]
fn disk_service_spans_sum_to_stream_busy_time() {
    let (stats, spans) = traced_cell(Config::A, IoKind::SeqRead);
    let mut by_stream: BTreeMap<u32, u64> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.name == "disk.service") {
        *by_stream.entry(s.stream).or_default() +=
            s.duration().expect("service span closed").as_nanos();
    }
    assert!(!by_stream.is_empty(), "run serviced disk requests");
    for (stream, ns) in by_stream {
        let busy = counter(&stats, &format!("disk.busy_ns{{stream={stream}}}"));
        assert_eq!(
            ns, busy,
            "stream {stream}: service spans sum to {ns} but registry says {busy}"
        );
    }
}

/// `--trace` output is a pure function of the (deterministic) simulation:
/// two identical runs must serialize byte-identically.
#[test]
fn identical_runs_export_identical_traces() {
    let run = || {
        let sink = StatsSink::with_tracing();
        fig10_cell(Config::B, IoKind::SeqRead, RunScale::quick(), Some(&sink));
        chrome_trace_json(&sink.traces())
    };
    let first = run();
    assert!(first.contains("\"ph\":\"X\""));
    assert_eq!(first, run(), "trace JSON must be deterministic");
}

/// Tracing is an observer: enabling it must not change a single metric.
/// (Spans live outside the registry; the simulation's virtual-time course
/// is identical either way.)
#[test]
fn enabling_the_tracer_does_not_move_the_stats() {
    let stats = |tracing: bool| {
        let sink = if tracing {
            StatsSink::with_tracing()
        } else {
            StatsSink::new()
        };
        fig10_cell(
            Config::B,
            IoKind::RandUpdate,
            RunScale::quick(),
            Some(&sink),
        );
        sink.runs().remove(0).1
    };
    assert_eq!(stats(false), stats(true), "tracer perturbed the metrics");
}
