//! Acceptance for `iobench faults`: the built-in matrix is byte-identical
//! at any jobs count, survives mid-run spindle death on RAID-1/5 with zero
//! integrity errors, completes its online rebuild, and exercises the
//! bounded-retry path on RAID-0.

use diskmodel::FaultPlan;
use iobench::faults::{faults_data, faults_run};
use iobench::runner::Runner;
use volmgr::VolumeSpec;

#[test]
fn default_matrix_is_clean_and_jobs_invariant() {
    let serial = faults_run(None, None, true, &Runner::new(1, None));
    let parallel = faults_run(None, None, true, &Runner::new(4, None));
    assert_eq!(
        serial, parallel,
        "output must be byte-identical at any --jobs"
    );

    let cells = faults_data(None, None, true, &Runner::new(4, None));
    assert_eq!(cells.len(), 6, "3 arrays x 2 file systems");
    for c in &cells {
        assert_eq!(c.mismatches, 0, "{}: integrity errors under faults", c.id);
        assert!(c.injected > 0, "{}: scenario injected no faults", c.id);
        assert!(
            !c.integrity.contains("DIRTY") && !c.integrity.contains("problem"),
            "{}: {}",
            c.id,
            c.integrity
        );
        assert!(
            c.phases.iter().any(|p| p.label == "healthy"),
            "{}: no healthy phase",
            c.id
        );
    }
    // Redundant arrays served degraded reads and completed the rebuild.
    for c in cells.iter().filter(|c| !c.volume.starts_with("raid0")) {
        assert!(c.degraded_reads > 0, "{}: never read degraded", c.id);
        assert!(c.rebuild_rows > 0, "{}: rebuild never ran", c.id);
        for want in ["degraded", "rebuilt"] {
            assert!(
                c.phases.iter().any(|p| p.label == want),
                "{}: missing {want} phase ({:?})",
                c.id,
                c.phases.iter().map(|p| p.label).collect::<Vec<_>>()
            );
        }
    }
    // The stripe (no redundancy) healed through bounded retries instead.
    for c in cells.iter().filter(|c| c.volume.starts_with("raid0")) {
        assert!(c.io_retries > 0, "{}: bounded retry never exercised", c.id);
        assert!(
            c.phases.iter().any(|p| p.label == "faulted"),
            "{}: missing faulted phase",
            c.id
        );
    }
}

#[test]
fn custom_plan_targets_one_array() {
    // A user plan: transient errors on spindle 0, spindle 1 dies at 2s.
    let plan = FaultPlan::parse("seed=9,transient=0:100+64x2,die=1@2s").unwrap();
    let spec = VolumeSpec::parse("raid5:4:16k").unwrap();
    let cells = faults_data(Some(&plan), Some(&spec), true, &Runner::new(2, None));
    assert_eq!(cells.len(), 2, "one array x 2 file systems");
    for c in &cells {
        assert_eq!(c.volume, "raid5:4:16k");
        assert_eq!(c.mismatches, 0, "{}: parity must absorb the death", c.id);
        assert!(c.rebuild_rows > 0, "{}: dead member not rebuilt", c.id);
    }
}
