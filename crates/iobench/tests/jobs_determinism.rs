//! The parallel harness contract: `--jobs N` changes only wall-clock
//! time. Every simulated run is a pure function of virtual time and the
//! runner re-emits outcomes in plan order, so the rendered tables, the
//! `--stats-json` document, and the Chrome-trace export must be
//! byte-identical whatever the jobs count.

use iobench::experiments::{fig10_run, fig10_table, fig11_table, RunScale, StatsSink};
use iobench::runner::Runner;
use iobench::traceout;

/// A scale small enough to run the full 20-cell Figure 10 matrix in a
/// debug-build test.
fn tiny() -> RunScale {
    RunScale {
        file_bytes: 1 << 20,
        random_ops: 32,
        cpu_file_bytes: 1 << 20,
    }
}

/// Renders fig10/fig11 with a tracing sink at the given jobs count and
/// returns every output surface the CLI can emit.
fn fig10_outputs(jobs: usize) -> (String, String, String, String) {
    let sink = StatsSink::with_tracing();
    let runner = Runner::new(jobs, Some(&sink));
    let data = fig10_run(tiny(), &runner);
    let t10 = fig10_table(&data);
    let t11 = fig11_table(&data);
    let stats = sink.to_json("fig10");
    let trace = traceout::chrome_trace_json(&sink.into_traces());
    (t10, t11, stats, trace)
}

#[test]
fn fig10_is_byte_identical_across_jobs_counts() {
    let (t10_serial, t11_serial, stats_serial, trace_serial) = fig10_outputs(1);
    let (t10_par, t11_par, stats_par, trace_par) = fig10_outputs(4);
    assert_eq!(
        t10_serial, t10_par,
        "Figure 10 table must not depend on --jobs"
    );
    assert_eq!(
        t11_serial, t11_par,
        "Figure 11 table must not depend on --jobs"
    );
    assert_eq!(
        stats_serial, stats_par,
        "--stats-json document must be byte-identical across --jobs"
    );
    assert_eq!(
        trace_serial, trace_par,
        "--trace export must be byte-identical across --jobs"
    );
    // Guard against the vacuous pass: all 20 runs captured, spans present.
    assert_eq!(stats_serial.matches("\"id\":\"fig10/").count(), 20);
    assert!(trace_serial.len() > 1000, "trace export should carry spans");
}
