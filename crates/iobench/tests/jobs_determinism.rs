//! The parallel harness contract: `--jobs N` changes only wall-clock
//! time. Every simulated run is a pure function of virtual time and the
//! runner re-emits outcomes in plan order, so the rendered tables, the
//! `--stats-json` document, and the Chrome-trace export must be
//! byte-identical whatever the jobs count.

use iobench::experiments::{fig10_run, fig10_table, fig11_table, RunScale, StatsSink};
use iobench::runner::Runner;
use iobench::traceout;
use iobench::volume::{volume_data, volume_ext_table, volume_table, VolumeSweep};
use volmgr::VolumeSpec;

/// A scale small enough to run the full 20-cell Figure 10 matrix in a
/// debug-build test.
fn tiny() -> RunScale {
    RunScale {
        file_bytes: 1 << 20,
        random_ops: 32,
        cpu_file_bytes: 1 << 20,
    }
}

/// Renders fig10/fig11 with a tracing sink at the given jobs count and
/// returns every output surface the CLI can emit.
fn fig10_outputs(jobs: usize) -> (String, String, String, String) {
    let sink = StatsSink::with_tracing();
    let runner = Runner::new(jobs, Some(&sink));
    let data = fig10_run(tiny(), &runner);
    let t10 = fig10_table(&data);
    let t11 = fig11_table(&data);
    let stats = sink.to_json("fig10");
    let trace = traceout::chrome_trace_json(&sink.into_traces());
    (t10, t11, stats, trace)
}

#[test]
fn fig10_is_byte_identical_across_jobs_counts() {
    let (t10_serial, t11_serial, stats_serial, trace_serial) = fig10_outputs(1);
    let (t10_par, t11_par, stats_par, trace_par) = fig10_outputs(4);
    assert_eq!(
        t10_serial, t10_par,
        "Figure 10 table must not depend on --jobs"
    );
    assert_eq!(
        t11_serial, t11_par,
        "Figure 11 table must not depend on --jobs"
    );
    assert_eq!(
        stats_serial, stats_par,
        "--stats-json document must be byte-identical across --jobs"
    );
    assert_eq!(
        trace_serial, trace_par,
        "--trace export must be byte-identical across --jobs"
    );
    // Guard against the vacuous pass: all 20 runs captured, spans present.
    assert_eq!(stats_serial.matches("\"id\":\"fig10/").count(), 20);
    assert!(trace_serial.len() > 1000, "trace export should carry spans");
}

/// A reduced volume sweep covering all three RAID dispatch paths — one
/// spec per level, one cluster size, one extentfs comparison — small
/// enough for a debug-build test.
fn tiny_sweep() -> VolumeSweep {
    let spec = |s: &str| VolumeSpec::parse(s).unwrap();
    VolumeSweep {
        specs: vec![spec("raid0:2:16k"), spec("raid1:2"), spec("raid5:3:16k")],
        clusters_kb: vec![56],
        ext_specs: vec![spec("raid5:3:16k")],
    }
}

/// Renders the volume experiment with a tracing sink at the given jobs
/// count and returns every output surface the CLI can emit.
fn volume_outputs(jobs: usize) -> (String, String, String, String) {
    let sink = StatsSink::with_tracing();
    let runner = Runner::new(jobs, Some(&sink));
    let sweep = tiny_sweep();
    let data = volume_data(&sweep, tiny(), &runner);
    let t = volume_table(&sweep, &data);
    let tx = volume_ext_table(&sweep, &data);
    let stats = sink.to_json("volume");
    let trace = traceout::chrome_trace_json(&sink.into_traces());
    (t, tx, stats, trace)
}

#[test]
fn volume_is_byte_identical_across_jobs_counts() {
    let (t_serial, tx_serial, stats_serial, trace_serial) = volume_outputs(1);
    let (t_par, tx_par, stats_par, trace_par) = volume_outputs(4);
    assert_eq!(t_serial, t_par, "volume table must not depend on --jobs");
    assert_eq!(
        tx_serial, tx_par,
        "UFS-vs-extentfs table must not depend on --jobs"
    );
    assert_eq!(
        stats_serial, stats_par,
        "--stats-json document must be byte-identical across --jobs"
    );
    assert_eq!(
        trace_serial, trace_par,
        "--trace export must be byte-identical across --jobs"
    );
    // 3 specs x 1 cluster x 2 kinds + 1 ext spec x 2 kinds = 8 runs.
    assert_eq!(stats_serial.matches("\"id\":\"volume/").count(), 8);
    // The array's fan-out is visible on every surface: per-spindle busy
    // counters in the snapshots, vol.spindle child spans in the trace.
    assert!(stats_serial.contains("disk.busy_ns{spindle=0}"));
    assert!(trace_serial.contains("vol.spindle"));
}
