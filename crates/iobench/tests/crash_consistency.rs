//! Power-cut crash consistency: cut the simulation at dozens of seeded
//! virtual times mid-workload, reconstruct what the media would hold
//! (durable writes whole, in-flight writes torn or lost per the fault
//! model), and assert the recovery tools bring the image back to a
//! mountable, consistent state:
//!
//! - UFS: `fsck_repair` rebuilds the maps with nothing unfixable, a
//!   follow-up `fsck` reports clean, and the image remounts.
//! - extentfs: a spindle that dies at the cut fails every later request,
//!   yet the in-memory tree/buddy metadata stays internally consistent
//!   (`check()` stays empty) — no torn I/O corrupts the allocator.

use std::rc::Rc;

use clufs::Tuning;
use diskmodel::fault::SpindleFaults;
use diskmodel::{BlockDeviceExt, Disk, DiskParams, FaultDevice, SharedDevice};
use extentfs::{ExtentFs, ExtentFsParams};
use pagecache::{PageCache, PageCacheParams};
use simkit::{Cpu, Sim, SimDuration, SimRng, SimTime};
use ufs::{build_world_on, fsck, fsck_repair, MkfsOptions, Ufs, UfsParams};
use vfs::{AccessMode, FileSystem, Vnode};

fn pattern(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

/// A metadata-heavy open-ended workload: rotates over a window of files,
/// writing multi-block data, fsyncing some, removing old ones. Runs until
/// the simulation stops scheduling it (the power cut). Errors are ignored:
/// after a device death the survivors of this loop all fail, and a real
/// application's failure is not the file system's inconsistency.
async fn churn<F: FileSystem>(fs: F) {
    let mut round = 0u64;
    loop {
        let name = format!("f{}", round % 6);
        if round >= 6 {
            let _ = fs.remove(&name).await;
        }
        if let Ok(f) = fs.create(&name).await {
            let data = pattern(round, 3 * 8192 + 512);
            let _ = f.write(0, &data, AccessMode::Copy).await;
            if round.is_multiple_of(2) {
                let _ = f.fsync().await;
            }
            // Grow one file through its indirect block now and then.
            if round.is_multiple_of(5) {
                let _ = f.write(16 * 8192, &data[..8192], AccessMode::Copy).await;
            }
        }
        round += 1;
    }
}

/// One UFS power-cut round: run the churn on a journaled fault wrapper,
/// cut at `cut_offset` past mount, replay the crash image onto a fresh
/// disk, repair, verify, remount. Returns the number of repairs the image
/// needed.
fn ufs_round(case: u64, cut_offset: SimDuration) -> usize {
    let sim = Sim::new();
    let base: SharedDevice = Rc::new(Disk::new(&sim, DiskParams::small_test()));
    let fault = FaultDevice::with_journal(&sim, base, SpindleFaults::default(), 0xc0ffee ^ case);
    let disk: SharedDevice = Rc::new(fault.clone());
    let s = sim.clone();
    let world = sim.run_until(async move {
        build_world_on(
            &s,
            disk,
            PageCacheParams::small_test(),
            MkfsOptions::small_test(),
            UfsParams::test(Tuning::config_a()),
        )
        .await
        .unwrap()
    });
    let cut = sim.now() + cut_offset;
    let fs = world.fs.clone();
    drop(sim.spawn(async move { churn(fs).await }));
    let s = sim.clone();
    sim.run_until(async move { s.sleep_until(cut).await });

    // Power dies: reconstruct the media image and walk away from the old
    // world mid-flight.
    let image = fault.crash_image(cut);
    drop(world);

    // A fresh machine boots with that image on its disk.
    let sim2 = Sim::new();
    let disk2: SharedDevice = Rc::new(Disk::new(&sim2, DiskParams::small_test()));
    let d = disk2.clone();
    sim2.run_until(async move {
        for w in image {
            d.write(w.lba, w.nsect, w.data).await;
        }
    });
    let d = disk2.clone();
    let repair = sim2.run_until(async move { fsck_repair(&*d).await.unwrap() });
    assert!(
        repair.unfixable.is_empty(),
        "case {case} cut {:?}: unfixable damage: {:?}",
        cut_offset,
        repair.unfixable
    );
    let d = disk2.clone();
    let verify = sim2.run_until(async move { fsck(&*d).await.unwrap() });
    assert!(
        verify.is_clean(),
        "case {case} cut {:?}: still dirty after repair: {:?}",
        cut_offset,
        verify.errors
    );
    // And the repaired image mounts.
    let s = sim2.clone();
    sim2.run_until(async move {
        let cpu = Cpu::new(&s);
        let cache = PageCache::new(&s, PageCacheParams::small_test());
        let fs = Ufs::mount(
            &s,
            &cpu,
            &cache,
            &disk2,
            UfsParams::test(Tuning::config_a()),
            None,
        )
        .await
        .expect("repaired image must mount");
        fs.unmount().await.unwrap();
    });
    repair.repaired.len()
}

#[test]
fn ufs_recovers_from_power_cuts_at_many_times() {
    // ≥50 seeded cut instants, spread from "mid-mkfs-aftermath" to deep in
    // the steady-state churn.
    let mut rng = SimRng::new(0x5eed_cafe);
    let mut dirty_rounds = 0;
    for case in 0..56u64 {
        let cut_us = 50 + rng.gen_range(20_000);
        if ufs_round(case, SimDuration::from_micros(cut_us)) > 0 {
            dirty_rounds += 1;
        }
    }
    // The sweep must actually catch the file system mid-flight: if every
    // cut produced an already-clean image, the harness is testing nothing.
    assert!(
        dirty_rounds > 10,
        "only {dirty_rounds}/56 cuts caught in-flight damage"
    );
}

/// One extentfs round: the spindle dies at the cut; the churn keeps
/// running into the dead device, every later request fails, and the
/// in-memory metadata must stay internally consistent throughout.
fn extentfs_round(case: u64, die_offset: SimDuration) {
    let sim = Sim::new();
    let cpu = Cpu::new(&sim);
    let cache = PageCache::new(&sim, PageCacheParams::small_test());
    let base: SharedDevice = Rc::new(Disk::new(&sim, DiskParams::small_test()));
    // Death is scheduled relative to t=0; format happens first, so early
    // offsets exercise death during metadata traffic as well.
    let die_at = SimTime::from_nanos(0) + die_offset;
    let fault = FaultDevice::new(
        &sim,
        base,
        SpindleFaults {
            die_at: Some(die_at),
            ..SpindleFaults::default()
        },
        0xdead ^ case,
    );
    let disk: SharedDevice = Rc::new(fault);
    let fs = ExtentFs::format(
        &sim,
        &cpu,
        &cache,
        &disk,
        64,
        ExtentFsParams::with_extent_blocks(15),
    )
    .unwrap();
    let fs2 = fs.clone();
    drop(sim.spawn(async move { churn(fs2).await }));
    let s = sim.clone();
    sim.run_until(async move { s.sleep_until(die_at + SimDuration::from_millis(5)).await });
    let problems = fs.check();
    assert!(
        problems.is_empty(),
        "case {case} death {:?}: metadata inconsistent: {problems:?}",
        die_offset
    );
}

#[test]
fn extentfs_metadata_survives_spindle_death_at_many_times() {
    let mut rng = SimRng::new(0xfee1_dead);
    for case in 0..56u64 {
        let die_us = 20 + rng.gen_range(15_000);
        extentfs_round(case, SimDuration::from_micros(die_us));
    }
}
