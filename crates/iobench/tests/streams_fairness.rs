//! Multi-stream pipeline guarantees: the fairness experiment's exported
//! snapshot is deterministic, and the per-stream labelled disk counters
//! partition the global ones exactly (stream 0 carries the untagged
//! metadata remainder, so nothing is double-counted or lost).

use clufs::Tuning;
use iobench::experiments::{streams_run, RunScale, StatsSink};
use iobench::runner::Runner;
use iobench::{paper_world, run_streams, StreamsOptions, WorldOptions};
use proptest::prelude::*;
use simkit::Sim;
use vfs::Vnode;

/// Two identical `iobench streams --stats-json` exports must be
/// byte-identical: the workload runs in virtual time, so the whole
/// registry — including every labelled `…{stream=N}` series — is a pure
/// function of the configuration.
#[test]
fn streams_stats_json_is_deterministic() {
    let export = || {
        let sink = StatsSink::new();
        let table = streams_run(3, RunScale::quick(), &Runner::serial(Some(&sink)));
        (table, sink.to_json("streams"))
    };
    let (t1, j1) = export();
    let (t2, j2) = export();
    assert_eq!(t1, t2, "rendered fairness table must be identical");
    assert_eq!(j1, j2, "--stats-json document must be byte-identical");
    assert!(j1.contains("\"schema\":\"iobench-stats/v8\""));
    assert!(
        j1.contains("{stream="),
        "labelled per-stream metrics must be exported"
    );
}

fn sector_partition(streams: u32, nio: u64) -> (u64, u64, u64, u64, usize) {
    let sim = Sim::new();
    let s = sim.clone();
    let runs = sim.run_until(async move {
        let opts = WorldOptions {
            full_scale: false,
            ..WorldOptions::default()
        };
        let w = paper_world(&s, Tuning::config_a(), opts).await.unwrap();
        let cache = w.cache.clone();
        run_streams(
            &s,
            &w.fs,
            move |f: &ufs::UfsFile| cache.invalidate_vnode(f.id(), 0),
            StreamsOptions {
                streams,
                file_bytes: nio * 8192,
                io_bytes: 8192,
            },
        )
        .await
        .unwrap()
    });
    let st = sim.stats();
    (
        st.stream_counter_sum("disk.sectors_read"),
        st.counter_value("disk.sectors_read"),
        st.stream_counter_sum("disk.sectors_written"),
        st.counter_value("disk.sectors_written"),
        runs.len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Whatever the stream count and per-stream size, every disk sector is
    /// attributed to exactly one stream: the labelled counters sum to the
    /// global `disk.sectors_*`.
    #[test]
    fn per_stream_disk_counters_partition_the_globals(
        streams in 1u32..5,
        nio in 8u64..25,
    ) {
        let (rd_sum, rd_global, wr_sum, wr_global, n) = sector_partition(streams, nio);
        prop_assert_eq!(n, streams as usize);
        prop_assert_eq!(rd_sum, rd_global);
        prop_assert_eq!(wr_sum, wr_global);
        prop_assert!(wr_global > 0, "the workload must hit the disk");
    }
}
