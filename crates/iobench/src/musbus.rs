//! A MusBus-like timesharing workload.
//!
//! "The benchmark, MusBus, was spending most of its time sleeping and the
//! rest of the time running small programs such as date(1) and ls(1). The
//! largest I/O transfer done by Musbus was around 8KB ... In other words,
//! MusBus didn't move any substantial amount of data." Clustering should
//! therefore improve it only slightly — this workload exists to reproduce
//! that *negative* result.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simkit::{Sim, SimDuration};
use vfs::{AccessMode, FileSystem, FsResult, Vnode};

/// Timesharing mix sizing.
#[derive(Clone, Copy, Debug)]
pub struct MusbusOptions {
    /// Concurrent simulated users.
    pub users: usize,
    /// Script iterations per user.
    pub iterations: usize,
    /// Mean think time between commands.
    pub think: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MusbusOptions {
    fn default() -> Self {
        MusbusOptions {
            users: 4,
            iterations: 10,
            think: SimDuration::from_millis(500),
            seed: 42,
        }
    }
}

/// Result: mean virtual time per script iteration (lower is better).
#[derive(Clone, Copy, Debug)]
pub struct MusbusResult {
    /// Mean time one user takes for one script iteration, excluding think
    /// time.
    pub mean_iteration: SimDuration,
    /// Total bytes of file I/O performed.
    pub bytes_moved: u64,
}

/// Runs the mix on `world`: each user edits/compiles/lists in a private
/// directory with files no larger than 8 KB.
pub async fn run_musbus(
    sim: &Sim,
    world: &ufs::World,
    opts: MusbusOptions,
) -> FsResult<MusbusResult> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let totals: Rc<RefCell<(SimDuration, u64)>> = Rc::new(RefCell::new((SimDuration::ZERO, 0)));
    let mut handles = Vec::new();
    for user in 0..opts.users {
        let dir = format!("user{user}");
        world.fs.mkdir(&dir).await?;
        let sim2 = sim.clone();
        let fs = world.fs.clone();
        let cpu = world.cpu.clone();
        let totals = Rc::clone(&totals);
        let opts2 = opts;
        handles.push(sim.spawn(async move {
            let mut rng = SmallRng::seed_from_u64(opts2.seed + user as u64);
            for it in 0..opts2.iterations {
                // Think.
                let think = opts2.think.mul_f64(0.5 + rng.gen_range(0.0..1.0));
                sim2.sleep(think).await;
                let t0 = sim2.now();
                // "Run a small program": a burst of pure CPU.
                cpu.charge(
                    "musbus-exec",
                    SimDuration::from_millis(rng.gen_range(20..80)),
                )
                .await;
                // Write a small file (about 2-8 KB), read it back, list by
                // opening a few files, occasionally remove one.
                let name = format!("user{user}/tmp{}", it % 4);
                let size = rng.gen_range(1024..8192usize);
                let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
                let f = fs.create(&name).await.expect("create");
                f.write(0, &data, AccessMode::Copy).await.expect("write");
                f.fsync().await.expect("fsync");
                let back = f.read(0, size, AccessMode::Copy).await.expect("read");
                assert_eq!(back.len(), size);
                if it % 4 == 3 {
                    fs.remove(&name).await.expect("remove");
                }
                let mut t = totals.borrow_mut();
                t.0 += sim2.now().duration_since(t0);
                t.1 += 2 * size as u64;
            }
        }));
    }
    for h in handles {
        h.await;
    }
    let (total, bytes) = *totals.borrow();
    Ok(MusbusResult {
        mean_iteration: total / (opts.users * opts.iterations) as u64,
        bytes_moved: bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper_world, Config, WorldOptions};

    #[test]
    fn musbus_runs_and_reports() {
        let sim = Sim::new();
        let s = sim.clone();
        let result = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            run_musbus(
                &s,
                &w,
                MusbusOptions {
                    users: 2,
                    iterations: 3,
                    ..MusbusOptions::default()
                },
            )
            .await
            .unwrap()
        });
        assert!(result.bytes_moved > 0);
        assert!(result.mean_iteration > SimDuration::ZERO);
    }
}
