//! Host-profile report building for `iobench --perf`.
//!
//! Consumes the wall-clock phase records collected by `simkit::perfmon`
//! during a run and turns them into (a) a machine-readable report (schema
//! `iobench-perf/v1`) naming the top wall-clock sinks, per-worker
//! utilization, lock waits, and allocation churn per phase, and (b) a
//! compact summary table for stderr. This is the read-the-report path for
//! ROADMAP item 1: the fig10-at-`--jobs N` slowdown shows up here as low
//! worker utilization plus whichever phase or lock eats the difference.
//!
//! Phase taxonomy (recorded by `iobench::runner`):
//!
//! - `worker.lifetime` — brackets each worker thread (and the serial
//!   loop); the denominator for utilization and coverage.
//! - `runner.pickup`, `run.setup`, `run.drive`, `run.capture` — the
//!   top-level, non-overlapping stages inside a lifetime; their sum over
//!   all workers is the numerator of `coverage`.
//! - `world.build` — nested inside `run.drive` (reported, but excluded
//!   from coverage so nothing is counted twice).
//! - `lock.queue` / `lock.outcome` — contended-lock waits.
//! - `runner.fanout_wait` / `runner.emit` — main-thread phases, reported
//!   separately (they overlap worker lifetimes by design).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simkit::perfmon::{PhaseRecord, MAIN_THREAD};
use simkit::SimDuration;

/// Top-level phases whose per-worker sum defines attribution coverage.
/// Everything else is either the container (`worker.lifetime`), nested
/// (`world.build`), overlapping main-thread work, or a lock wait.
const TOP_PHASES: [&str; 4] = ["runner.pickup", "run.setup", "run.drive", "run.capture"];

/// Aggregated view of one phase name across the whole run.
#[derive(Clone, Debug, Default)]
pub struct PhaseAgg {
    pub count: u64,
    pub total_ns: u64,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

/// One worker's wall-clock accounting.
#[derive(Clone, Debug)]
pub struct WorkerProfile {
    /// Worker index ([`MAIN_THREAD`] never appears here).
    pub worker: u32,
    /// Total `worker.lifetime` time.
    pub lifetime_ns: u64,
    /// Time inside `run.setup` + `run.drive` + `run.capture`.
    pub busy_ns: u64,
    /// Time inside `runner.pickup`.
    pub pickup_ns: u64,
    /// Lifetime not attributed to any top-level phase.
    pub idle_ns: u64,
    /// `busy_ns / lifetime_ns` (0 for an empty lifetime).
    pub utilization: f64,
}

/// The assembled host profile (see module docs).
#[derive(Clone, Debug, Default)]
pub struct HostProfile {
    /// Per-worker accounting, sorted by worker index.
    pub workers: Vec<WorkerProfile>,
    /// Per-phase aggregates, keyed by phase name.
    pub phases: BTreeMap<&'static str, PhaseAgg>,
    /// `run.drive` time per run label, plan-order-independent (sorted by
    /// descending time, then label).
    pub runs: Vec<(String, u64)>,
    /// Fraction of summed worker lifetimes attributed to [`TOP_PHASES`].
    pub coverage: f64,
    /// Records dropped on full per-thread buffers (0 = complete profile).
    pub dropped: u64,
}

impl HostProfile {
    /// Builds the profile from drained perfmon records.
    pub fn build(records: &[PhaseRecord], dropped: u64) -> HostProfile {
        let mut phases: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
        let mut runs: BTreeMap<String, u64> = BTreeMap::new();
        // worker → (lifetime, busy, pickup)
        let mut per_worker: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
        for r in records {
            let agg = phases.entry(r.name).or_default();
            agg.count += 1;
            agg.total_ns += r.duration_ns();
            agg.allocs += r.allocs;
            agg.alloc_bytes += r.alloc_bytes;
            if r.name == "run.drive" {
                if let Some(label) = &r.label {
                    *runs.entry(label.to_string()).or_default() += r.duration_ns();
                }
            }
            if r.worker != MAIN_THREAD {
                let w = per_worker.entry(r.worker).or_default();
                match r.name {
                    "worker.lifetime" => w.0 += r.duration_ns(),
                    "runner.pickup" => w.2 += r.duration_ns(),
                    "run.setup" | "run.drive" | "run.capture" => w.1 += r.duration_ns(),
                    _ => {}
                }
            }
        }
        let workers: Vec<WorkerProfile> = per_worker
            .into_iter()
            .map(
                |(worker, (lifetime_ns, busy_ns, pickup_ns))| WorkerProfile {
                    worker,
                    lifetime_ns,
                    busy_ns,
                    pickup_ns,
                    idle_ns: lifetime_ns.saturating_sub(busy_ns + pickup_ns),
                    utilization: if lifetime_ns == 0 {
                        0.0
                    } else {
                        busy_ns as f64 / lifetime_ns as f64
                    },
                },
            )
            .collect();
        let measured: u64 = workers.iter().map(|w| w.lifetime_ns).sum();
        let attributed: u64 = workers.iter().map(|w| w.busy_ns + w.pickup_ns).sum();
        let mut runs: Vec<(String, u64)> = runs.into_iter().collect();
        runs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        HostProfile {
            workers,
            phases,
            runs,
            coverage: if measured == 0 {
                0.0
            } else {
                attributed as f64 / measured as f64
            },
            dropped,
        }
    }

    /// Phase aggregates sorted by descending total time (name-tiebroken),
    /// the "top wall-clock sinks" ordering.
    pub fn sinks(&self) -> Vec<(&'static str, &PhaseAgg)> {
        let mut v: Vec<_> = self.phases.iter().map(|(n, a)| (*n, a)).collect();
        v.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Serializes the profile as the `--perf` document (schema
    /// `iobench-perf/v1`). Wall-clock values are inherently
    /// run-to-run variable; this document is diagnostic, not part of the
    /// byte-identity surface.
    pub fn to_json(&self, experiment: &str, jobs: usize) -> String {
        let mut workers = String::new();
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            let _ = write!(
                workers,
                "{{\"worker\":{},\"lifetime_ns\":{},\"busy_ns\":{},\"pickup_ns\":{},\
                 \"idle_ns\":{},\"utilization\":{}}}",
                w.worker,
                w.lifetime_ns,
                w.busy_ns,
                w.pickup_ns,
                w.idle_ns,
                json_f64(w.utilization)
            );
        }
        let mut phases = String::new();
        for (i, (name, a)) in self.sinks().into_iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            let mean = a.total_ns.checked_div(a.count).unwrap_or(0);
            let _ = write!(
                phases,
                "{{\"name\":\"{name}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{mean},\
                 \"allocs\":{},\"alloc_bytes\":{}}}",
                a.count, a.total_ns, a.allocs, a.alloc_bytes
            );
        }
        let mut runs = String::new();
        for (i, (label, ns)) in self.runs.iter().enumerate() {
            if i > 0 {
                runs.push(',');
            }
            let _ = write!(runs, "{{\"id\":\"{label}\",\"drive_ns\":{ns}}}");
        }
        format!(
            "{{\"schema\":\"iobench-perf/v1\",\"experiment\":\"{experiment}\",\"jobs\":{jobs},\
             \"coverage\":{},\"dropped_records\":{},\"workers\":[{workers}],\
             \"phases\":[{phases}],\"runs\":[{runs}]}}",
            json_f64(self.coverage),
            self.dropped
        )
    }

    /// Renders the stderr summary: top sinks, per-worker utilization, and
    /// coverage. Kept off stdout so experiment output stays byte-identical
    /// whether or not profiling is on.
    pub fn summary(&self, experiment: &str, jobs: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host profile: {experiment} --jobs {jobs} \
             (coverage {:.1}%, {} dropped records)",
            self.coverage * 100.0,
            self.dropped
        );
        let _ = writeln!(
            out,
            "  {:<18} {:>6} {:>12} {:>12} {:>12} {:>14}",
            "phase", "count", "total ms", "mean us", "allocs", "alloc KB"
        );
        for (name, a) in self.sinks() {
            let mean_us = if a.count == 0 {
                0.0
            } else {
                a.total_ns as f64 / a.count as f64 / 1e3
            };
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>12.2} {:>12.1} {:>12} {:>14.1}",
                name,
                a.count,
                a.total_ns as f64 / 1e6,
                mean_us,
                a.allocs,
                a.alloc_bytes as f64 / 1024.0
            );
        }
        let _ = writeln!(
            out,
            "  {:<8} {:>12} {:>12} {:>12} {:>12}",
            "worker", "lifetime ms", "busy ms", "idle ms", "util %"
        );
        for w in &self.workers {
            let _ = writeln!(
                out,
                "  {:<8} {:>12.2} {:>12.2} {:>12.2} {:>12.1}",
                w.worker,
                w.lifetime_ns as f64 / 1e6,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6,
                w.utilization * 100.0
            );
        }
        if !self.runs.is_empty() {
            let _ = writeln!(out, "  slowest runs:");
            for (label, ns) in self.runs.iter().take(5) {
                let _ = writeln!(out, "    {:<28} {:>10.2} ms", label, *ns as f64 / 1e6);
            }
        }
        out
    }
}

/// Whether `name` counts toward attribution coverage (exported for the
/// invariant tests).
pub fn is_top_phase(name: &str) -> bool {
    TOP_PHASES.contains(&name)
}

/// Parses the strict `--sample-every` grammar: a positive integer with an
/// optional `us`/`ms`/`s` unit suffix; a bare number means milliseconds
/// of virtual time. Anything else (zero, signs, fractions, unknown units,
/// overflow) is an error string for the CLI to report alongside usage.
pub fn parse_sample_every(s: &str) -> Result<SimDuration, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("us") {
        (d, 1_000u64)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1_000_000)
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!(
            "invalid --sample-every {s:?}: expected a positive integer with \
             optional us/ms/s suffix"
        ));
    }
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("invalid --sample-every {s:?}: number out of range"))?;
    if n == 0 {
        return Err(format!(
            "invalid --sample-every {s:?}: interval must be > 0"
        ));
    }
    let ns = n
        .checked_mul(mult)
        .ok_or_else(|| format!("invalid --sample-every {s:?}: number out of range"))?;
    Ok(SimDuration::from_nanos(ns))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, worker: u32, start: u64, end: u64) -> PhaseRecord {
        PhaseRecord {
            name,
            label: None,
            worker,
            start_ns: start,
            end_ns: end,
            allocs: 0,
            alloc_bytes: 0,
        }
    }

    #[test]
    fn profile_attributes_and_covers() {
        let mut records = vec![
            rec("worker.lifetime", 0, 0, 100),
            rec("runner.pickup", 0, 0, 5),
            rec("run.setup", 0, 5, 15),
            rec("run.drive", 0, 15, 90),
            rec("run.capture", 0, 90, 98),
            rec("world.build", 0, 16, 30), // nested: must not double count
            rec("runner.emit", MAIN_THREAD, 100, 110),
        ];
        records[3].label = Some("fig10/A/FSR".into());
        let p = HostProfile::build(&records, 0);
        assert_eq!(p.workers.len(), 1);
        let w = &p.workers[0];
        assert_eq!(w.lifetime_ns, 100);
        assert_eq!(w.busy_ns, 10 + 75 + 8);
        assert_eq!(w.pickup_ns, 5);
        assert_eq!(w.idle_ns, 100 - 98);
        assert!((p.coverage - 0.98).abs() < 1e-9, "coverage {}", p.coverage);
        assert_eq!(p.runs, vec![("fig10/A/FSR".to_string(), 75)]);
        let json = p.to_json("fig10", 4);
        assert!(json.contains("\"schema\":\"iobench-perf/v1\""));
        assert!(json.contains("\"jobs\":4"));
        assert!(json.contains("\"worker\":0"));
        assert!(json.contains("\"id\":\"fig10/A/FSR\",\"drive_ns\":75"));
        // Sinks are sorted by total time: run.drive (75) leads.
        let first = json.find("\"name\":\"run.drive\"").unwrap();
        let second = json.find("\"name\":\"run.setup\"").unwrap();
        assert!(first < second);
        let table = p.summary("fig10", 4);
        assert!(table.contains("run.drive"));
        assert!(table.contains("coverage 98.0%"));
    }

    #[test]
    fn empty_profile_is_well_formed() {
        let p = HostProfile::build(&[], 0);
        assert_eq!(p.coverage, 0.0);
        let json = p.to_json("none", 1);
        assert!(json.contains("\"workers\":[]"));
    }

    #[test]
    fn sample_every_grammar() {
        assert_eq!(parse_sample_every("10").unwrap().as_nanos(), 10_000_000);
        assert_eq!(parse_sample_every("10ms").unwrap().as_nanos(), 10_000_000);
        assert_eq!(parse_sample_every("250us").unwrap().as_nanos(), 250_000);
        assert_eq!(parse_sample_every("2s").unwrap().as_nanos(), 2_000_000_000);
        for bad in [
            "",
            "0",
            "0ms",
            "-5",
            "1.5ms",
            "5m",
            "ms",
            "1e3",
            " 5",
            "99999999999999999999s",
        ] {
            assert!(parse_sample_every(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn top_phase_classification() {
        assert!(is_top_phase("run.drive"));
        assert!(is_top_phase("runner.pickup"));
        assert!(!is_top_phase("worker.lifetime"));
        assert!(!is_top_phase("world.build"));
        assert!(!is_top_phase("lock.queue"));
    }
}
