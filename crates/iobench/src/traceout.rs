//! Trace export and analysis: Chrome trace-event JSON for the spans the
//! simulator records (`iobench --trace`), plus the latency-attribution and
//! per-fault timeline tables built from the same spans.
//!
//! Everything here is a pure function of the recorded spans, and spans are
//! a pure function of the virtual-time simulation — so two identical runs
//! produce byte-identical trace files. Timestamps are rendered in
//! microseconds with integer math (no floating point) to keep that true.

use std::collections::BTreeMap;

use simkit::{Span, SpanId};

use crate::report::Table;

/// Nanoseconds rendered as microseconds with three decimals (the trace
/// event format's `ts`/`dur` unit), via integer math only.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn span_ns(s: &Span) -> u64 {
    s.duration().map(|d| d.as_nanos()).unwrap_or(0)
}

/// Index of `id` into a single run's span vector (ids are dense, starting
/// at 1, in recording order).
fn idx(id: SpanId) -> usize {
    id.as_u64() as usize - 1
}

/// The root ancestor of `span` within its run.
fn root_of(spans: &[Span], span: &Span) -> SpanId {
    let mut cur = span.id;
    let mut parent = span.parent;
    while !parent.is_none() {
        cur = parent;
        parent = spans[idx(parent)].parent;
    }
    cur
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes `(run id, spans)` captures as one Chrome trace-event JSON
/// document, loadable in `chrome://tracing` or Perfetto.
///
/// Layout: each `(run, stream)` pair becomes one process (`pid`), named
/// `"<run id> stream <N>"` via process-name metadata; within a process,
/// each request tree gets its own thread (`tid` = the root span's id), so
/// a request's spans stack below its root the way they nest. Spans still
/// open when the run ended (e.g. a read-ahead the workload never waited
/// for) are dropped — a complete event needs both bounds.
pub fn chrome_trace_json(runs: &[(String, Vec<Span>)]) -> String {
    chrome_trace_json_with_counters(runs, &[])
}

/// [`chrome_trace_json`], additionally merging sampled telemetry series
/// (the `--timeline` capture) into the document as Perfetto counter
/// tracks: each run whose id appears in `timelines` gets one extra
/// process (`"<run id> telemetry"`) carrying a `"ph":"C"` counter event
/// per sampled point, so cache occupancy, queue depth, and stall gauges
/// plot as graphs directly beneath that run's spans. Emitted only when
/// both `--trace` and `--timeline` are requested; determinism is
/// inherited (series are virtual-time pure, pids stay allocation-order).
pub fn chrome_trace_json_with_counters(
    runs: &[(String, Vec<Span>)],
    timelines: &[(String, Vec<simkit::perfmon::Series>)],
) -> String {
    let by_id: BTreeMap<&str, &Vec<simkit::perfmon::Series>> = timelines
        .iter()
        .map(|(id, series)| (id.as_str(), series))
        .collect();
    let mut events: Vec<String> = Vec::new();
    let mut next_pid = 1u64;
    for (run_id, spans) in runs {
        // Deterministic pid per stream: ascending stream number.
        let mut pids: BTreeMap<u32, u64> = BTreeMap::new();
        for s in spans {
            pids.entry(s.stream).or_insert(0);
        }
        for (stream, pid) in pids.iter_mut() {
            *pid = next_pid;
            next_pid += 1;
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{} stream {stream}\"}}}}",
                json_escape(run_id)
            ));
        }
        for s in spans {
            let Some(end) = s.end else { continue };
            let pid = pids[&s.stream];
            let tid = root_of(spans, s).as_u64();
            let args = s
                .args
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect::<Vec<_>>()
                .join(",");
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
                s.name,
                json_escape(run_id),
                us(s.start.as_nanos()),
                us(end.duration_since(s.start).as_nanos()),
            ));
        }
        if let Some(series) = by_id.get(run_id.as_str()) {
            let pid = next_pid;
            next_pid += 1;
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{} telemetry\"}}}}",
                json_escape(run_id)
            ));
            for (name, points) in series.iter() {
                for (t, v) in points {
                    let value = if v.is_finite() {
                        format!("{v}")
                    } else {
                        "null".to_string()
                    };
                    events.push(format!(
                        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"tid\":0,\
                         \"args\":{{\"value\":{value}}}}}",
                        json_escape(name),
                        us(*t),
                    ));
                }
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Where one stream's virtual time went, summed over a run's spans.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamAttribution {
    pub stream: u32,
    /// `fs.read` + `fs.write` root spans (the foreground requests).
    pub requests: u64,
    /// Their total duration.
    pub request_ns: u64,
    /// Total duration of *all* root spans for the stream, including
    /// asynchronous read-ahead fills and write-cluster pushes. The layer
    /// sums below nest inside these roots, so each fraction of this total
    /// is well defined.
    pub total_root_ns: u64,
    /// Time requests sat in the disk queue (`disk.queue`).
    pub queue_ns: u64,
    /// Time the disk spent servicing the stream (`disk.service`).
    pub service_ns: u64,
    /// Time writers slept on the per-file write limit (`throttle.stall`).
    pub throttle_ns: u64,
    /// Time spent waiting for a free page (`cache.alloc_stall`).
    pub alloc_stall_ns: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Reads absorbed by the drive's track buffer (`disk.trackbuf_hit`).
    pub trackbuf_hits: u64,
}

impl StreamAttribution {
    /// Cache hit fraction of all lookups, or `None` with no lookups.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

/// Per-stream latency attribution over one run's spans, ascending by
/// stream number.
pub fn attribute(spans: &[Span]) -> Vec<StreamAttribution> {
    let mut by_stream: BTreeMap<u32, StreamAttribution> = BTreeMap::new();
    for s in spans {
        let a = by_stream
            .entry(s.stream)
            .or_insert_with(|| StreamAttribution {
                stream: s.stream,
                ..Default::default()
            });
        let ns = span_ns(s);
        if s.parent.is_none() {
            a.total_root_ns += ns;
        }
        match s.name {
            "fs.read" | "fs.write" => {
                a.requests += 1;
                a.request_ns += ns;
            }
            "disk.queue" => a.queue_ns += ns,
            "disk.service" => a.service_ns += ns,
            "throttle.stall" => a.throttle_ns += ns,
            "cache.alloc_stall" => a.alloc_stall_ns += ns,
            "cache.hit" => a.cache_hits += 1,
            "cache.miss" => a.cache_misses += 1,
            "disk.trackbuf_hit" => a.trackbuf_hits += 1,
            _ => {}
        }
    }
    by_stream.into_values().collect()
}

/// Renders the per-stream latency-attribution table for one run: for each
/// stream, where its traced time went as a fraction of its total root-span
/// time (queue wait / disk service / throttle stall / page-alloc stall),
/// plus the cache hit rate and track-buffer absorption.
pub fn attribution_table(spans: &[Span]) -> String {
    let mut t = Table::new(&[
        "stream",
        "requests",
        "req ms",
        "queue",
        "service",
        "throttle",
        "alloc",
        "cache hits",
        "trackbuf",
    ]);
    let pct = |ns: u64, total: u64| -> String {
        if total == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * ns as f64 / total as f64)
        }
    };
    for a in attribute(spans) {
        t.row(vec![
            format!("{}", a.stream),
            format!("{}", a.requests),
            format!("{:.2}", a.request_ns as f64 / 1e6),
            pct(a.queue_ns, a.total_root_ns),
            pct(a.service_ns, a.total_root_ns),
            pct(a.throttle_ns, a.total_root_ns),
            pct(a.alloc_stall_ns, a.total_root_ns),
            a.hit_rate()
                .map(|r| format!("{:.1}%", 100.0 * r))
                .unwrap_or_else(|| "-".into()),
            format!("{}", a.trackbuf_hits),
        ]);
    }
    t.render()
}

/// Renders the first `max_roots` request trees *per distinct root name*
/// as a per-fault action timeline — the shape of the paper's Figures 3, 6
/// and 7, but reconstructed from a real trace instead of drawn by hand.
/// The per-name limit is what makes one run show a read tree, a write
/// tree and an async cluster push side by side rather than `max_roots`
/// copies of whatever phase ran first. Children are indented under their
/// parent and ordered by start time. Childless roots (e.g. untagged
/// metadata disk requests) are not trees and are skipped.
pub fn timeline_table(spans: &[Span], max_roots: usize) -> String {
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        if !s.parent.is_none() {
            children.entry(s.parent.as_u64()).or_default().push(s);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start, s.id.as_u64()));
    }
    // Action first: the first column is the only left-aligned one, which
    // is what keeps the depth indentation visible.
    let mut t = Table::new(&["action", "t (µs)", "dur (µs)", "detail"]);
    let mut emitted: BTreeMap<&str, usize> = BTreeMap::new();
    let mut stack: Vec<(&Span, usize)> = Vec::new();
    for s in spans {
        if !s.parent.is_none() || !children.contains_key(&s.id.as_u64()) {
            continue;
        }
        let n = emitted.entry(s.name).or_insert(0);
        if *n == max_roots {
            continue;
        }
        *n += 1;
        stack.push((s, 0));
        while let Some((span, depth)) = stack.pop() {
            let detail = span
                .args
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            t.row(vec![
                format!("{}{}", "  ".repeat(depth), span.name),
                us(span.start.as_nanos()),
                span.duration()
                    .map(|d| us(d.as_nanos()))
                    .unwrap_or_else(|| "open".into()),
                format!("stream={} {detail}", span.stream),
            ]);
            if let Some(kids) = children.get(&span.id.as_u64()) {
                for k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{Sim, SimDuration, SpanId};

    fn sample_run() -> (Sim, Vec<Span>) {
        let sim = Sim::new();
        sim.tracer().set_enabled(true);
        let tr = sim.tracer().clone();
        let s = sim.clone();
        sim.run_until(async move {
            let read = tr.start("fs.read", 1, SpanId::NONE);
            let get = tr.start("fs.getpage", 1, read);
            s.sleep(SimDuration::from_micros(3)).await;
            let q0 = s.now();
            s.sleep(SimDuration::from_micros(2)).await;
            tr.record("disk.queue", 1, get, q0, s.now());
            let svc = tr.start("disk.service", 1, get);
            s.sleep(SimDuration::from_micros(10)).await;
            tr.end(svc);
            tr.end(get);
            tr.end(read);
        });
        let spans = sim.tracer().take_spans();
        (sim, spans)
    }

    #[test]
    fn chrome_json_is_deterministic_and_complete() {
        let (_s1, spans1) = sample_run();
        let (_s2, spans2) = sample_run();
        let a = chrome_trace_json(&[("x/y".to_string(), spans1)]);
        let b = chrome_trace_json(&[("x/y".to_string(), spans2)]);
        assert_eq!(a, b, "identical runs export identical traces");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"disk.service\""));
        assert!(a.contains("\"name\":\"x/y stream 1\""));
        // All spans closed → one event per span plus one metadata record.
        assert_eq!(a.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(a.matches("\"ph\":\"M\"").count(), 1);
    }

    #[test]
    fn counter_tracks_merge_behind_span_pids() {
        let (_sim, spans) = sample_run();
        let timelines = vec![(
            "x/y".to_string(),
            vec![(
                "disk.queue_depth".to_string(),
                vec![(0u64, 1.0), (2_000, 0.0)],
            )],
        )];
        let merged = chrome_trace_json_with_counters(&[("x/y".to_string(), spans)], &timelines);
        assert_eq!(merged.matches("\"ph\":\"C\"").count(), 2);
        assert!(merged.contains("\"name\":\"x/y telemetry\""));
        assert!(merged.contains("\"args\":{\"value\":1}"));
        // Telemetry pid comes after the run's stream pid.
        assert!(merged.contains("\"ph\":\"X\""));
        // A run with no matching timeline gets no counter process.
        let (_sim2, spans2) = sample_run();
        let plain = chrome_trace_json_with_counters(&[("other".to_string(), spans2)], &timelines);
        assert_eq!(plain.matches("\"ph\":\"C\"").count(), 0);
        assert_eq!(plain.matches("\"ph\":\"M\"").count(), 1);
    }

    #[test]
    fn attribution_sums_layer_time() {
        let (_sim, spans) = sample_run();
        let per = attribute(&spans);
        assert_eq!(per.len(), 1);
        let a = &per[0];
        assert_eq!(a.stream, 1);
        assert_eq!(a.requests, 1);
        assert_eq!(a.request_ns, 15_000);
        assert_eq!(a.total_root_ns, 15_000);
        assert_eq!(a.queue_ns, 2_000);
        assert_eq!(a.service_ns, 10_000);
        let table = attribution_table(&spans);
        assert!(table.contains("13.3%"), "queue 2µs / 15µs:\n{table}");
        assert!(table.contains("66.7%"), "service 10µs / 15µs:\n{table}");
    }

    #[test]
    fn timeline_nests_children_under_roots() {
        let (_sim, spans) = sample_run();
        let table = timeline_table(&spans, 1);
        // Row 0 is the header, row 1 the separator.
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[2].contains("fs.read"));
        assert!(lines[3].contains("  fs.getpage"));
        assert!(lines[4].contains("    disk.queue"));
        assert!(lines[5].contains("    disk.service"));
    }
}
