//! CLI to regenerate the paper's tables and figures.
//!
//! ```text
//! iobench fig9|fig10|fig11|fig12|extents|musbus|alternatives|extentfs|write-limit|free-behind|all [--quick]
//! ```

use iobench::experiments::{
    extentfs_comparison_run, extents_run, fig10_run, fig10_table, fig11_table, fig12_run,
    fig9_table, free_behind_run, musbus_run, rejected_alternatives_run, write_limit_sweep_run,
    RunScale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");

    let run_fig10 = |scale: RunScale| {
        let data = fig10_run(scale);
        println!("Figure 10: IObench transfer rates in KB/second\n");
        println!("{}", fig10_table(&data));
        println!("Figure 11: IObench transfer rate ratios\n");
        println!("{}", fig11_table(&data));
    };

    match what {
        "fig9" => {
            println!("Figure 9: IObench run descriptions\n");
            println!("{}", fig9_table());
        }
        "fig10" | "fig11" => run_fig10(scale),
        "fig12" => {
            let (table, _, _) = fig12_run(scale);
            println!("Figure 12: System CPU comparison\n");
            println!("{table}");
        }
        "extents" => {
            let (table, _, _) = extents_run(quick);
            println!("Allocator contiguity study (paper: 1.5MB best / 62KB aged)\n");
            println!("{table}");
        }
        "musbus" => {
            let (table, ratio) = musbus_run();
            println!("MusBus-like timesharing mix (expect only slight improvement)\n");
            println!("{table}");
            println!("old/new iteration-time ratio: {ratio:.2}");
        }
        "alternatives" => {
            println!("Rejected alternatives (tuning-only, driver clustering)\n");
            println!("{}", rejected_alternatives_run(scale));
        }
        "extentfs" => {
            println!("Extent-based file system vs clustered UFS\n");
            println!("{}", extentfs_comparison_run(scale));
        }
        "write-limit" => {
            println!("Write-limit sweep (fairness vs throughput)\n");
            println!("{}", write_limit_sweep_run(scale));
        }
        "free-behind" => {
            let (table, _, _) = free_behind_run(scale);
            println!("Free-behind cache survival\n");
            println!("{table}");
        }
        "all" => {
            println!("Figure 9: IObench run descriptions\n");
            println!("{}", fig9_table());
            run_fig10(scale);
            let (t12, _, _) = fig12_run(scale);
            println!("Figure 12: System CPU comparison\n");
            println!("{t12}");
            let (tx, _, _) = extents_run(quick);
            println!("Allocator contiguity study\n");
            println!("{tx}");
            let (tm, r) = musbus_run();
            println!("MusBus-like timesharing mix\n");
            println!("{tm}");
            println!("old/new iteration-time ratio: {r:.2}\n");
            println!("Rejected alternatives\n");
            println!("{}", rejected_alternatives_run(scale));
            println!("Extent-based file system vs clustered UFS\n");
            println!("{}", extentfs_comparison_run(scale));
            println!("Write-limit sweep\n");
            println!("{}", write_limit_sweep_run(scale));
            let (tf, _, _) = free_behind_run(scale);
            println!("Free-behind cache survival\n");
            println!("{tf}");
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "usage: iobench fig9|fig10|fig11|fig12|extents|musbus|alternatives|\
                 extentfs|write-limit|free-behind|all [--quick]"
            );
            std::process::exit(2);
        }
    }
}
