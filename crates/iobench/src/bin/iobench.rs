//! CLI to regenerate the paper's tables and figures.
//!
//! ```text
//! iobench fig9|fig10|fig11|fig12|extents|aging|musbus|alternatives|extentfs|\
//!         write-limit|free-behind|streams|volume|faults|readahead|all \
//!         [--quick] [--jobs N] [--streams N] [--volume <spec>] \
//!         [--faults <spec>] \
//!         [--readahead fixed|adaptive|off] [--stride <bytes>] \
//!         [--record-size <bytes>] \
//!         [--age-ops N] [--utilization F] [--inline-threshold B] \
//!         [--stats-json <path>] [--trace <path>] [--perf <path>] \
//!         [--timeline <path>] [--sample-every <N[us|ms|s]>]
//! ```
//!
//! `--jobs N` fans an experiment's independent simulated runs out across N
//! worker threads (default: all available cores; `--jobs 1` runs serially).
//! Every run is a pure function of virtual time and results are re-emitted
//! in run order, so stdout, `--stats-json`, and `--trace` are
//! byte-identical for any jobs count. `--stats-json <path>` writes every
//! simulated run's full metrics-registry snapshot (schema
//! `iobench-stats/v8`; see DESIGN.md "Observability") so benchmark
//! trajectories can be diffed across changes. `--trace <path>` records
//! per-request spans through the whole I/O path and writes them as Chrome
//! trace-event JSON (open in `chrome://tracing` or Perfetto), and prints
//! each run's latency-attribution table. `--streams N` sets the stream
//! count for the multi-stream fairness workload (and selects it when no
//! experiment is named). `--volume <spec>` restricts the volume experiment
//! to one array — specs are `raid0:<spindles>:<stripe>` (e.g.
//! `raid0:4:64k`), `raid1:<spindles>` (e.g. `raid1:2`), or
//! `raid5:<spindles>:<stripe>` (e.g. `raid5:5:64k`) — and selects the
//! volume experiment when none is named. `--faults <spec>` configures the
//! fault-injection experiment with a deterministic fault plan (grammar:
//! `seed=N`, `media=<spindle>:<lba>+<nsect>`,
//! `transient=<spindle>:<lba>+<nsect>x<count>`, `die=<spindle>@<time>`,
//! `cut=<time>`, comma-separated; see DESIGN.md "Fault injection") applied
//! to the members of one array (`--volume`, default `raid5:5:64k`), and
//! selects the faults experiment when none is named; a plan naming a
//! spindle the target array does not have exits 2. The aging study takes
//! `--age-ops N` (positive per-round churn budget), `--utilization F`
//! (target fullness, strictly between 0 and 1), and `--inline-threshold B`
//! (extentfs inline-file cutoff in bytes, at most one 8 KB block);
//! malformed values exit 2 with usage, like every other flag.
//! The readahead experiment sweeps stride × record size × prefetch policy
//! by default; `--readahead fixed|adaptive|off`, `--stride <bytes>`, and
//! `--record-size <bytes>` (positive multiples of 8192, `k`/`m` suffixes
//! accepted, stride ≥ record) instead run the one selected cell — and any
//! of them selects the readahead experiment when none is named. Anything
//! else (an unknown policy, a size that is not a positive block multiple,
//! a stride smaller than the record) exits 2 with usage.
//! Unrecognized flags are an error.
//!
//! `--perf <path>` turns on the host-side wall-clock profiler
//! (`simkit::perfmon`) and writes a machine-readable profile (schema
//! `iobench-perf/v1`) naming the top wall-clock sinks, per-worker
//! utilization, and allocation churn, plus a summary table on stderr.
//! `--timeline <path>` turns on the virtual-time telemetry sampler and
//! writes per-run metric time series (schema `iobench-timeline/v1`);
//! `--sample-every <N[us|ms|s]>` sets the sampling interval (virtual
//! time; bare numbers are milliseconds; default 10ms) and is only
//! meaningful alongside `--timeline`. When both `--trace` and
//! `--timeline` are given, the sampled series are also merged into the
//! Chrome trace as Perfetto counter tracks. Neither flag perturbs
//! virtual time: stdout, `--stats-json`, `--trace`, and `--timeline`
//! stay byte-identical whether or not profiling is enabled.

use diskmodel::FaultPlan;
use iobench::experiments::{
    aging_run, extentfs_comparison_run, extents_run, fig10_run, fig10_table, fig11_table,
    fig12_run, fig9_table, free_behind_run, musbus_run, rejected_alternatives_run, streams_run,
    write_limit_sweep_run, AgingParams, RunScale, StatsSink,
};
use iobench::faults::faults_run;
use iobench::perfout::{self, HostProfile};
use iobench::readahead::{readahead_cell_run, readahead_run};
use iobench::runner::Runner;
use iobench::traceout;
use iobench::volume::volume_run;
use simkit::perfmon;
use volmgr::VolumeSpec;

/// Counting allocator so `--perf` can report allocation churn per phase.
/// Counting is gated on a relaxed atomic and costs nothing until `--perf`
/// flips it on; the underlying allocator is still `std::alloc::System`.
#[global_allocator]
static ALLOC: perfmon::CountingAlloc = perfmon::CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: iobench fig9|fig10|fig11|fig12|extents|aging|musbus|alternatives|\
         extentfs|write-limit|free-behind|streams|volume|faults|readahead|all \
         [--quick] [--jobs N] [--streams N] [--volume <spec>] \
         [--faults <spec>] \
         [--readahead fixed|adaptive|off] [--stride <bytes>] \
         [--record-size <bytes>] \
         [--age-ops N] [--utilization F] [--inline-threshold B] \
         [--stats-json <path>] [--trace <path>] [--perf <path>] \
         [--timeline <path>] [--sample-every <N[us|ms|s]>]\n\
         volume specs: raid0:<spindles>:<stripe> | raid1:<spindles> | \
         raid5:<spindles>:<stripe>  (e.g. raid0:4:64k, raid1:2, raid5:5:64k)\n\
         fault plans: comma-separated seed=N | media=<sp>:<lba>+<nsect> | \
         transient=<sp>:<lba>+<nsect>x<count> | die=<sp>@<time> | \
         cut=<time>  (e.g. seed=7,transient=0:100+64x2,die=1@2s); applied \
         to the --volume array (default raid5:5:64k)\n\
         readahead: --readahead is one of fixed|adaptive|off, --stride and \
         --record-size are positive multiples of 8192 bytes (k/m suffixes \
         accepted) with stride >= record; given any of them the experiment \
         runs that one cell instead of the sweep\n\
         aging: --age-ops is a positive churn budget per round, \
         --utilization a target fill in (0, 1), --inline-threshold an \
         extentfs inline-file cutoff in bytes (0..=8192)\n\
         profiling: --perf writes an iobench-perf/v1 host profile, \
         --timeline an iobench-timeline/v1 sampled-metrics document; \
         --sample-every takes a positive integer with optional us/ms/s \
         suffix (virtual time, default 10ms) and requires --timeline"
    );
    std::process::exit(2);
}

/// Extracts `--flag <value>` from `args`, if present.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() || args[i + 1].starts_with("--") {
        eprintln!("{flag} requires a value");
        usage();
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Extracts `--flag N` (a positive count) from `args`, if present.
fn take_count_flag(args: &mut Vec<String>, flag: &str) -> Option<usize> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a count argument");
        usage();
    }
    let n: usize = match args[i + 1].parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} requires a positive count");
            usage();
        }
    };
    args.remove(i + 1);
    args.remove(i);
    Some(n)
}

fn main() {
    simkit::tune_host_allocator();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats_path = take_value_flag(&mut args, "--stats-json");
    let trace_path = take_value_flag(&mut args, "--trace");
    let perf_path = take_value_flag(&mut args, "--perf");
    let timeline_path = take_value_flag(&mut args, "--timeline");
    let sample_every_arg = take_value_flag(&mut args, "--sample-every");
    if sample_every_arg.is_some() && timeline_path.is_none() {
        eprintln!("--sample-every requires --timeline (there is nowhere to put samples)");
        usage();
    }
    // Sampling is active iff `--timeline` was given; the interval defaults
    // to 10ms of virtual time.
    let sample_every = timeline_path.as_ref().map(|_| {
        sample_every_arg.as_deref().map_or_else(
            || simkit::SimDuration::from_millis(10),
            |s| {
                perfout::parse_sample_every(s).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                })
            },
        )
    });
    let jobs = take_count_flag(&mut args, "--jobs").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let nstreams = take_count_flag(&mut args, "--streams").map(|n| n as u32);
    let age_ops = take_count_flag(&mut args, "--age-ops");
    let utilization = take_value_flag(&mut args, "--utilization").map(|s| match s.parse::<f64>() {
        Ok(f) if f > 0.0 && f < 1.0 => f,
        _ => {
            eprintln!("--utilization {s}: expected a fraction strictly between 0 and 1");
            usage();
        }
    });
    let inline_threshold =
        take_value_flag(&mut args, "--inline-threshold").map(|s| match s.parse::<usize>() {
            Ok(b) if b <= 8192 => b,
            _ => {
                eprintln!("--inline-threshold {s}: expected a byte count of at most 8192");
                usage();
            }
        });
    let ra_policy = take_value_flag(&mut args, "--readahead").map(|s| {
        clufs::PrefetchPolicy::parse(&s).unwrap_or_else(|| {
            eprintln!("--readahead {s}: expected one of fixed|adaptive|off");
            usage();
        })
    });
    // `--stride`/`--record-size` take byte counts that must be positive
    // multiples of the 8192-byte block (k/m suffixes accepted).
    let block_multiple = |flag: &str, s: &str| -> u64 {
        let (digits, mult) = match s.strip_suffix(['k', 'K']) {
            Some(d) => (d, 1024u64),
            None => match s.strip_suffix(['m', 'M']) {
                Some(d) => (d, 1024 * 1024),
                None => (s, 1),
            },
        };
        match digits.parse::<u64>() {
            Ok(n) if n > 0 && (n * mult) % 8192 == 0 => n * mult,
            _ => {
                eprintln!("{flag} {s}: expected a positive multiple of 8192 bytes");
                usage();
            }
        }
    };
    let stride_bytes =
        take_value_flag(&mut args, "--stride").map(|s| block_multiple("--stride", &s));
    let record_bytes =
        take_value_flag(&mut args, "--record-size").map(|s| block_multiple("--record-size", &s));
    let ra_cell = if ra_policy.is_some() || stride_bytes.is_some() || record_bytes.is_some() {
        let stride = stride_bytes.unwrap_or(256 * 1024);
        let record = record_bytes.unwrap_or(8192);
        if stride < record {
            eprintln!(
                "--stride {stride} is smaller than --record-size {record}; \
                 records may not overlap"
            );
            usage();
        }
        Some((
            ra_policy.unwrap_or(clufs::PrefetchPolicy::Adaptive),
            stride / 1024,
            record / 1024,
        ))
    } else {
        None
    };
    let volume_spec = take_value_flag(&mut args, "--volume").map(|s| {
        VolumeSpec::parse(&s).unwrap_or_else(|e| {
            eprintln!("--volume {s}: {e}");
            usage();
        })
    });
    let fault_plan = take_value_flag(&mut args, "--faults").map(|s| {
        let plan = FaultPlan::parse(&s).unwrap_or_else(|e| {
            eprintln!("--faults {s}: {e}");
            usage();
        });
        // The plan configures the members of the target array; a clause
        // naming a spindle the array does not have would silently never
        // fire, so reject it up front.
        let width = volume_spec.as_ref().map_or(5, |v| v.spindles);
        if let Some(m) = plan.max_spindle() {
            if m >= width {
                eprintln!(
                    "--faults {s}: plan names spindle {m} but the target \
                     array has only {width} (0..={})",
                    width - 1
                );
                usage();
            }
        }
        plan
    });
    let quick = match args.iter().position(|a| a == "--quick") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    // Every recognized flag has been consumed: anything left that looks
    // like a flag is a typo the user should hear about, not a silent no-op.
    if let Some(bad) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("unrecognized flag: {bad}");
        usage();
    }
    if args.len() > 1 {
        eprintln!("unexpected argument: {}", args[1]);
        usage();
    }
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    // A bare `--faults <spec>` selects the faults experiment; a bare
    // `--streams N` selects the streams experiment; a bare
    // `--volume <spec>` selects the volume experiment; a bare aging knob
    // selects the aging study.
    let default_what = if ra_cell.is_some() {
        "readahead"
    } else if fault_plan.is_some() {
        "faults"
    } else if nstreams.is_some() {
        "streams"
    } else if volume_spec.is_some() {
        "volume"
    } else if age_ops.is_some() || utilization.is_some() || inline_threshold.is_some() {
        "aging"
    } else {
        "all"
    };
    let what = args.first().map(|s| s.as_str()).unwrap_or(default_what);
    let nstreams = nstreams.unwrap_or(4);
    let mut aging_params = if quick {
        AgingParams::quick()
    } else {
        AgingParams::paper()
    };
    if let Some(n) = age_ops {
        aging_params.ops_per_round = n;
    }
    if let Some(f) = utilization {
        aging_params.target_fill = f;
    }
    if let Some(b) = inline_threshold {
        aging_params.inline_max = b;
    }

    let sink = if trace_path.is_some() || stats_path.is_some() || timeline_path.is_some() {
        Some(StatsSink::with_capture(trace_path.is_some(), sample_every))
    } else {
        None
    };
    if perf_path.is_some() {
        perfmon::set_enabled(true);
    }
    let runner = Runner::new(jobs, sink.as_ref());

    let run_fig10 = |runner: &Runner| {
        let data = fig10_run(scale, runner);
        println!("Figure 10: IObench transfer rates in KB/second\n");
        println!("{}", fig10_table(&data));
        println!("Figure 11: IObench transfer rate ratios\n");
        println!("{}", fig11_table(&data));
    };

    match what {
        "fig9" => {
            println!("Figure 9: IObench run descriptions\n");
            println!("{}", fig9_table());
        }
        "fig10" | "fig11" => run_fig10(&runner),
        "fig12" => {
            let (table, _, _) = fig12_run(scale, &runner);
            println!("Figure 12: System CPU comparison\n");
            println!("{table}");
        }
        "extents" => {
            let (table, _, _) = extents_run(quick, &runner);
            println!("Allocator contiguity study (paper: 1.5MB best / 62KB aged)\n");
            println!("{table}");
        }
        "aging" => {
            let (table, _) = aging_run(aging_params, quick, &runner);
            println!("Clustering decay under aging (UFS vs extentfs)\n");
            println!("{table}");
        }
        "musbus" => {
            let (table, ratio) = musbus_run(&runner);
            println!("MusBus-like timesharing mix (expect only slight improvement)\n");
            println!("{table}");
            println!("old/new iteration-time ratio: {ratio:.2}");
        }
        "alternatives" => {
            println!("Rejected alternatives (tuning-only, driver clustering)\n");
            println!("{}", rejected_alternatives_run(scale, &runner));
        }
        "extentfs" => {
            println!("Extent-based file system vs clustered UFS\n");
            println!("{}", extentfs_comparison_run(scale, &runner));
        }
        "write-limit" => {
            println!("Write-limit sweep (fairness vs throughput)\n");
            println!("{}", write_limit_sweep_run(scale, &runner));
        }
        "free-behind" => {
            let (table, _, _) = free_behind_run(scale, &runner);
            println!("Free-behind cache survival\n");
            println!("{table}");
        }
        "streams" => {
            println!("Multi-stream fairness ({nstreams} tagged streams)\n");
            println!("{}", streams_run(nstreams, scale, &runner));
        }
        "volume" => {
            println!("RAID volumes: cluster size x stripe width x spindle count\n");
            println!("{}", volume_run(volume_spec.as_ref(), scale, &runner));
        }
        "faults" => {
            println!("Fault injection: I/O error path, degraded service, and rebuild\n");
            println!(
                "{}",
                faults_run(fault_plan.as_ref(), volume_spec.as_ref(), quick, &runner)
            );
        }
        "readahead" => {
            println!("Adaptive readahead: strided reads vs prefetch policy\n");
            match ra_cell {
                Some((policy, stride_kb, record_kb)) => println!(
                    "{}",
                    readahead_cell_run(policy, stride_kb, record_kb, scale, &runner)
                ),
                None => println!("{}", readahead_run(scale, &runner)),
            }
        }
        "all" => {
            println!("Figure 9: IObench run descriptions\n");
            println!("{}", fig9_table());
            run_fig10(&runner);
            let (t12, _, _) = fig12_run(scale, &runner);
            println!("Figure 12: System CPU comparison\n");
            println!("{t12}");
            let (tx, _, _) = extents_run(quick, &runner);
            println!("Allocator contiguity study\n");
            println!("{tx}");
            let (ta, _) = aging_run(aging_params, quick, &runner);
            println!("Clustering decay under aging (UFS vs extentfs)\n");
            println!("{ta}");
            let (tm, r) = musbus_run(&runner);
            println!("MusBus-like timesharing mix\n");
            println!("{tm}");
            println!("old/new iteration-time ratio: {r:.2}\n");
            println!("Rejected alternatives\n");
            println!("{}", rejected_alternatives_run(scale, &runner));
            println!("Extent-based file system vs clustered UFS\n");
            println!("{}", extentfs_comparison_run(scale, &runner));
            println!("Write-limit sweep\n");
            println!("{}", write_limit_sweep_run(scale, &runner));
            let (tf, _, _) = free_behind_run(scale, &runner);
            println!("Free-behind cache survival\n");
            println!("{tf}");
            println!("Multi-stream fairness ({nstreams} tagged streams)\n");
            println!("{}", streams_run(nstreams, scale, &runner));
            println!("RAID volumes: cluster size x stripe width x spindle count\n");
            println!("{}", volume_run(volume_spec.as_ref(), scale, &runner));
            println!("Fault injection: I/O error path, degraded service, and rebuild\n");
            println!(
                "{}",
                faults_run(fault_plan.as_ref(), volume_spec.as_ref(), quick, &runner)
            );
            println!("Adaptive readahead: strided reads vs prefetch policy\n");
            println!("{}", readahead_run(scale, &runner));
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }

    if let (Some(path), Some(sink)) = (&stats_path, &sink) {
        match std::fs::write(path, sink.to_json(what)) {
            Ok(()) => eprintln!("wrote {} run snapshot(s) to {path}", sink.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let (Some(path), Some(sink)) = (&timeline_path, &sink) {
        match std::fs::write(path, sink.timeline_json(what)) {
            Ok(()) => eprintln!("wrote {} sampled run timeline(s) to {path}", sink.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let (Some(path), Some(sink)) = (&trace_path, sink) {
        // With `--timeline` too, the sampled series ride along as Perfetto
        // counter tracks. Cloned before `into_traces` consumes the sink.
        let timelines = if timeline_path.is_some() {
            sink.timelines()
        } else {
            Vec::new()
        };
        // Consuming the sink avoids cloning every span on the emit path.
        let traces = sink.into_traces();
        println!("Per-run latency attribution (from --trace spans)\n");
        for (id, spans) in &traces {
            println!("{id}:");
            println!("{}", traceout::attribution_table(spans));
        }
        if let Some((id, spans)) = traces.first() {
            println!("Per-fault action timeline (first tree per root kind, {id})\n");
            println!("{}", traceout::timeline_table(spans, 1));
        }
        match std::fs::write(
            path,
            traceout::chrome_trace_json_with_counters(&traces, &timelines),
        ) {
            Ok(()) => eprintln!(
                "wrote {} span(s) across {} run(s) to {path}",
                traces.iter().map(|(_, s)| s.len()).sum::<usize>(),
                traces.len()
            ),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &perf_path {
        // Flush the main thread's buffer by hand (worker threads flushed
        // when they exited), then drain everything into the report.
        perfmon::flush_thread();
        let (records, dropped) = perfmon::take_records();
        let profile = HostProfile::build(&records, dropped);
        eprint!("{}", profile.summary(what, jobs));
        match std::fs::write(path, profile.to_json(what, jobs)) {
            Ok(()) => eprintln!(
                "wrote host profile ({} phase record(s)) to {path}",
                records.len()
            ),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
