//! Parallel run fan-out for experiments.
//!
//! Each experiment describes its simulated runs as a list of [`RunPlan`]s —
//! independent closures that build and drive a fresh [`Sim`] — and hands
//! them to a [`Runner`], which executes them across worker threads
//! (`iobench --jobs N`). A `Sim` is `Rc`/`RefCell`-based and `!Send`, so
//! each run is constructed *and* executed entirely on one worker thread;
//! only the run's plain-data outcome (the experiment's value, the
//! serialized metrics snapshot, the drained spans) crosses back.
//!
//! Determinism contract: every run is a pure function of virtual time, and
//! outcomes are re-emitted to the [`StatsSink`] in plan order on the
//! calling thread — so stdout, `--stats-json`, and `--trace` are
//! byte-identical for any `--jobs` value (see DESIGN.md "Wall-clock
//! performance").

use simkit::{Sim, Span};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiments::StatsSink;

/// What a worker captures from a run, derived from the sink once up front
/// so workers never touch the (non-`Sync`) sink itself.
#[derive(Clone, Copy)]
struct RunSpec {
    tracing: bool,
    capture: bool,
}

/// A finished run parked in its plan-order slot until the scope joins.
type DoneSlot<T> = Mutex<Option<(String, RunOutcome<T>)>>;

/// Everything that leaves a worker thread for one run.
struct RunOutcome<T> {
    value: T,
    stats_json: Option<String>,
    spans: Vec<Span>,
}

/// One independent simulated run: an id (`experiment/run` path style, e.g.
/// `fig10/A/FSR`) plus a closure that drives a fresh sim to the
/// experiment's value.
pub struct RunPlan<T> {
    id: String,
    body: Box<dyn FnOnce(&Sim) -> T + Send>,
}

impl<T> RunPlan<T> {
    /// A plan that runs `body` against a sim the runner builds for it.
    pub fn new(id: impl Into<String>, body: impl FnOnce(&Sim) -> T + Send + 'static) -> RunPlan<T> {
        RunPlan {
            id: id.into(),
            body: Box::new(body),
        }
    }
}

/// Builds the run's sim, drives the plan, and packages what must cross
/// back to the calling thread. Runs entirely on one thread.
fn execute<T>(spec: RunSpec, plan: RunPlan<T>) -> (String, RunOutcome<T>) {
    let sim = Sim::new();
    if spec.tracing {
        sim.tracer().set_enabled(true);
    }
    let value = (plan.body)(&sim);
    let stats_json = spec.capture.then(|| sim.stats().to_json());
    let spans = if spec.tracing {
        sim.tracer().take_spans()
    } else {
        Vec::new()
    };
    (
        plan.id,
        RunOutcome {
            value,
            stats_json,
            spans,
        },
    )
}

/// Executes [`RunPlan`]s across up to `jobs` OS threads, then re-emits
/// outcomes (sink pushes, return order) in deterministic plan order.
pub struct Runner<'a> {
    jobs: usize,
    sink: Option<&'a StatsSink>,
}

impl<'a> Runner<'a> {
    /// A runner using up to `jobs` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero (the CLI rejects it earlier with usage).
    pub fn new(jobs: usize, sink: Option<&'a StatsSink>) -> Runner<'a> {
        assert!(jobs >= 1, "jobs must be at least 1");
        Runner { jobs, sink }
    }

    /// A single-threaded runner: behaves exactly like the pre-parallel
    /// harness (runs execute in plan order on the calling thread).
    pub fn serial(sink: Option<&'a StatsSink>) -> Runner<'a> {
        Runner::new(1, sink)
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached sink, if any.
    pub fn sink(&self) -> Option<&'a StatsSink> {
        self.sink
    }

    /// Executes the plans — concurrently when this runner has more than
    /// one job — and returns their values in plan order. Metrics
    /// snapshots and spans reach the sink in plan order regardless of
    /// which worker finished first.
    pub fn run<T: Send>(&self, plans: Vec<RunPlan<T>>) -> Vec<T> {
        let spec = RunSpec {
            tracing: self.sink.is_some_and(|s| s.tracing()),
            capture: self.sink.is_some(),
        };
        let n = plans.len();
        let workers = self.jobs.min(n);
        let outcomes: Vec<(String, RunOutcome<T>)> = if workers <= 1 {
            plans.into_iter().map(|p| execute(spec, p)).collect()
        } else {
            // Work-stealing by atomic index: each worker claims the next
            // unclaimed plan, runs it to completion, and parks the outcome
            // in its slot. `thread::scope` joins (and propagates panics)
            // before we read the slots back in order.
            let queue: Vec<Mutex<Option<RunPlan<T>>>> =
                plans.into_iter().map(|p| Mutex::new(Some(p))).collect();
            let done: Vec<DoneSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let plan = queue[i].lock().unwrap().take().expect("plan claimed twice");
                        *done[i].lock().unwrap() = Some(execute(spec, plan));
                    });
                }
            });
            done.into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("worker poisoned its outcome slot")
                        .expect("worker finished without an outcome")
                })
                .collect()
        };
        outcomes
            .into_iter()
            .map(|(id, out)| {
                if let Some(sink) = self.sink {
                    sink.push_outcome(&id, out.stats_json, out.spans);
                }
                out.value
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans(n: usize) -> Vec<RunPlan<usize>> {
        (0..n)
            .map(|i| RunPlan::new(format!("test/{i}"), move |_sim| i * 10))
            .collect()
    }

    #[test]
    fn serial_preserves_plan_order() {
        let out = Runner::serial(None).run(plans(5));
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn parallel_preserves_plan_order() {
        let out = Runner::new(4, None).run(plans(9));
        assert_eq!(out, (0..9).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sink_receives_outcomes_in_plan_order() {
        let serial = StatsSink::new();
        Runner::serial(Some(&serial)).run(plans(6));
        let parallel = StatsSink::new();
        Runner::new(3, Some(&parallel)).run(plans(6));
        assert_eq!(serial.runs(), parallel.runs());
        assert_eq!(
            serial
                .runs()
                .iter()
                .map(|(id, _)| id.clone())
                .collect::<Vec<_>>(),
            (0..6).map(|i| format!("test/{i}")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_jobs_than_plans_is_fine() {
        let out = Runner::new(16, None).run(plans(2));
        assert_eq!(out, vec![0, 10]);
    }
}
