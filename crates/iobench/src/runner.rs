//! Parallel run fan-out for experiments.
//!
//! Each experiment describes its simulated runs as a list of [`RunPlan`]s —
//! independent closures that build and drive a fresh [`Sim`] — and hands
//! them to a [`Runner`], which executes them across worker threads
//! (`iobench --jobs N`). A `Sim` is `Rc`/`RefCell`-based and `!Send`, so
//! each run is constructed *and* executed entirely on one worker thread;
//! only the run's plain-data outcome (the experiment's value, the
//! serialized metrics snapshot, the drained spans, the sampled timeline)
//! crosses back.
//!
//! Determinism contract: every run is a pure function of virtual time, and
//! outcomes are re-emitted to the [`StatsSink`] in plan order on the
//! calling thread — so stdout, `--stats-json`, `--trace`, and `--timeline`
//! are byte-identical for any `--jobs` value (see DESIGN.md "Wall-clock
//! performance").
//!
//! The runner is also the primary subject of the wall-clock profiler
//! (`simkit::perfmon`, behind `iobench --perf`): every stage of a run's
//! life is a named phase — `worker.lifetime` brackets each worker thread
//! (and the serial loop), `runner.pickup` the work-stealing claim,
//! `run.setup`/`run.drive`/`run.capture` the run itself (drive is labeled
//! with the run id), `runner.fanout_wait` the main thread's join, and
//! `runner.emit` the plan-order re-emit. Contended acquisitions of the
//! queue and outcome slots surface as `lock.queue`/`lock.outcome` records,
//! so cross-thread blocking is measured rather than guessed at. None of
//! this touches virtual time: profiled runs produce byte-identical
//! virtual-time outputs.

use simkit::perfmon::{self, Series};
use simkit::{Sim, SimDuration, Span};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiments::StatsSink;

/// What a worker captures from a run, derived from the sink once up front
/// so workers never touch the (non-`Sync`) sink itself.
#[derive(Clone, Copy)]
struct RunSpec {
    tracing: bool,
    capture: bool,
    /// Telemetry sampling interval (the sink's), when sampling.
    sample_every: Option<SimDuration>,
}

/// A finished run parked in its plan-order slot until the scope joins.
type DoneSlot<T> = Mutex<Option<(String, RunOutcome<T>)>>;

/// Everything that leaves a worker thread for one run.
struct RunOutcome<T> {
    value: T,
    stats_json: Option<String>,
    spans: Vec<Span>,
    timeline: Vec<Series>,
}

/// One independent simulated run: an id (`experiment/run` path style, e.g.
/// `fig10/A/FSR`) plus a closure that drives a fresh sim to the
/// experiment's value.
pub struct RunPlan<T> {
    id: String,
    body: Box<dyn FnOnce(&Sim) -> T + Send>,
}

impl<T> RunPlan<T> {
    /// A plan that runs `body` against a sim the runner builds for it.
    pub fn new(id: impl Into<String>, body: impl FnOnce(&Sim) -> T + Send + 'static) -> RunPlan<T> {
        RunPlan {
            id: id.into(),
            body: Box::new(body),
        }
    }
}

/// Builds the run's sim, drives the plan, and packages what must cross
/// back to the calling thread. Runs entirely on one thread.
fn execute<T>(spec: RunSpec, plan: RunPlan<T>) -> (String, RunOutcome<T>) {
    let setup = perfmon::phase("run.setup");
    let sim = Sim::new();
    if spec.tracing {
        sim.tracer().set_enabled(true);
    }
    if let Some(every) = spec.sample_every {
        sim.telemetry()
            .start(&sim, every, StatsSink::MAX_SAMPLES_PER_RUN);
    }
    drop(setup);
    let value = {
        let _drive = perfmon::phase_labeled("run.drive", &plan.id);
        (plan.body)(&sim)
    };
    let _capture = perfmon::phase("run.capture");
    let stats_json = spec.capture.then(|| sim.stats().to_json());
    let spans = if spec.tracing {
        sim.tracer().take_spans()
    } else {
        Vec::new()
    };
    let timeline = if spec.sample_every.is_some() {
        sim.telemetry().take_series()
    } else {
        Vec::new()
    };
    (
        plan.id,
        RunOutcome {
            value,
            stats_json,
            spans,
            timeline,
        },
    )
}

/// Executes [`RunPlan`]s across up to `jobs` OS threads, then re-emits
/// outcomes (sink pushes, return order) in deterministic plan order.
pub struct Runner<'a> {
    jobs: usize,
    sink: Option<&'a StatsSink>,
}

impl<'a> Runner<'a> {
    /// A runner using up to `jobs` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero (the CLI rejects it earlier with usage).
    pub fn new(jobs: usize, sink: Option<&'a StatsSink>) -> Runner<'a> {
        assert!(jobs >= 1, "jobs must be at least 1");
        Runner { jobs, sink }
    }

    /// A single-threaded runner: behaves exactly like the pre-parallel
    /// harness (runs execute in plan order on the calling thread).
    pub fn serial(sink: Option<&'a StatsSink>) -> Runner<'a> {
        Runner::new(1, sink)
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached sink, if any.
    pub fn sink(&self) -> Option<&'a StatsSink> {
        self.sink
    }

    /// Executes the plans — concurrently when this runner has more than
    /// one job — and returns their values in plan order. Metrics
    /// snapshots, spans, and timelines reach the sink in plan order
    /// regardless of which worker finished first.
    pub fn run<T: Send>(&self, plans: Vec<RunPlan<T>>) -> Vec<T> {
        let spec = RunSpec {
            tracing: self.sink.is_some_and(|s| s.tracing()),
            capture: self.sink.is_some(),
            sample_every: self.sink.and_then(|s| s.sample_every()),
        };
        let n = plans.len();
        let workers = self.jobs.min(n);
        let outcomes: Vec<(String, RunOutcome<T>)> = if workers <= 1 {
            // The serial loop is "worker 0" in the host profile so serial
            // and parallel reports share one shape.
            perfmon::set_worker(0);
            let lifetime = perfmon::phase("worker.lifetime");
            let out: Vec<_> = plans.into_iter().map(|p| execute(spec, p)).collect();
            drop(lifetime);
            perfmon::set_worker(perfmon::MAIN_THREAD);
            out
        } else {
            // Work-stealing by atomic index: each worker claims the next
            // unclaimed plan, runs it to completion, and parks the outcome
            // in its slot. `thread::scope` joins (and propagates panics)
            // before we read the slots back in order.
            let queue: Vec<Mutex<Option<RunPlan<T>>>> =
                plans.into_iter().map(|p| Mutex::new(Some(p))).collect();
            let done: Vec<DoneSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let _wait = perfmon::phase("runner.fanout_wait");
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (queue, done, next) = (&queue, &done, &next);
                    scope.spawn(move || {
                        perfmon::set_worker(w as u32);
                        {
                            let _lifetime = perfmon::phase("worker.lifetime");
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                let plan = {
                                    let _pickup = perfmon::phase("runner.pickup");
                                    perfmon::timed_lock(&queue[i], "lock.queue")
                                        .take()
                                        .expect("plan claimed twice")
                                };
                                let outcome = execute(spec, plan);
                                *perfmon::timed_lock(&done[i], "lock.outcome") = Some(outcome);
                            }
                        }
                        // Flush before the closure returns: `thread::scope`
                        // unblocks when the closure completes, but TLS
                        // destructors (the flush-on-exit backstop) run
                        // afterwards — a `take_records` right after the
                        // scope would race them and miss this worker.
                        perfmon::flush_thread();
                    });
                }
            });
            done.into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("worker poisoned its outcome slot")
                        .expect("worker finished without an outcome")
                })
                .collect()
        };
        let _emit = perfmon::phase("runner.emit");
        outcomes
            .into_iter()
            .map(|(id, out)| {
                if let Some(sink) = self.sink {
                    sink.push_outcome(&id, out.stats_json, out.spans, out.timeline);
                }
                out.value
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans(n: usize) -> Vec<RunPlan<usize>> {
        (0..n)
            .map(|i| RunPlan::new(format!("test/{i}"), move |_sim| i * 10))
            .collect()
    }

    #[test]
    fn serial_preserves_plan_order() {
        let out = Runner::serial(None).run(plans(5));
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn parallel_preserves_plan_order() {
        let out = Runner::new(4, None).run(plans(9));
        assert_eq!(out, (0..9).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sink_receives_outcomes_in_plan_order() {
        let serial = StatsSink::new();
        Runner::serial(Some(&serial)).run(plans(6));
        let parallel = StatsSink::new();
        Runner::new(3, Some(&parallel)).run(plans(6));
        assert_eq!(serial.runs(), parallel.runs());
        assert_eq!(
            serial
                .runs()
                .iter()
                .map(|(id, _)| id.clone())
                .collect::<Vec<_>>(),
            (0..6).map(|i| format!("test/{i}")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn more_jobs_than_plans_is_fine() {
        let out = Runner::new(16, None).run(plans(2));
        assert_eq!(out, vec![0, 10]);
    }

    #[test]
    fn sampling_sink_collects_timelines_in_plan_order() {
        let sampled = |jobs: usize| {
            let sink = StatsSink::with_capture(false, Some(simkit::SimDuration::from_millis(1)));
            let plans: Vec<RunPlan<()>> = (0..4)
                .map(|i| {
                    RunPlan::new(format!("test/{i}"), move |sim: &Sim| {
                        let c = sim.stats().counter("t.work");
                        let s = sim.clone();
                        sim.run_until(async move {
                            for _ in 0..=i {
                                c.inc();
                                s.sleep(simkit::SimDuration::from_millis(2)).await;
                            }
                        });
                    })
                })
                .collect();
            Runner::new(jobs, Some(&sink)).run(plans);
            sink.timeline_json("test")
        };
        let serial = sampled(1);
        let parallel = sampled(4);
        assert_eq!(serial, parallel, "timelines are jobs-invariant");
        assert!(serial.contains("\"t.work\""), "{serial}");
        assert!(serial.contains("iobench-timeline/v1"));
    }
}
