//! The allocator-contiguity study.
//!
//! "We tried several tests, ranging from filling up an entire partition
//! with one file to filling up the last 15% of a heavily fragmented /home
//! partition. In the best case, the average extent size was 1.5MB in a
//! 13MB file. In the worst case, the average extent size was 62KB in a
//! 16MB file."

use pagecache::PageCache;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simkit::Sim;
use ufs::World;
use vfs::{AccessMode, FileSystem, FsError, FsResult, Vnode};

/// Mean extent statistics for one probe file.
#[derive(Clone, Copy, Debug)]
pub struct ExtentStats {
    /// File size in bytes.
    pub file_bytes: u64,
    /// Number of physically contiguous extents.
    pub extents: usize,
    /// Mean extent size in bytes.
    pub mean_extent_bytes: f64,
    /// Largest extent in bytes.
    pub max_extent_bytes: u64,
}

/// Writes a probe file of `bytes` and measures its physical contiguity.
pub async fn probe_extents(world: &World, path: &str, bytes: u64) -> FsResult<ExtentStats> {
    let io = 8192usize;
    // Zero payload: contents are never read back, and the sparse sector
    // store does not materialize zero chunks, so probe files cost no host
    // memory no matter how large the partition is.
    let payload: Vec<u8> = vec![0; io];
    let f = world.fs.create(path).await?;
    let mut written = 0u64;
    while written < bytes {
        match f.write(written, &payload, AccessMode::Copy).await {
            Ok(()) => written += io as u64,
            Err(FsError::NoSpace) => break,
            Err(e) => return Err(e),
        }
    }
    f.fsync().await?;
    let extents = f.extents().await?;
    let total_blocks: u64 = extents.iter().map(|e| e.2 as u64).sum();
    let max = extents.iter().map(|e| e.2 as u64).max().unwrap_or(0);
    Ok(ExtentStats {
        file_bytes: written,
        extents: extents.len(),
        mean_extent_bytes: if extents.is_empty() {
            0.0
        } else {
            total_blocks as f64 * 8192.0 / extents.len() as f64
        },
        max_extent_bytes: max * 8192,
    })
}

/// Churn parameters for aging a file system.
#[derive(Clone, Copy, Debug)]
pub struct AgingOptions {
    /// Target fullness (fraction of data blocks) after churn.
    pub target_fill: f64,
    /// Number of create/remove churn rounds.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AgingOptions {
    fn default() -> Self {
        AgingOptions {
            target_fill: 0.80,
            rounds: 3,
            seed: 0xA6E,
        }
    }
}

/// Ages the file system like a `/home` partition: repeatedly fills it with
/// files of mixed sizes, then deletes a random subset, leaving scattered
/// free space. Returns the number of files left on disk.
pub async fn age_filesystem(world: &World, opts: AgingOptions) -> FsResult<usize> {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut alive: Vec<String> = Vec::new();
    let mut counter = 0usize;
    world.fs.mkdir("home").await?;
    let capacity = world.fs.capacity_blocks();
    // One payload for all rounds: the fill loop creates thousands of
    // files and a per-file 8 KB allocation was pure churn. It is all zeros
    // so the sparse sector store never materializes the file data (only
    // metadata blocks occupy host memory).
    let payload = vec![0u8; 8192];
    for _round in 0..opts.rounds {
        // Fill toward the target.
        loop {
            let used = capacity - world.fs.free_blocks();
            if used as f64 / capacity as f64 >= opts.target_fill {
                break;
            }
            let name = format!("home/f{counter}");
            counter += 1;
            // Mixed sizes: mostly small, some large (log-ish distribution).
            let kb = match rng.gen_range(0..10) {
                0..=5 => rng.gen_range(1..16),   // small
                6..=8 => rng.gen_range(16..256), // medium
                _ => rng.gen_range(256..2048),   // large
            };
            let f = world.fs.create(&name).await?;
            let mut off = 0u64;
            let mut failed = false;
            while off < kb as u64 * 1024 {
                match f.write(off, &payload, AccessMode::Copy).await {
                    Ok(()) => off += 8192,
                    Err(FsError::NoSpace) => {
                        failed = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            f.fsync().await?;
            alive.push(name);
            if failed {
                break;
            }
        }
        // Delete a random 40% to punch holes.
        let mut survivors = Vec::new();
        for name in alive.drain(..) {
            if rng.gen_bool(0.4) {
                world.fs.remove(&name).await?;
            } else {
                survivors.push(name);
            }
        }
        alive = survivors;
    }
    Ok(alive.len())
}

/// The hooks the clustering-decay study needs beyond [`FileSystem`]:
/// capacity accounting, extent maps, cache invalidation, and namespace
/// placement (UFS churns under `home/`, extentfs is flat).
#[allow(async_fn_in_trait)] // Single-threaded simulation: futures are !Send by design.
pub trait AgedFs {
    /// The vnode type the churn drives.
    type File: Vnode;

    /// One-time setup before churn (UFS: `mkdir home`).
    async fn prepare(&self) -> FsResult<()> {
        Ok(())
    }

    /// Creates (or truncates) the churn file named `stem`.
    async fn create(&self, stem: &str) -> FsResult<Self::File>;

    /// Removes the churn file named `stem`.
    async fn remove(&self, stem: &str) -> FsResult<()>;

    /// Total data blocks in the volume.
    fn capacity_blocks(&self) -> u64;

    /// Free data blocks.
    fn free_blocks(&self) -> u64;

    /// Drops the file's cached pages so a timed read hits the disk.
    fn invalidate(&self, f: &Self::File);

    /// The file's physical extent map as `(logical, physical, blocks)`.
    async fn extent_map(&self, f: &Self::File) -> FsResult<Vec<(u64, u64, u32)>>;
}

impl AgedFs for World {
    type File = ufs::UfsFile;

    async fn prepare(&self) -> FsResult<()> {
        self.fs.mkdir("home").await
    }

    async fn create(&self, stem: &str) -> FsResult<ufs::UfsFile> {
        self.fs.create(&format!("home/{stem}")).await
    }

    async fn remove(&self, stem: &str) -> FsResult<()> {
        self.fs.remove(&format!("home/{stem}")).await
    }

    fn capacity_blocks(&self) -> u64 {
        self.fs.capacity_blocks()
    }

    fn free_blocks(&self) -> u64 {
        self.fs.free_blocks()
    }

    fn invalidate(&self, f: &ufs::UfsFile) {
        self.cache.invalidate_vnode(f.id(), 0);
    }

    async fn extent_map(&self, f: &ufs::UfsFile) -> FsResult<Vec<(u64, u64, u32)>> {
        f.extents().await
    }
}

/// An extentfs mount plus the cache handle the decay probe needs.
pub struct ExtAgedWorld {
    /// The mounted extent file system.
    pub fs: extentfs::ExtentFs,
    /// The page cache it runs on.
    pub cache: PageCache,
}

impl AgedFs for ExtAgedWorld {
    type File = extentfs::ExtFile;

    async fn create(&self, stem: &str) -> FsResult<extentfs::ExtFile> {
        self.fs.create(stem).await
    }

    async fn remove(&self, stem: &str) -> FsResult<()> {
        self.fs.remove(stem).await
    }

    fn capacity_blocks(&self) -> u64 {
        self.fs.capacity_blocks()
    }

    fn free_blocks(&self) -> u64 {
        self.fs.free_blocks()
    }

    fn invalidate(&self, f: &extentfs::ExtFile) {
        self.cache.invalidate_vnode(f.id(), 0);
    }

    async fn extent_map(&self, f: &extentfs::ExtFile) -> FsResult<Vec<(u64, u64, u32)>> {
        f.extents().await
    }
}

/// Sizing for the clustering-decay study.
#[derive(Clone, Copy, Debug)]
pub struct DecayOptions {
    /// Churn rounds; the study emits `rounds + 1` points (round 0 is the
    /// fresh file system).
    pub rounds: usize,
    /// Target fullness each fill phase churns toward.
    pub target_fill: f64,
    /// Cap on file creations per fill phase (the `--age-ops` budget).
    pub ops_per_round: usize,
    /// Probe file size.
    pub probe_bytes: u64,
    /// Churn RNG seed.
    pub seed: u64,
}

/// One measured point of clustering decay: how fragmented a probe file
/// written at this age comes out, and what that does to sequential reads.
#[derive(Clone, Copy, Debug)]
pub struct DecayPoint {
    /// Churn rounds completed before the probe (0 = fresh).
    pub round: usize,
    /// Mean extent length of the probe file, in KB.
    pub mean_extent_kb: f64,
    /// Fraction of logically adjacent block pairs that are physically
    /// adjacent (1.0 = one extent).
    pub contiguity_fraction: f64,
    /// Cold sequential re-read throughput of the probe, KB/s.
    pub seq_read_kb_s: f64,
}

/// Writes a probe file, measures its extent map and cold sequential-read
/// throughput, then removes it.
async fn decay_probe<F: AgedFs>(
    sim: &Sim,
    fs: &F,
    round: usize,
    probe_bytes: u64,
) -> FsResult<DecayPoint> {
    // Zeros: never read for content, never materialized by the store.
    let payload = vec![0u8; 8192];
    let f = fs.create("probe.dat").await?;
    let mut written = 0u64;
    while written < probe_bytes {
        match f.write(written, &payload, AccessMode::Copy).await {
            Ok(()) => written += payload.len() as u64,
            Err(FsError::NoSpace) => break,
            Err(e) => return Err(e),
        }
    }
    f.fsync().await?;
    let extents = fs.extent_map(&f).await?;
    let blocks: u64 = extents.iter().map(|e| e.2 as u64).sum();
    let adjacent: u64 = extents.iter().map(|e| e.2 as u64 - 1).sum();
    let contiguity = if blocks > 1 {
        adjacent as f64 / (blocks - 1) as f64
    } else {
        1.0
    };
    let mean_extent_kb = if extents.is_empty() {
        0.0
    } else {
        blocks as f64 * 8.0 / extents.len() as f64
    };
    fs.invalidate(&f);
    let t0 = sim.now();
    let mut buf = vec![0u8; 8192];
    let mut off = 0u64;
    while off < written {
        let n = f.read_into(off, &mut buf, AccessMode::Copy).await?;
        if n == 0 {
            break;
        }
        off += n as u64;
    }
    let elapsed = sim.now().duration_since(t0);
    let seq_read_kb_s = if elapsed.is_zero() {
        0.0
    } else {
        off as f64 / 1024.0 / elapsed.as_secs_f64()
    };
    fs.remove("probe.dat").await?;
    Ok(DecayPoint {
        round,
        mean_extent_kb,
        contiguity_fraction: contiguity,
        seq_read_kb_s,
    })
}

/// One churn round: fill toward the target utilization with mixed-size
/// files (bounded by the op budget), then delete a random 40%.
async fn churn_round<F: AgedFs>(
    fs: &F,
    rng: &mut SmallRng,
    alive: &mut Vec<String>,
    counter: &mut usize,
    opts: &DecayOptions,
) -> FsResult<()> {
    let capacity = fs.capacity_blocks();
    // Zeros: never read for content, never materialized by the store.
    let payload = vec![0u8; 8192];
    for _ in 0..opts.ops_per_round {
        let used = capacity - fs.free_blocks();
        if used as f64 / capacity as f64 >= opts.target_fill {
            break;
        }
        let name = format!("f{counter}");
        *counter += 1;
        let kb = match rng.gen_range(0..10) {
            0..=5 => rng.gen_range(1..16),
            6..=8 => rng.gen_range(16..256),
            _ => rng.gen_range(256..2048),
        };
        let f = match fs.create(&name).await {
            Ok(f) => f,
            // A full inode table ends the fill phase like a full disk.
            Err(FsError::NoInodes) => break,
            Err(e) => return Err(e),
        };
        let mut off = 0u64;
        let mut full = false;
        while off < kb as u64 * 1024 {
            match f.write(off, &payload, AccessMode::Copy).await {
                Ok(()) => off += 8192,
                Err(FsError::NoSpace) => {
                    full = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        f.fsync().await?;
        alive.push(name);
        if full {
            break;
        }
    }
    let mut survivors = Vec::new();
    for name in alive.drain(..) {
        if rng.gen_bool(0.4) {
            fs.remove(&name).await?;
        } else {
            survivors.push(name);
        }
    }
    *alive = survivors;
    Ok(())
}

/// The clustering-decay study: probes a fresh file system, then
/// alternates churn rounds with probes, tracking how allocator
/// contiguity (and with it sequential-read throughput) decays with age.
pub async fn clustering_decay<F: AgedFs>(
    sim: &Sim,
    fs: &F,
    opts: &DecayOptions,
) -> FsResult<Vec<DecayPoint>> {
    fs.prepare().await?;
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut alive = Vec::new();
    let mut counter = 0usize;
    let mut points = vec![decay_probe(sim, fs, 0, opts.probe_bytes).await?];
    for round in 1..=opts.rounds {
        churn_round(fs, &mut rng, &mut alive, &mut counter, opts).await?;
        points.push(decay_probe(sim, fs, round, opts.probe_bytes).await?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper_world, Config, WorldOptions};

    #[test]
    fn fresh_fs_probe_is_highly_contiguous() {
        let sim = Sim::new();
        let s = sim.clone();
        let stats = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            probe_extents(&w, "probe", 2 << 20).await.unwrap()
        });
        assert_eq!(stats.file_bytes, 2 << 20);
        // A fresh fs should produce a handful of long extents (indirect
        // blocks interrupt the run), not block-sized fragments.
        assert!(
            stats.mean_extent_bytes > 256.0 * 1024.0,
            "mean extent {} too small",
            stats.mean_extent_bytes
        );
    }

    #[test]
    fn aged_fs_probe_is_more_fragmented() {
        let sim = Sim::new();
        let s = sim.clone();
        let (fresh, aged) = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w1 = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            let fresh = probe_extents(&w1, "probe", 1 << 20).await.unwrap();
            let w2 = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            age_filesystem(
                &w2,
                AgingOptions {
                    target_fill: 0.6,
                    rounds: 2,
                    seed: 3,
                },
            )
            .await
            .unwrap();
            let aged = probe_extents(&w2, "probe", 1 << 20).await.unwrap();
            (fresh, aged)
        });
        assert!(
            aged.mean_extent_bytes < fresh.mean_extent_bytes,
            "aging should fragment: fresh {} vs aged {}",
            fresh.mean_extent_bytes,
            aged.mean_extent_bytes
        );
        assert!(aged.file_bytes > 0);
    }
}
