//! The allocator-contiguity study.
//!
//! "We tried several tests, ranging from filling up an entire partition
//! with one file to filling up the last 15% of a heavily fragmented /home
//! partition. In the best case, the average extent size was 1.5MB in a
//! 13MB file. In the worst case, the average extent size was 62KB in a
//! 16MB file."

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ufs::World;
use vfs::{AccessMode, FileSystem, FsError, FsResult, Vnode};

/// Mean extent statistics for one probe file.
#[derive(Clone, Copy, Debug)]
pub struct ExtentStats {
    /// File size in bytes.
    pub file_bytes: u64,
    /// Number of physically contiguous extents.
    pub extents: usize,
    /// Mean extent size in bytes.
    pub mean_extent_bytes: f64,
    /// Largest extent in bytes.
    pub max_extent_bytes: u64,
}

/// Writes a probe file of `bytes` and measures its physical contiguity.
pub async fn probe_extents(world: &World, path: &str, bytes: u64) -> FsResult<ExtentStats> {
    let io = 8192usize;
    let payload: Vec<u8> = vec![0xA5; io];
    let f = world.fs.create(path).await?;
    let mut written = 0u64;
    while written < bytes {
        match f.write(written, &payload, AccessMode::Copy).await {
            Ok(()) => written += io as u64,
            Err(FsError::NoSpace) => break,
            Err(e) => return Err(e),
        }
    }
    f.fsync().await?;
    let extents = f.extents().await?;
    let total_blocks: u64 = extents.iter().map(|e| e.2 as u64).sum();
    let max = extents.iter().map(|e| e.2 as u64).max().unwrap_or(0);
    Ok(ExtentStats {
        file_bytes: written,
        extents: extents.len(),
        mean_extent_bytes: if extents.is_empty() {
            0.0
        } else {
            total_blocks as f64 * 8192.0 / extents.len() as f64
        },
        max_extent_bytes: max * 8192,
    })
}

/// Churn parameters for aging a file system.
#[derive(Clone, Copy, Debug)]
pub struct AgingOptions {
    /// Target fullness (fraction of data blocks) after churn.
    pub target_fill: f64,
    /// Number of create/remove churn rounds.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AgingOptions {
    fn default() -> Self {
        AgingOptions {
            target_fill: 0.80,
            rounds: 3,
            seed: 0xA6E,
        }
    }
}

/// Ages the file system like a `/home` partition: repeatedly fills it with
/// files of mixed sizes, then deletes a random subset, leaving scattered
/// free space. Returns the number of files left on disk.
pub async fn age_filesystem(world: &World, opts: AgingOptions) -> FsResult<usize> {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut alive: Vec<String> = Vec::new();
    let mut counter = 0usize;
    world.fs.mkdir("home").await?;
    let capacity = world.fs.capacity_blocks();
    for round in 0..opts.rounds {
        // One payload per round, not per file: the fill loop creates
        // thousands of files and the 8 KB allocation was pure churn.
        let payload = vec![round as u8; 8192];
        // Fill toward the target.
        loop {
            let used = capacity - world.fs.free_blocks();
            if used as f64 / capacity as f64 >= opts.target_fill {
                break;
            }
            let name = format!("home/f{counter}");
            counter += 1;
            // Mixed sizes: mostly small, some large (log-ish distribution).
            let kb = match rng.gen_range(0..10) {
                0..=5 => rng.gen_range(1..16),   // small
                6..=8 => rng.gen_range(16..256), // medium
                _ => rng.gen_range(256..2048),   // large
            };
            let f = world.fs.create(&name).await?;
            let mut off = 0u64;
            let mut failed = false;
            while off < kb as u64 * 1024 {
                match f.write(off, &payload, AccessMode::Copy).await {
                    Ok(()) => off += 8192,
                    Err(FsError::NoSpace) => {
                        failed = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            f.fsync().await?;
            alive.push(name);
            if failed {
                break;
            }
        }
        // Delete a random 40% to punch holes.
        let mut survivors = Vec::new();
        for name in alive.drain(..) {
            if rng.gen_bool(0.4) {
                world.fs.remove(&name).await?;
            } else {
                survivors.push(name);
            }
        }
        alive = survivors;
    }
    Ok(alive.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{paper_world, Config, WorldOptions};
    use simkit::Sim;

    #[test]
    fn fresh_fs_probe_is_highly_contiguous() {
        let sim = Sim::new();
        let s = sim.clone();
        let stats = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            probe_extents(&w, "probe", 2 << 20).await.unwrap()
        });
        assert_eq!(stats.file_bytes, 2 << 20);
        // A fresh fs should produce a handful of long extents (indirect
        // blocks interrupt the run), not block-sized fragments.
        assert!(
            stats.mean_extent_bytes > 256.0 * 1024.0,
            "mean extent {} too small",
            stats.mean_extent_bytes
        );
    }

    #[test]
    fn aged_fs_probe_is_more_fragmented() {
        let sim = Sim::new();
        let s = sim.clone();
        let (fresh, aged) = sim.run_until(async move {
            let opts = WorldOptions {
                full_scale: false,
                ..WorldOptions::default()
            };
            let w1 = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            let fresh = probe_extents(&w1, "probe", 1 << 20).await.unwrap();
            let w2 = paper_world(&s, Config::A.tuning(), opts).await.unwrap();
            age_filesystem(
                &w2,
                AgingOptions {
                    target_fill: 0.6,
                    rounds: 2,
                    seed: 3,
                },
            )
            .await
            .unwrap();
            let aged = probe_extents(&w2, "probe", 1 << 20).await.unwrap();
            (fresh, aged)
        });
        assert!(
            aged.mean_extent_bytes < fresh.mean_extent_bytes,
            "aging should fragment: fresh {} vs aged {}",
            fresh.mean_extent_bytes,
            aged.mean_extent_bytes
        );
        assert!(aged.file_bytes > 0);
    }
}
